//! Mapping advisor: given eight workloads to place on four dual-core NPUs,
//! train the paper's §4.6 slowdown predictor on random networks and
//! recommend a pairing — then validate the recommendation by simulation.
//!
//! ```text
//! cargo run --release --example mapping_advisor [w1 .. w8]
//! ```
//!
//! Defaults to one copy of every benchmark.

use mnpusim::predict::mapping::{matching_slowdowns, perfect_matchings};
use mnpusim::prelude::*;
use mnpusim::{geomean, zoo, Scale, SlowdownModel, WorkloadProfile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.len() == 8 {
        args
    } else {
        zoo::MODEL_NAMES.iter().map(|s| s.to_string()).collect()
    };
    let nets: Vec<_> =
        names.iter().map(|n| zoo::by_name(n, Scale::Bench).unwrap_or_else(|| usage(n))).collect();

    let chip = SystemConfig::bench(2, SharingLevel::PlusDwt);

    println!("profiling {} workloads solo...", nets.len());
    let profiles: Vec<WorkloadProfile> =
        nets.iter().map(|n| WorkloadProfile::measure(&chip, n)).collect();

    println!("training slowdown model on random networks...");
    let model = SlowdownModel::train_on_random_networks(&chip, 10, 20, 7);

    // Choose the matching with the best predicted geomean speedup.
    let predicted = |i: usize, j: usize| {
        (
            model.predict_slowdown(&profiles[i], &profiles[j]),
            model.predict_slowdown(&profiles[j], &profiles[i]),
        )
    };
    let slots: Vec<usize> = (0..8).collect();
    let score = |slow: &[f64]| geomean(&slow.iter().map(|s| 1.0 / s).collect::<Vec<_>>());
    let mut best: Option<(f64, Vec<(usize, usize)>)> = None;
    for m in perfect_matchings(8) {
        let s = score(&matching_slowdowns(&slots, &m, &predicted));
        if best.as_ref().is_none_or(|(b, _)| s > *b) {
            best = Some((s, m));
        }
    }
    let (pred_score, matching) = best.expect("matchings exist");

    println!("\nrecommended pairing (predicted geomean speedup {pred_score:.3}):");
    // The four recommended chips share nothing — validate them as a fleet.
    let assignments: Vec<Vec<Network>> =
        matching.iter().map(|&(p, q)| vec![nets[p].clone(), nets[q].clone()]).collect();
    let reports = RunRequest::fleet(&chip, assignments).run().fleet();
    let mut actual_speedups = Vec::new();
    for (&(p, q), r) in matching.iter().zip(&reports) {
        let sp = profiles[p].solo_cycles as f64 / r.cores[0].cycles as f64;
        let sq = profiles[q].solo_cycles as f64 / r.cores[1].cycles as f64;
        println!(
            "  chip: {:<6} + {:<6}  actual speedups {:.3} / {:.3}",
            names[p], names[q], sp, sq
        );
        actual_speedups.push(sp);
        actual_speedups.push(sq);
    }
    println!("\nmeasured system geomean speedup: {:.3}", geomean(&actual_speedups));
}

fn usage(name: &str) -> ! {
    eprintln!("unknown workload '{name}'; choose from {:?}", zoo::MODEL_NAMES);
    std::process::exit(2);
}
