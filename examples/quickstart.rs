//! Quickstart: simulate one dual-core mix and print what the memory system
//! did to each workload.
//!
//! ```text
//! cargo run --release --example quickstart [workload_a] [workload_b]
//! ```
//!
//! Workload names: res, yt, alex, sfrnn, ds2, dlrm, ncf, gpt2.

use mnpusim::prelude::*;
use mnpusim::{zoo, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let a = args.get(1).map(String::as_str).unwrap_or("ncf");
    let b = args.get(2).map(String::as_str).unwrap_or("gpt2");

    let net_a = zoo::by_name(a, Scale::Bench).unwrap_or_else(|| usage(a));
    let net_b = zoo::by_name(b, Scale::Bench).unwrap_or_else(|| usage(b));

    // A dual-core chip with all shareable resources dynamically shared.
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    println!(
        "simulating {a} + {b} on a dual-core NPU ({} total channels, +DWT)\n",
        cfg.total_channels()
    );

    let report = RunRequest::networks(&cfg, vec![net_a.clone(), net_b.clone()]).run().batch();

    // Ideal baselines: each workload alone with every resource.
    let ideal = cfg.ideal_solo();
    let ia = RunRequest::networks(&ideal, vec![net_a]).run().batch().cores[0].cycles;
    let ib = RunRequest::networks(&ideal, vec![net_b]).run().batch().cores[0].cycles;

    println!(
        "{:<8}{:>12}{:>12}{:>10}{:>10}{:>12}{:>10}",
        "core", "cycles", "ideal", "speedup", "PE util", "traffic MB", "TLB hit"
    );
    for (core, ideal_cycles) in report.cores.iter().zip([ia, ib]) {
        println!(
            "{:<8}{:>12}{:>12}{:>10.3}{:>10.3}{:>12.1}{:>10.3}",
            core.workload,
            core.cycles,
            ideal_cycles,
            ideal_cycles as f64 / core.cycles as f64,
            core.pe_utilization,
            core.traffic_bytes as f64 / 1e6,
            core.mmu.tlb_hit_rate(),
        );
    }
    let s = &report.dram.total;
    println!(
        "\nDRAM: {} reads, {} writes, row-hit rate {:.2}, mean latency {:.0} cycles",
        s.reads,
        s.writes,
        s.row_hit_rate(),
        s.mean_latency()
    );
}

fn usage(name: &str) -> ! {
    eprintln!("unknown workload '{name}'; choose from {:?}", zoo::MODEL_NAMES);
    std::process::exit(2);
}
