//! Page-size study: how 4 KB / 64 KB / 1 MB pages change one workload's
//! translation behavior and end-to-end cycles (the paper's §4.5 for a
//! single workload, with full MMU statistics).
//!
//! ```text
//! cargo run --release --example page_size_study [workload]
//! ```

use mnpusim::prelude::*;
use mnpusim::{zoo, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dlrm".into());
    let Some(net) = zoo::by_name(&name, Scale::Bench) else {
        eprintln!("unknown workload '{name}'; choose from {:?}", zoo::MODEL_NAMES);
        std::process::exit(2);
    };

    println!("page-size study for {name} (single core, all resources)\n");
    println!(
        "{:<8}{:>12}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "page", "cycles", "speedup", "TLB hit", "walks", "walk KB", "stalls"
    );
    let mut base = None;
    for page in [4096u64, 65536, 1 << 20] {
        let cfg = SystemConfig::bench(1, SharingLevel::Ideal).with_page_size(page);
        let r = RunRequest::networks(&cfg, vec![net.clone()]).run().batch();
        let c = &r.cores[0];
        let base_cycles = *base.get_or_insert(c.cycles);
        let label = match page {
            4096 => "4KB",
            65536 => "64KB",
            _ => "1MB",
        };
        println!(
            "{:<8}{:>12}{:>10.3}{:>10.3}{:>10}{:>12.1}{:>10}",
            label,
            c.cycles,
            base_cycles as f64 / c.cycles as f64,
            c.mmu.tlb_hit_rate(),
            c.mmu.walks,
            c.walk_bytes as f64 / 1024.0,
            c.mmu.walker_stalls,
        );
    }
    println!(
        "\nLarger pages cut TLB misses by orders of magnitude (fewer, shallower\n\
         walks), which is the paper's second remedy for page-walk bandwidth."
    );
}
