//! Heterogeneous multi-core chip: different systolic-array sizes and clock
//! frequencies per core sharing one memory system — the configuration space
//! §3.1 of the paper highlights (heterogeneous cores + clock domains).
//!
//! ```text
//! cargo run --release --example heterogeneous_chip
//! ```

use mnpusim::prelude::*;
use mnpusim::{zoo, Scale};

fn main() {
    // A big-little chip: core 0 is a full bench core at 1 GHz, core 1 a
    // quarter-size array at 500 MHz. Both share DRAM and walkers (+DW).
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDw);
    cfg.arch[1].rows = 16;
    cfg.arch[1].cols = 16;
    cfg.arch[1].freq_mhz = 500;

    println!("big-little dual-core NPU (+DW):");
    for (i, a) in cfg.arch.iter().enumerate() {
        println!("  core {i}: {}x{} array @ {} MHz", a.rows, a.cols, a.freq_mhz);
    }
    println!();

    // Map the compute-hungry CNN to the big core and the small bursty
    // recommendation model to the little core — then swap, to see why
    // mapping matters on heterogeneous chips.
    let yt = zoo::yolo_tiny(Scale::Bench);
    let ncf = zoo::ncf(Scale::Bench);

    for (label, nets) in [
        ("yt on big, ncf on little", [yt.clone(), ncf.clone()]),
        ("ncf on big, yt on little", [ncf, yt]),
    ] {
        let r = RunRequest::networks(&cfg, nets.to_vec()).run().batch();
        println!("{label}:");
        for c in &r.cores {
            println!(
                "  {:<6} {:>10} core-cycles  (PE util {:.3}, TLB hit {:.3})",
                c.workload,
                c.cycles,
                c.pe_utilization,
                c.mmu.tlb_hit_rate()
            );
        }
        println!("  chip finished at global cycle {}\n", r.total_cycles);
    }
    println!("(the slow little core stretches whatever runs on it; the shared\n memory system lets the other core soak up the leftover bandwidth)");
}
