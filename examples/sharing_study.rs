//! Sharing study: sweep one dual-core mix across all resource-sharing
//! levels and report throughput and fairness — a miniature of the paper's
//! §4.2 for a mix of your choice.
//!
//! ```text
//! cargo run --release --example sharing_study [workload_a] [workload_b]
//! ```

use mnpusim::prelude::*;
use mnpusim::{fairness, geomean, zoo, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let a = args.get(1).map(String::as_str).unwrap_or("sfrnn");
    let b = args.get(2).map(String::as_str).unwrap_or("yt");
    let Some(net_a) = zoo::by_name(a, Scale::Bench) else { usage(a) };
    let Some(net_b) = zoo::by_name(b, Scale::Bench) else { usage(b) };

    // Ideal baselines.
    let base = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let ideal = base.ideal_solo();
    let ia = RunRequest::networks(&ideal, vec![net_a.clone()]).run().batch().cores[0].cycles;
    let ib = RunRequest::networks(&ideal, vec![net_b.clone()]).run().batch().cores[0].cycles;
    println!("mix {a}+{b}: Ideal cycles = {ia} / {ib}\n");
    println!(
        "{:<8}{:>12}{:>12}{:>10}{:>10}{:>10}{:>10}",
        "level", "cycles A", "cycles B", "spdup A", "spdup B", "geomean", "fairness"
    );

    for level in SharingLevel::CO_RUN_LEVELS {
        let cfg = SystemConfig::bench(2, level);
        let r = RunRequest::networks(&cfg, vec![net_a.clone(), net_b.clone()]).run().batch();
        let sa = ia as f64 / r.cores[0].cycles as f64;
        let sb = ib as f64 / r.cores[1].cycles as f64;
        println!(
            "{:<8}{:>12}{:>12}{:>10.3}{:>10.3}{:>10.3}{:>10.3}",
            level.label(),
            r.cores[0].cycles,
            r.cores[1].cycles,
            sa,
            sb,
            geomean(&[sa, sb]),
            fairness(&[1.0 / sa, 1.0 / sb]),
        );
    }
    println!("\n(speedups are relative to each workload monopolizing the whole chip)");
}

fn usage(name: &str) -> ! {
    eprintln!("unknown workload '{name}'; choose from {:?}", zoo::MODEL_NAMES);
    std::process::exit(2);
}
