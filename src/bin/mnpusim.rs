//! The `mnpusim` command-line simulator, mirroring the original's interface:
//!
//! ```text
//! mnpusim <arch_list> <network_list> <dram_config> <npumem_list> <result_path> <misc_config>
//! ```
//!
//! For example, with the configs shipped in `configs/`:
//!
//! ```text
//! cargo run --release --bin mnpusim -- \
//!     configs/arch/bench_dual.txt \
//!     configs/network/dual_ncf_gpt2.txt \
//!     configs/dram/bench_dual_dwt.cfg \
//!     configs/npumem/bench_dual.txt \
//!     /tmp/mnpu_out \
//!     configs/misc/default.cfg
//! ```
//!
//! Results are written under `<result_path>/result/` in the original's file
//! layout (`avg_cycle_*`, `execution_cycle_*`, `memory_footprint_*`,
//! `utilization_*`), and a summary is printed to stdout.

use mnpu_config::{load_run, write_request_logs, write_results};
use mnpusim::RunRequest;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 7 {
        eprintln!(
            "usage: {} <arch_list> <network_list> <dram_config> <npumem_list> <result_path> <misc_config>",
            args.first().map(String::as_str).unwrap_or("mnpusim")
        );
        return ExitCode::from(2);
    }
    let spec = match load_run(
        Path::new(&args[1]),
        Path::new(&args[2]),
        Path::new(&args[3]),
        Path::new(&args[4]),
        Path::new(&args[6]),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "simulating {} core(s), sharing level {}, {} total channels",
        spec.system.cores,
        spec.system.sharing,
        spec.system.total_channels()
    );
    for (i, net) in spec.networks.iter().enumerate() {
        println!("  core {i}: {} ({} layers)", net.name(), net.num_layers());
    }

    let report = RunRequest::networks(&spec.system, spec.networks).run().batch();

    let result_path = Path::new(&args[5]);
    match write_results(result_path, "arch", &report) {
        Ok(files) => println!(
            "\nwrote {} result files under {}",
            files.len(),
            result_path.join("result").display()
        ),
        Err(e) => {
            eprintln!("error writing results: {e}");
            return ExitCode::FAILURE;
        }
    }
    match write_request_logs(result_path, &report) {
        Ok(files) if !files.is_empty() => {
            println!(
                "wrote {} request logs under {}",
                files.len(),
                result_path.join("dramsim_output").display()
            );
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("error writing request logs: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "\n{:<8}{:>14}{:>10}{:>14}{:>10}",
        "core", "cycles", "PE util", "traffic MB", "TLB hit"
    );
    for c in &report.cores {
        println!(
            "{:<8}{:>14}{:>10.3}{:>14.2}{:>10.3}",
            c.workload,
            c.cycles,
            c.pe_utilization,
            c.traffic_bytes as f64 / 1e6,
            c.mmu.tlb_hit_rate()
        );
    }
    ExitCode::SUCCESS
}
