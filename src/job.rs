//! Controlled execution: run a [`Runner`] with an external stop signal,
//! checkpoint where it stops, and resume later — the primitive a
//! long-lived service builds cancellation, wall-clock budgets and graceful
//! drain out of.
//!
//! [`Runner::run`] is all-or-nothing. [`Runner::run_controlled`] drives
//! the same canonical engine paths but consults a poll callback at every
//! safe boundary (a parked chunk of a batch run, a scheduler decision
//! point of a serve run); when the callback asks for a stop, the run is
//! snapshotted into a [`JobCheckpoint`] instead of being thrown away, and
//! [`Runner::resume`] finishes it — in the same process or, via
//! [`JobCheckpoint::to_json`], any other one. The contract is the one that
//! fenced the snapshot subsystem: *stopping never changes the answer*. A
//! run completed across any number of checkpoint/resume round-trips emits
//! a report byte-identical to the uninterrupted run.
//!
//! ```
//! use mnpusim::prelude::*;
//! use mnpusim::{zoo, Scale};
//!
//! let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
//! let nets = vec![zoo::ncf(Scale::Bench)];
//! let straight = RunRequest::networks(&cfg, nets.clone()).run().batch();
//!
//! // Stop at the first safe boundary, checkpoint, resume to completion.
//! let runner = RunRequest::networks(&cfg, nets.clone()).build().unwrap();
//! let progress = runner.run_controlled(&mut || RunControl::Checkpoint);
//! let ckpt = match progress {
//!     RunProgress::Checkpointed(c) => c,
//!     _ => unreachable!("stopped at the first boundary"),
//! };
//! let runner = RunRequest::networks(&cfg, nets).build().unwrap();
//! let resumed = runner.resume(ckpt, &mut || RunControl::Continue).unwrap();
//! match resumed {
//!     RunProgress::Done(outcome) => {
//!         assert_eq!(outcome.batch().to_json(), straight.to_json());
//!     }
//!     _ => unreachable!("no further stops requested"),
//! }
//! ```

use crate::run::{Payload, RunOutcome, Runner};
use mnpu_engine::{
    Advance, FlightProbe, NullProbe, Probe, ProbeMode, RunReport, SimSnapshot, Simulation,
    SnapError, SystemConfig, TraceHandle, SNAPSHOT_VERSION,
};
use mnpu_sched::{ServeReport, ServeSession, ServeSnapshot};
use mnpu_systolic::WorkloadTrace;

/// Cycles a controlled batch run advances between two polls of the control
/// callback. Small enough that a stop request lands within milliseconds of
/// wall clock; large enough that polling is invisible in the profile.
const POLL_CHUNK: u64 = 1 << 16;

/// Format version of the [`JobCheckpoint`] JSON wrapper (locked to the
/// snapshot subsystem's version: a checkpoint embeds engine snapshots, so
/// the two formats move together).
pub const JOB_CHECKPOINT_VERSION: u32 = SNAPSHOT_VERSION;

/// What the control callback tells a running job at each safe boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunControl {
    /// Keep running.
    Continue,
    /// Stop here and checkpoint (cancellation, budget expiry, drain).
    Checkpoint,
}

/// What a controlled run reports *to* the control callback at each safe
/// boundary — the driver-side half of live progress telemetry.
///
/// The engine clock is the only simulation-state fact a boundary exposes;
/// everything wall-clock-flavoured (rates, stall attribution) is derived
/// inside the [`TraceHandle`] so reports and checkpoints stay
/// byte-identical whether or not anyone is watching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunObservation {
    cycles: u64,
}

impl RunObservation {
    /// Simulated cycles completed so far: the engine clock for batch and
    /// serve runs, the summed cycles of finished chips for fleet runs.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// How far a controlled run got.
#[derive(Debug, Clone, PartialEq)]
pub enum RunProgress {
    /// Ran to completion; the outcome is byte-identical to [`Runner::run`].
    Done(RunOutcome),
    /// Stopped on request; resume with [`Runner::resume`] against the same
    /// request.
    Checkpointed(JobCheckpoint),
    /// Stopped on request at a shape that cannot checkpoint (a fleet run
    /// between chips): the work so far is discarded, nothing to resume.
    Stopped,
}

/// The shape-tagged snapshot of a stopped run.
#[derive(Debug, Clone, PartialEq)]
enum CkptPayload {
    /// A single-chip batch run's engine snapshot.
    Batch(SimSnapshot),
    /// A serve run's engine + scheduler snapshot.
    Serve(ServeSnapshot),
}

/// A resumable checkpoint of a stopped run, produced by
/// [`Runner::run_controlled`] and consumed by [`Runner::resume`].
///
/// The checkpoint does not carry the workload itself — resuming requires
/// re-presenting the same [`RunRequest`](crate::RunRequest), and the
/// embedded snapshot's fingerprints (system configuration, per-core
/// traces, scenario) verify the match. [`JobCheckpoint::to_json`] /
/// [`JobCheckpoint::from_json`] give it a stable wire form, so a
/// checkpoint can cross process boundaries (the service hands it to
/// clients and accepts it back on a resume request).
#[derive(Debug, Clone, PartialEq)]
pub struct JobCheckpoint {
    payload: CkptPayload,
}

impl JobCheckpoint {
    /// Which request shape this checkpoint belongs to: `"batch"`
    /// ([`RunRequest::traces`](crate::RunRequest::traces) /
    /// [`RunRequest::networks`](crate::RunRequest::networks)) or
    /// `"serve"`.
    pub fn kind(&self) -> &'static str {
        match &self.payload {
            CkptPayload::Batch(_) => "batch",
            CkptPayload::Serve(_) => "serve",
        }
    }

    /// The wire form: a JSON object with a hex-encoded snapshot payload,
    /// the same framing idiom as [`SimSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        let bytes = match &self.payload {
            CkptPayload::Batch(s) => s.to_bytes(),
            CkptPayload::Serve(s) => s.to_bytes(),
        };
        let mut hex = String::with_capacity(bytes.len() * 2);
        for b in &bytes {
            hex.push_str(&format!("{b:02x}"));
        }
        format!(
            "{{\"format\":\"mnpu-job-checkpoint\",\"version\":{},\"kind\":\"{}\",\
             \"payload\":\"{hex}\"}}",
            JOB_CHECKPOINT_VERSION,
            self.kind()
        )
    }

    /// Decode the wrapper written by [`JobCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`SnapError::BadJson`] on a malformed wrapper,
    /// [`SnapError::VersionMismatch`] on a foreign format version, and any
    /// decode error from the embedded snapshot.
    pub fn from_json(text: &str) -> Result<JobCheckpoint, SnapError> {
        fn field<'t>(text: &'t str, key: &str) -> Option<&'t str> {
            let start = text.find(&format!("\"{key}\":"))? + key.len() + 3;
            let rest = &text[start..];
            if let Some(stripped) = rest.strip_prefix('"') {
                let end = stripped.find('"')?;
                Some(&stripped[..end])
            } else {
                let end = rest.find([',', '}'])?;
                Some(&rest[..end])
            }
        }
        if field(text, "format") != Some("mnpu-job-checkpoint") {
            return Err(SnapError::BadJson("missing mnpu-job-checkpoint format marker"));
        }
        let version: u32 = field(text, "version")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(SnapError::BadJson("bad version field"))?;
        if version != JOB_CHECKPOINT_VERSION {
            return Err(SnapError::VersionMismatch {
                found: version,
                expected: JOB_CHECKPOINT_VERSION,
            });
        }
        let kind = field(text, "kind").ok_or(SnapError::BadJson("missing kind field"))?;
        let hex = field(text, "payload").ok_or(SnapError::BadJson("missing payload field"))?;
        if hex.len() % 2 != 0 {
            return Err(SnapError::BadJson("odd-length payload hex"));
        }
        let bytes: Vec<u8> = (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|_| SnapError::BadJson("bad payload hex"))?;
        let payload = match kind {
            "batch" => CkptPayload::Batch(SimSnapshot::from_bytes(&bytes)?),
            "serve" => CkptPayload::Serve(ServeSnapshot::from_bytes(&bytes)?),
            _ => return Err(SnapError::BadJson("unknown checkpoint kind")),
        };
        Ok(JobCheckpoint { payload })
    }
}

/// Drive a batch simulation in [`POLL_CHUNK`]-cycle slices, consulting
/// `poll` at every parked boundary. Chunked parking is the engine's own
/// checkpoint mechanism ([`Simulation::advance`]), bit-exact against an
/// unchunked run.
fn drive_batch<P: Probe>(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    from: Option<&SimSnapshot>,
    poll: &mut dyn FnMut(RunObservation) -> RunControl,
) -> Result<BatchProgress, SnapError> {
    let mut sim = Simulation::with_probe(cfg, traces, P::default());
    if let Some(snap) = from {
        sim.restore(snap)?;
    }
    loop {
        if poll(RunObservation { cycles: sim.now() }) == RunControl::Checkpoint {
            return Ok(BatchProgress::Checkpointed(sim.snapshot()));
        }
        let stop = sim.now().saturating_add(POLL_CHUNK);
        loop {
            match sim.advance(stop) {
                Advance::CoreFinished { .. } => {}
                Advance::Parked => break,
                Advance::Drained => return Ok(BatchProgress::Done(Box::new(sim.into_report()))),
            }
        }
    }
}

enum BatchProgress {
    Done(Box<RunReport>),
    Checkpointed(SimSnapshot),
}

/// Drive a serve session one scheduler decision round at a time,
/// consulting `poll` between rounds.
fn drive_serve<P: Probe>(
    spec: &mnpu_config::ScenarioSpec,
    from: Option<ServeSnapshot>,
    poll: &mut dyn FnMut(RunObservation) -> RunControl,
) -> Result<ServeProgress, SnapError> {
    let mut session = match from {
        Some(snap) => ServeSession::restore_with_probe(spec, P::default(), snap)?,
        None => ServeSession::with_probe(spec, P::default()),
    };
    loop {
        if poll(RunObservation { cycles: session.now() }) == RunControl::Checkpoint {
            return Ok(ServeProgress::Checkpointed(session.snapshot()));
        }
        if !session.step() {
            return Ok(ServeProgress::Done(Box::new(session.into_report())));
        }
    }
}

enum ServeProgress {
    Done(Box<ServeReport>),
    Checkpointed(ServeSnapshot),
}

impl Runner {
    /// Execute like [`Runner::run`], but consult `poll` at every safe
    /// boundary; when it returns [`RunControl::Checkpoint`], stop and
    /// return a [`JobCheckpoint`] (or [`RunProgress::Stopped`] for a fleet
    /// run, which has no checkpointable state between chips).
    ///
    /// With a callback that always continues, the result is
    /// [`RunProgress::Done`] with an outcome byte-identical to
    /// [`Runner::run`] — the chunked drive is the same bit-exact mechanism
    /// [`Simulation::execute_checkpointed`] rests on. A `checkpoint_at`
    /// cycle set on the request is ignored here (the callback *is* the
    /// checkpoint trigger).
    pub fn run_controlled(self, poll: &mut dyn FnMut() -> RunControl) -> RunProgress {
        self.run_observed(None, &mut |_| poll())
    }

    /// Resume a run stopped by [`Runner::run_controlled`]. The runner must
    /// be built from the same request that produced the checkpoint — the
    /// snapshot's fingerprints enforce it.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadValue`] when the checkpoint's shape does not match
    /// the request shape, [`SnapError::ConfigMismatch`] /
    /// [`SnapError::TraceMismatch`] when it was captured from a different
    /// request, or any decode error from the snapshot payload.
    pub fn resume(
        self,
        checkpoint: JobCheckpoint,
        poll: &mut dyn FnMut() -> RunControl,
    ) -> Result<RunProgress, SnapError> {
        self.resume_observed(checkpoint, None, &mut |_| poll())
    }

    /// [`Runner::run_controlled`] with live telemetry: the callback
    /// receives a [`RunObservation`] at every safe boundary, and when a
    /// [`TraceHandle`] is given it is installed as the driving thread's
    /// ambient sink (so a [`ProbeMode::Flight`] run's probes record into
    /// it) and every boundary is published to its progress cell.
    ///
    /// Telemetry is observation only: the returned progress — report
    /// bytes, checkpoint bytes — is byte-identical to
    /// [`Runner::run_controlled`] with or without a handle.
    pub fn run_observed(
        self,
        trace: Option<&TraceHandle>,
        poll: &mut dyn FnMut(RunObservation) -> RunControl,
    ) -> RunProgress {
        self.run_controlled_from(None, trace, poll).expect("a fresh run has no snapshot to reject")
    }

    /// [`Runner::resume`] with live telemetry; see [`Runner::run_observed`].
    ///
    /// # Errors
    ///
    /// As for [`Runner::resume`].
    pub fn resume_observed(
        self,
        checkpoint: JobCheckpoint,
        trace: Option<&TraceHandle>,
        poll: &mut dyn FnMut(RunObservation) -> RunControl,
    ) -> Result<RunProgress, SnapError> {
        self.run_controlled_from(Some(checkpoint), trace, poll)
    }

    fn run_controlled_from(
        self,
        from: Option<JobCheckpoint>,
        trace: Option<&TraceHandle>,
        poll: &mut dyn FnMut(RunObservation) -> RunControl,
    ) -> Result<RunProgress, SnapError> {
        // While a handle observes this run it doubles as the thread's
        // ambient probe sink, and every poll boundary updates its
        // progress cell before the caller decides whether to stop.
        let _guard = trace.map(mnpu_trace::install);
        let mut poll = |obs: RunObservation| {
            if let Some(h) = trace {
                h.publish_poll(obs.cycles());
            }
            poll(obs)
        };
        let poll: &mut dyn FnMut(RunObservation) -> RunControl = &mut poll;
        let batch_from = |from: Option<JobCheckpoint>| match from {
            None => Ok(None),
            Some(JobCheckpoint { payload: CkptPayload::Batch(s) }) => Ok(Some(s)),
            Some(_) => Err(SnapError::BadValue("serve checkpoint offered to a batch request")),
        };
        match self.request.payload {
            Payload::Traces(cfg, traces) => batch(&cfg, &traces, batch_from(from)?.as_ref(), poll),
            Payload::Networks(cfg, nets) => {
                let traces: Vec<WorkloadTrace> = nets
                    .iter()
                    .zip(&cfg.arch)
                    .map(|(n, a)| WorkloadTrace::generate(n, a))
                    .collect();
                batch(&cfg, &traces, batch_from(from)?.as_ref(), poll)
            }
            Payload::Fleet(cfg, assignments) => {
                if from.is_some() {
                    return Err(SnapError::BadValue("fleet runs cannot resume from a checkpoint"));
                }
                let mut reports = Vec::with_capacity(assignments.len());
                let mut cycles = 0u64;
                for nets in &assignments {
                    if poll(RunObservation { cycles }) == RunControl::Checkpoint {
                        return Ok(RunProgress::Stopped);
                    }
                    let report = Simulation::execute_networks(&cfg, nets);
                    cycles = cycles.saturating_add(report.total_cycles);
                    reports.push(report);
                }
                Ok(RunProgress::Done(RunOutcome::Fleet(reports)))
            }
            Payload::Serve(spec) => {
                let serve_from = match from {
                    None => None,
                    Some(JobCheckpoint { payload: CkptPayload::Serve(s) }) => Some(s),
                    Some(_) => {
                        return Err(SnapError::BadValue(
                            "batch checkpoint offered to a serve request",
                        ))
                    }
                };
                let progress = match spec.system.probe {
                    ProbeMode::None => drive_serve::<NullProbe>(&spec, serve_from, poll)?,
                    ProbeMode::Stats => {
                        drive_serve::<mnpu_engine::StatsProbe>(&spec, serve_from, poll)?
                    }
                    ProbeMode::Flight => {
                        drive_serve::<FlightProbe<NullProbe>>(&spec, serve_from, poll)?
                    }
                };
                Ok(match progress {
                    ServeProgress::Done(r) => RunProgress::Done(RunOutcome::Serve(r)),
                    ServeProgress::Checkpointed(s) => {
                        RunProgress::Checkpointed(JobCheckpoint { payload: CkptPayload::Serve(s) })
                    }
                })
            }
        }
    }
}

/// Per-probe-mode dispatch for the batch shapes (the same idiom as
/// [`Simulation::execute_checkpointed`]).
fn batch(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    from: Option<&SimSnapshot>,
    poll: &mut dyn FnMut(RunObservation) -> RunControl,
) -> Result<RunProgress, SnapError> {
    let progress = match cfg.probe {
        ProbeMode::None => drive_batch::<NullProbe>(cfg, traces, from, poll)?,
        ProbeMode::Stats => drive_batch::<mnpu_engine::StatsProbe>(cfg, traces, from, poll)?,
        ProbeMode::Flight => drive_batch::<FlightProbe<NullProbe>>(cfg, traces, from, poll)?,
    };
    Ok(match progress {
        BatchProgress::Done(r) => RunProgress::Done(RunOutcome::Batch(r)),
        BatchProgress::Checkpointed(s) => {
            RunProgress::Checkpointed(JobCheckpoint { payload: CkptPayload::Batch(s) })
        }
    })
}

impl RunProgress {
    /// The completed outcome.
    ///
    /// # Panics
    ///
    /// Panics unless the progress is [`RunProgress::Done`].
    pub fn done(self) -> RunOutcome {
        match self {
            RunProgress::Done(o) => o,
            RunProgress::Checkpointed(_) => panic!("expected a completed run, got a checkpoint"),
            RunProgress::Stopped => panic!("expected a completed run, got a stop"),
        }
    }

    /// The checkpoint.
    ///
    /// # Panics
    ///
    /// Panics unless the progress is [`RunProgress::Checkpointed`].
    pub fn checkpoint(self) -> JobCheckpoint {
        match self {
            RunProgress::Checkpointed(c) => c,
            RunProgress::Done(_) => panic!("expected a checkpoint, but the run completed"),
            RunProgress::Stopped => panic!("expected a checkpoint, got a bare stop"),
        }
    }
}
