//! The one-line import for simulator programs.
//!
//! `use mnpusim::prelude::*;` brings in the [`RunRequest`] facade and the
//! handful of types almost every program touches: the configuration
//! surface, the reports each run shape produces, and the workload types
//! requests are built from.
//!
//! ```
//! use mnpusim::prelude::*;
//! use mnpusim::{zoo, Scale};
//!
//! let cfg = SystemConfig::bench(1, SharingLevel::Static);
//! let report = RunRequest::networks(&cfg, vec![zoo::ncf(Scale::Bench)]).run().batch();
//! assert_eq!(report.cores.len(), 1);
//! ```

pub use crate::job::{JobCheckpoint, RunControl, RunProgress};
pub use crate::run::{RequestError, RunOutcome, RunRequest, Runner};
pub use mnpu_config::{ArrivalSpec, JobSpec, PolicySpec, ScenarioSpec};
pub use mnpu_engine::{
    ConfigError, Emit, Format, ProbeMode, RunReport, SharingLevel, SimSnapshot, Simulation,
    SnapError, SystemConfig, SystemConfigBuilder,
};
pub use mnpu_model::{Network, Scale};
pub use mnpu_sched::{JobRecord, ServeReport};
pub use mnpu_systolic::{ArchConfig, WorkloadTrace};
