//! # mNPUsim-rs
//!
//! A cycle-level, multi-core NPU simulator with detailed shared-memory
//! modeling — a from-scratch Rust reproduction of *mNPUsim: Evaluating the
//! Effect of Sharing Resources in Multi-core NPUs* (IISWC 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — DNN layers, im2col lowering, the eight-benchmark zoo and
//!   random network generation;
//! * [`systolic`] — the output-stationary systolic-array timing model, SPM
//!   tiling, and the per-tile memory-trace generator;
//! * [`dram`] — an event-driven, command-level DRAM simulator (FR-FCFS,
//!   bank groups, refresh, channel partitioning);
//! * [`mmu`] — NeuMMU-style TLBs and page-table walkers with walk
//!   coalescing and shared/partitioned pools;
//! * [`engine`] — the multi-core execution engine tying it all together
//!   under the paper's sharing levels (`Ideal`/`Static`/`+D`/`+DW`/`+DWT`);
//! * [`metrics`] — speedup, the Eq. 1 fairness metric, CDFs, box stats;
//! * [`predict`] — the §4.6 co-runner slowdown predictor and mapping search;
//! * [`sched`] — dynamic multi-tenant serving (arrivals, placement
//!   policies, resumable serve sessions);
//! * [`config`] — file-based configuration loading in the original
//!   simulator's formats.
//!
//! The most common types are re-exported at the crate root, and
//! [`prelude`] bundles the working set — including the [`RunRequest`]
//! facade, the single entry point for every run shape.
//!
//! # Quickstart
//!
//! Every run shape — batch, fleet, serve — goes through one builder, the
//! [`RunRequest`] facade (see [`run`] and [`prelude`]):
//!
//! ```
//! use mnpusim::prelude::*;
//! use mnpusim::{zoo, Scale};
//!
//! // Simulate ncf and gpt2 sharing a dual-core NPU with everything shared.
//! let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
//! let nets = vec![zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)];
//! let report = RunRequest::networks(&cfg, nets).run().batch();
//! for core in &report.cores {
//!     println!("{}: {} cycles ({:.1}% PE util)", core.workload, core.cycles,
//!              core.pe_utilization * 100.0);
//! }
//! ```
//!
//! See `examples/` for complete studies and `crates/bench/benches/` for the
//! per-figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod prelude;
pub mod run;

pub use mnpu_config as config;
pub use mnpu_dram as dram;
pub use mnpu_engine as engine;
pub use mnpu_metrics as metrics;
pub use mnpu_mmu as mmu;
pub use mnpu_model as model;
pub use mnpu_predict as predict;
pub use mnpu_sched as sched;
pub use mnpu_systolic as systolic;

pub use job::{JobCheckpoint, RunControl, RunObservation, RunProgress, JOB_CHECKPOINT_VERSION};
pub use mnpu_trace as trace;
pub use run::{RequestError, RunOutcome, RunRequest, Runner};

pub use mnpu_dram::{Dram, DramConfig};
pub use mnpu_engine::{
    ConfigError, Emit, Format, ProbeMode, RunReport, SharingLevel, SimSnapshot, Simulation,
    SnapError, StatsReport, SystemConfig, SystemConfigBuilder,
};
pub use mnpu_metrics::{fairness, geomean, BoxStats, Cdf, Speedup};
pub use mnpu_mmu::{Mmu, MmuConfig};
pub use mnpu_model::{zoo, Layer, Network, Scale};
pub use mnpu_predict::{SlowdownModel, WorkloadProfile};
pub use mnpu_systolic::{ArchConfig, WorkloadTrace};
