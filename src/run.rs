//! The unified run facade: one builder for every way to run the simulator.
//!
//! Historically the workspace grew four overlapping entry points — the
//! engine's `run_traces` / `run_networks` / `run_fleet` trio and the
//! scheduling layer's [`mnpu_sched::serve`] — each with its own argument
//! conventions. [`RunRequest`] collapses them into one builder:
//!
//! ```
//! use mnpusim::prelude::*;
//! use mnpusim::{zoo, Scale};
//!
//! let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
//! let nets = vec![zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)];
//! let report = RunRequest::networks(&cfg, nets).run().batch();
//! assert_eq!(report.cores.len(), 2);
//! ```
//!
//! Every mode routes to the same canonical engine paths
//! ([`Simulation::execute`] and friends), so a facade run is byte-identical
//! to the entry point it replaced — `tests/facade.rs` fences that against
//! the deprecated shims. [`RunRequest::checkpoint_at`] additionally routes
//! batch runs through [`Simulation::execute_checkpointed`], which is
//! likewise bit-exact for every checkpoint cycle.

use mnpu_config::ScenarioSpec;
use mnpu_engine::{ConfigError, RunReport, Simulation, SystemConfig};
use mnpu_model::Network;
use mnpu_sched::ServeReport;
use mnpu_systolic::WorkloadTrace;

/// What to run: the four collapsed entry points.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    /// One pre-generated trace per core.
    Traces(SystemConfig, Vec<WorkloadTrace>),
    /// One network per core; traces are generated with each core's
    /// [`mnpu_systolic::ArchConfig`].
    Networks(SystemConfig, Vec<Network>),
    /// A fleet of independent chips, each running one network per core.
    Fleet(SystemConfig, Vec<Vec<Network>>),
    /// A dynamic multi-tenant serve scenario (arrivals + placement policy).
    Serve(Box<ScenarioSpec>),
}

/// A single description of a simulation run, whatever its shape.
///
/// Build one with [`RunRequest::traces`], [`RunRequest::networks`],
/// [`RunRequest::fleet`] or [`RunRequest::serve`], optionally add a
/// checkpoint cycle, then either [`build`](RunRequest::build) a validated
/// [`Runner`] or [`run`](RunRequest::run) directly.
#[derive(Debug, Clone)]
pub struct RunRequest {
    pub(crate) payload: Payload,
    checkpoint_at: Option<u64>,
}

impl RunRequest {
    /// Run `traces[c]` on core `c` of `cfg` (replaces
    /// `Simulation::run_traces`).
    pub fn traces(cfg: &SystemConfig, traces: impl Into<Vec<WorkloadTrace>>) -> Self {
        RunRequest { payload: Payload::Traces(cfg.clone(), traces.into()), checkpoint_at: None }
    }

    /// Run `networks[c]` on core `c` of `cfg`, generating each core's trace
    /// from its [`mnpu_systolic::ArchConfig`] (replaces
    /// `Simulation::run_networks`).
    pub fn networks(cfg: &SystemConfig, networks: impl Into<Vec<Network>>) -> Self {
        RunRequest { payload: Payload::Networks(cfg.clone(), networks.into()), checkpoint_at: None }
    }

    /// Run a fleet of independent chips — `assignments[i]` holds chip *i*'s
    /// networks, one per core (replaces `Simulation::run_fleet`). Chips
    /// share nothing; reports come back in chip order.
    pub fn fleet(cfg: &SystemConfig, assignments: impl Into<Vec<Vec<Network>>>) -> Self {
        RunRequest { payload: Payload::Fleet(cfg.clone(), assignments.into()), checkpoint_at: None }
    }

    /// Run a dynamic serve scenario — jobs arriving over time, placed by a
    /// scheduling policy (replaces calling [`mnpu_sched::serve`] directly).
    pub fn serve(spec: ScenarioSpec) -> Self {
        RunRequest { payload: Payload::Serve(Box::new(spec)), checkpoint_at: None }
    }

    /// Checkpoint the run at `cycle`: drive to `cycle`, snapshot, restore
    /// into a freshly built simulation, and finish there (the
    /// [`Simulation::execute_checkpointed`] path — bit-exact for every
    /// `cycle`). Only meaningful for [`traces`](RunRequest::traces) and
    /// [`networks`](RunRequest::networks) requests;
    /// [`build`](RunRequest::build) rejects it on the other shapes.
    pub fn checkpoint_at(mut self, cycle: u64) -> Self {
        self.checkpoint_at = Some(cycle);
        self
    }

    /// Validate the request into a [`Runner`].
    ///
    /// Checks the system configuration (via [`SystemConfig::validate`]) and
    /// the request shape: workload counts must match the core count, and a
    /// checkpoint cycle is only accepted on single-chip batch runs.
    pub fn build(self) -> Result<Runner, RequestError> {
        let shape = |expected: usize, got: usize, what: &'static str| {
            if expected == got {
                Ok(())
            } else {
                Err(RequestError::Shape { what, expected, got })
            }
        };
        match &self.payload {
            Payload::Traces(cfg, traces) => {
                cfg.validate()?;
                shape(cfg.cores, traces.len(), "traces")?;
            }
            Payload::Networks(cfg, nets) => {
                cfg.validate()?;
                shape(cfg.cores, nets.len(), "networks")?;
            }
            Payload::Fleet(cfg, assignments) => {
                cfg.validate()?;
                for chip in assignments {
                    shape(cfg.cores, chip.len(), "fleet networks")?;
                }
                if self.checkpoint_at.is_some() {
                    return Err(RequestError::Checkpoint { shape: "fleet" });
                }
            }
            Payload::Serve(spec) => {
                spec.system.validate()?;
                if self.checkpoint_at.is_some() {
                    return Err(RequestError::Checkpoint { shape: "serve" });
                }
            }
        }
        Ok(Runner { request: self })
    }

    /// [`build`](RunRequest::build) then [`Runner::run`], panicking on an
    /// invalid request. The ergonomic path for static configurations;
    /// programs assembling configurations at runtime should `build()` and
    /// handle the error.
    ///
    /// # Panics
    ///
    /// Panics if the request fails validation.
    pub fn run(self) -> RunOutcome {
        match self.build() {
            Ok(runner) => runner.run(),
            Err(e) => panic!("invalid run request: {e}"),
        }
    }
}

/// Why a [`RunRequest`] failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The system configuration itself is invalid.
    Config(ConfigError),
    /// A workload list's length disagrees with the core count.
    Shape {
        /// Which list (`"traces"`, `"networks"`, `"fleet networks"`).
        what: &'static str,
        /// The configured core count.
        expected: usize,
        /// The supplied length.
        got: usize,
    },
    /// [`RunRequest::checkpoint_at`] was set on a shape that does not
    /// support it.
    Checkpoint {
        /// The offending request shape (`"fleet"` or `"serve"`).
        shape: &'static str,
    },
}

impl From<ConfigError> for RequestError {
    fn from(e: ConfigError) -> Self {
        RequestError::Config(e)
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Config(e) => write!(f, "{e}"),
            RequestError::Shape { what, expected, got } => {
                write!(f, "{what}: expected one per core ({expected}), got {got}")
            }
            RequestError::Checkpoint { shape } => write!(
                f,
                "checkpoint_at is only supported on single-chip batch runs, not {shape} \
                 (serve runs checkpoint via mnpu_sched::ServeSession::snapshot)"
            ),
        }
    }
}

impl std::error::Error for RequestError {}

/// A validated [`RunRequest`], ready to execute.
#[derive(Debug, Clone)]
pub struct Runner {
    pub(crate) request: RunRequest,
}

impl Runner {
    /// Execute the request on this thread and return its outcome.
    ///
    /// Deterministic: the same request always produces the same outcome,
    /// byte for byte, regardless of shape-specific routing (straight
    /// engine run, checkpointed run, fleet loop or serve session).
    pub fn run(self) -> RunOutcome {
        let at = self.request.checkpoint_at;
        match self.request.payload {
            Payload::Traces(cfg, traces) => RunOutcome::Batch(Box::new(match at {
                Some(cycle) => Simulation::execute_checkpointed(&cfg, &traces, cycle),
                None => Simulation::execute(&cfg, &traces),
            })),
            Payload::Networks(cfg, nets) => {
                let traces: Vec<WorkloadTrace> = nets
                    .iter()
                    .zip(&cfg.arch)
                    .map(|(n, a)| WorkloadTrace::generate(n, a))
                    .collect();
                RunOutcome::Batch(Box::new(match at {
                    Some(cycle) => Simulation::execute_checkpointed(&cfg, &traces, cycle),
                    None => Simulation::execute(&cfg, &traces),
                }))
            }
            Payload::Fleet(cfg, assignments) => RunOutcome::Fleet(
                assignments.iter().map(|nets| Simulation::execute_networks(&cfg, nets)).collect(),
            ),
            Payload::Serve(spec) => RunOutcome::Serve(Box::new(mnpu_sched::serve(&spec))),
        }
    }
}

/// What a [`Runner`] produced — one variant per request shape.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// A single-chip batch run ([`RunRequest::traces`] /
    /// [`RunRequest::networks`]).
    Batch(Box<RunReport>),
    /// A fleet run: one report per chip, in request order.
    Fleet(Vec<RunReport>),
    /// A serve run: the engine report plus per-job scheduling records.
    Serve(Box<ServeReport>),
}

impl RunOutcome {
    /// The batch report.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`RunOutcome::Batch`].
    pub fn batch(self) -> RunReport {
        match self {
            RunOutcome::Batch(r) => *r,
            other => panic!("expected a batch outcome, got {}", other.shape()),
        }
    }

    /// The per-chip fleet reports.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`RunOutcome::Fleet`].
    pub fn fleet(self) -> Vec<RunReport> {
        match self {
            RunOutcome::Fleet(r) => r,
            other => panic!("expected a fleet outcome, got {}", other.shape()),
        }
    }

    /// The serve report.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`RunOutcome::Serve`].
    pub fn serve(self) -> ServeReport {
        match self {
            RunOutcome::Serve(r) => *r,
            other => panic!("expected a serve outcome, got {}", other.shape()),
        }
    }

    /// The underlying engine report, whatever the shape: the batch report,
    /// the *first* fleet report, or a serve run's engine report.
    pub fn report(&self) -> &RunReport {
        match self {
            RunOutcome::Batch(r) => r,
            RunOutcome::Fleet(rs) => rs.first().expect("fleet outcomes hold at least one report"),
            RunOutcome::Serve(s) => &s.run,
        }
    }

    fn shape(&self) -> &'static str {
        match self {
            RunOutcome::Batch(_) => "batch",
            RunOutcome::Fleet(_) => "fleet",
            RunOutcome::Serve(_) => "serve",
        }
    }
}
