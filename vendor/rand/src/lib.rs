//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt`]'s `random_range` /
//! `random_bool`. The generator is SplitMix64 — deterministic, seedable and
//! statistically solid for workload synthesis (we never need cryptographic
//! strength). Sequences differ from upstream `rand`'s ChaCha-based `StdRng`,
//! which is fine: all in-repo consumers only rely on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, used by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize, i16, i32, i64, isize);

/// The random-value methods the workspace calls on its generators.
pub trait RngExt {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A value uniformly distributed over `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood; public domain reference).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let s: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "{hits}");
    }

    #[test]
    fn range_sampling_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
