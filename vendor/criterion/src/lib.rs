//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`] — backed by a plain wall-clock timer. No statistics
//! engine, plots, or outlier analysis: each benchmark runs `sample_size`
//! timed samples and prints min/mean per iteration, which is enough to
//! compare before/after on a quiet machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for call sites that import it from
/// criterion.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!("bench {id:<40} samples={n} mean={:>12.3?} min={:>12.3?}", total / n, min);
        self
    }
}

/// Times one sample of the benchmarked closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f` once and record the sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// Group benchmark functions under one callable named group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_noop(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_noop
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
