//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`Strategy`] with `prop_map` / `prop_filter_map`, implemented for
//!   integer and float ranges, tuples, [`Just`], and
//!   [`collection::vec`];
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name, so failures reproduce), and
//! there is **no shrinking** — a failing case reports the assertion only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Per-test deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (e.g. the test's name) so every test
    /// gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a generated case ended, other than by succeeding.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Transform and filter: regenerate until `f` returns `Some`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, whence }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 consecutive inputs: {}", self.whence);
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64_unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64_unit() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Type-erased strategy, used by [`prop_oneof!`].
pub struct BoxedStrategy<V> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Erase a strategy's type (building block of [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy { gen_fn: Box::new(move |rng| s.generate(rng)) }
}

/// Uniform choice among several strategies of one value type.
pub struct Union<V> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// String strategies from a tiny regex subset. Real proptest interprets the
/// `&str` as a full regex; this shim supports only the shapes the workspace
/// uses: an optional char-class token (`\PC` = any non-control char, or `.`)
/// followed by a `{m,n}` repetition, plus plain literal strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, rep) = match split_regex_repetition(self) {
            Some(parts) => parts,
            None => return (*self).to_string(),
        };
        let (lo, hi) = rep;
        let n = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(n);
        for _ in 0..n {
            out.push(random_char_in_class(class, rng));
        }
        out
    }
}

/// Split `"\\PC{0,300}"`-style patterns into (class token, (min, max)).
fn split_regex_repetition(pattern: &str) -> Option<(&str, (usize, usize))> {
    let open = pattern.find('{')?;
    let (class, rep) = pattern.split_at(open);
    if !matches!(class, "\\PC" | ".") {
        return None;
    }
    let inner = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = inner.split_once(',')?;
    Some((class, (lo.parse().ok()?, hi.parse().ok()?)))
}

/// Draw one char from the (tiny) supported class: mostly ASCII so generated
/// text still exercises parser tokenization, with occasional higher scalars.
fn random_char_in_class(class: &str, rng: &mut TestRng) -> char {
    debug_assert!(matches!(class, "\\PC" | "."));
    loop {
        let c = if rng.next_u64().is_multiple_of(4) {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32)
        } else {
            char::from_u32((rng.next_u64() % 0x80) as u32)
        };
        match c {
            Some(c) if !c.is_control() => return c,
            _ => continue,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                let width = (self.len.end - self.len.start) as u64;
                self.len.start + (rng.next_u64() % width) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property test; failure reports the input
/// case rather than unwinding through the generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?} ({}:{})", a, b, file!(), line!());
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} != {:?} ({}:{})",
            a,
            b,
            file!(),
            line!()
        );
    }};
}

/// Discard the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::boxed($s)),+] }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of test functions of the form
/// `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(100).max(1000),
                    "too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5i32..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..=255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u32), Just(2u32), 5u32..8]) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_is_honored(_x in 0u32..10) {
            prop_assert!(true);
        }
    }

    #[test]
    fn filter_map_retries() {
        let s = (0u32..100).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v));
        let mut rng = crate::TestRng::from_name("filter_map_retries");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
