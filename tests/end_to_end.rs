//! Cross-crate integration tests: model → trace → multi-core simulation →
//! metrics, exercised through the `mnpusim` facade.

use mnpusim::{
    fairness, geomean, zoo, Scale, SharingLevel, Simulation, Speedup, SystemConfig, WorkloadTrace,
};

#[test]
fn facade_reexports_compose() {
    // The facade's types interoperate: build a trace with the systolic
    // re-export, run it with the engine re-export, summarize with metrics.
    let net = zoo::ncf(Scale::Bench);
    let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);
    let report = Simulation::new(&cfg, &[trace]).run();
    let s = Speedup::new(report.cores[0].cycles, report.cores[0].cycles);
    assert_eq!(s.value(), 1.0);
}

#[test]
fn every_benchmark_simulates_end_to_end() {
    for net in zoo::all(Scale::Bench) {
        if matches!(net.name(), "ncf" | "gpt2" | "yt") {
            // Keep the debug-profile suite fast; the heavier five run in the
            // release-mode engine tests and the bench harness.
            let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
            let r = Simulation::execute_networks(&cfg, std::slice::from_ref(&net));
            assert!(r.cores[0].cycles > 0, "{}", net.name());
            assert!(r.cores[0].traffic_bytes > 0, "{}", net.name());
        }
    }
}

#[test]
fn headline_result_sharing_beats_static() {
    // The paper's central claim, end to end: across a sample of mixes,
    // fully dynamic sharing (+DWT) yields higher geomean speedup than
    // static partitioning, while Ideal bounds both from above.
    let pairs = [("ncf", "gpt2"), ("yt", "ncf")];
    let mut static_scores = Vec::new();
    let mut shared_scores = Vec::new();
    for (a, b) in pairs {
        let na = zoo::by_name(a, Scale::Bench).unwrap();
        let nb = zoo::by_name(b, Scale::Bench).unwrap();
        let ideal_cfg = SystemConfig::bench(2, SharingLevel::PlusDwt).ideal_solo();
        let ia =
            Simulation::execute_networks(&ideal_cfg, std::slice::from_ref(&na)).cores[0].cycles;
        let ib =
            Simulation::execute_networks(&ideal_cfg, std::slice::from_ref(&nb)).cores[0].cycles;
        for (level, scores) in [
            (SharingLevel::Static, &mut static_scores),
            (SharingLevel::PlusDwt, &mut shared_scores),
        ] {
            let cfg = SystemConfig::bench(2, level);
            let r = Simulation::execute_networks(&cfg, &[na.clone(), nb.clone()]);
            let sa = Speedup::new(ia, r.cores[0].cycles).value();
            let sb = Speedup::new(ib, r.cores[1].cycles).value();
            assert!(sa <= 1.02 && sb <= 1.02, "Ideal bounds sharing: {sa} {sb}");
            scores.push(geomean(&[sa, sb]));
        }
    }
    assert!(
        geomean(&shared_scores) > geomean(&static_scores),
        "+DWT {:?} must beat Static {:?}",
        shared_scores,
        static_scores
    );
}

#[test]
fn fairness_of_static_is_near_perfect_for_twin_mix() {
    // Two copies of the same workload under Static see identical resources,
    // so their slowdowns match and fairness approaches 1 (paper Fig. 6).
    let net = zoo::ncf(Scale::Bench);
    let ideal_cfg = SystemConfig::bench(2, SharingLevel::Static).ideal_solo();
    let ideal =
        Simulation::execute_networks(&ideal_cfg, std::slice::from_ref(&net)).cores[0].cycles;
    let r = Simulation::execute_networks(
        &SystemConfig::bench(2, SharingLevel::Static),
        &[net.clone(), net],
    );
    let slowdowns: Vec<f64> = r.cores.iter().map(|c| c.cycles as f64 / ideal as f64).collect();
    assert!(fairness(&slowdowns) > 0.98, "{slowdowns:?}");
}

#[test]
fn trace_and_simulation_agree_on_traffic() {
    let net = zoo::gpt2(Scale::Bench);
    let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);
    let r = Simulation::new(&cfg, std::slice::from_ref(&trace)).run();
    // The engine moves every trace byte, rounded up to 64B transactions.
    assert!(r.cores[0].traffic_bytes >= trace.total_traffic_bytes());
    assert!(r.cores[0].traffic_bytes <= trace.total_traffic_bytes() * 11 / 10);
}

#[test]
fn quad_core_end_to_end_with_metrics() {
    let nets = [
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
    ];
    let chip = SystemConfig::bench(4, SharingLevel::PlusDw);
    let ideal_cfg = chip.ideal_solo();
    let ideals: Vec<u64> = nets
        .iter()
        .map(|n| Simulation::execute_networks(&ideal_cfg, std::slice::from_ref(n)).cores[0].cycles)
        .collect();
    let r = Simulation::execute_networks(&chip, &nets);
    let slowdowns: Vec<f64> =
        r.cores.iter().zip(&ideals).map(|(c, &i)| c.cycles as f64 / i as f64).collect();
    let f = fairness(&slowdowns);
    assert!(f > 0.0 && f <= 1.0, "{f}");
    // Symmetric mix: the two ncf copies behave alike, as do the gpt2 copies.
    assert!((slowdowns[0] / slowdowns[2] - 1.0).abs() < 0.1, "{slowdowns:?}");
    assert!((slowdowns[1] / slowdowns[3] - 1.0).abs() < 0.1, "{slowdowns:?}");
}

#[test]
fn prediction_pipeline_runs_end_to_end() {
    use mnpusim::{SlowdownModel, WorkloadProfile};
    let chip = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let model = SlowdownModel::train_on_random_networks(&chip, 4, 4, 99);
    let a = WorkloadProfile::measure(&chip, &zoo::ncf(Scale::Bench));
    let b = WorkloadProfile::measure(&chip, &zoo::gpt2(Scale::Bench));
    let s = model.predict_slowdown(&a, &b);
    assert!((1.0..10.0).contains(&s), "plausible slowdown: {s}");
}
