//! The `RunRequest` facade must be a pure re-routing layer: every shape
//! emits reports byte-identical to the entry point it collapsed
//! (golden-fixture equality on the emitted JSON), and invalid requests
//! fail in `build()` with a telling error instead of deep in the engine.

use mnpusim::prelude::*;
use mnpusim::{zoo, Scale};

fn dual_nets() -> Vec<Network> {
    vec![zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench)]
}

#[test]
#[allow(deprecated)] // the facade replaces run_traces; both must emit the same bytes
fn traces_mode_matches_the_retired_run_traces() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces: Vec<WorkloadTrace> =
        dual_nets().iter().zip(&cfg.arch).map(|(n, a)| WorkloadTrace::generate(n, a)).collect();
    let old = Simulation::run_traces(&cfg, &traces);
    let new = RunRequest::traces(&cfg, traces).run().batch();
    assert_eq!(new.to_json(), old.to_json());
}

#[test]
#[allow(deprecated)] // the facade replaces run_networks; both must emit the same bytes
fn networks_mode_matches_the_retired_run_networks() {
    // Stats probe on, so the comparison covers the instrumented report too.
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusD);
    cfg.probe = ProbeMode::Stats;
    let old = Simulation::run_networks(&cfg, &dual_nets());
    let new = RunRequest::networks(&cfg, dual_nets()).run().batch();
    assert_eq!(new.to_json(), old.to_json());
}

#[test]
#[allow(deprecated)] // the facade replaces run_fleet; both must emit the same bytes
fn fleet_mode_matches_the_retired_run_fleet() {
    let cfg = SystemConfig::bench(2, SharingLevel::Static);
    let chips = vec![dual_nets(), vec![zoo::gpt2(Scale::Bench), zoo::ncf(Scale::Bench)]];
    let old = Simulation::run_fleet(&cfg, &chips);
    let new = RunRequest::fleet(&cfg, chips).run().fleet();
    assert_eq!(new.len(), old.len());
    for (n, o) in new.iter().zip(&old) {
        assert_eq!(n.to_json(), o.to_json());
    }
}

fn scenario() -> ScenarioSpec {
    ScenarioSpec {
        system: SystemConfig::bench(2, SharingLevel::PlusDwt),
        scale: Scale::Bench,
        seed: 7,
        arrival: ArrivalSpec::FixedIncrement { increment: 50_000 },
        policy: PolicySpec::RoundRobin,
        jobs: ["ncf", "dlrm", "ncf"]
            .iter()
            .map(|n| JobSpec { network: n.to_string(), arrival: None, core: None })
            .collect(),
    }
}

#[test]
fn serve_mode_matches_the_direct_serve_call() {
    let old = mnpusim::sched::serve(&scenario());
    let new = RunRequest::serve(scenario()).run().serve();
    assert_eq!(new.to_json(), old.to_json());
    assert_eq!(new, old);
}

#[test]
fn checkpointed_requests_stay_bit_exact() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let straight = RunRequest::networks(&cfg, dual_nets()).run().batch();
    let resumed =
        RunRequest::networks(&cfg, dual_nets()).checkpoint_at(straight.total_cycles / 2).run();
    assert_eq!(resumed.batch().to_json(), straight.to_json());
}

#[test]
fn outcome_report_reaches_every_shape() {
    let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    let nets = vec![zoo::ncf(Scale::Bench)];
    let batch = RunRequest::networks(&cfg, nets.clone()).run();
    assert!(batch.report().total_cycles > 0);
    let fleet = RunRequest::fleet(&cfg, vec![nets]).run();
    assert!(fleet.report().total_cycles > 0);
    let serve = RunRequest::serve(scenario()).run();
    assert!(serve.report().total_cycles > 0);
}

#[test]
fn build_rejects_malformed_requests() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);

    // Workload count must match the core count, per chip.
    let wrong = RunRequest::networks(&cfg, vec![zoo::ncf(Scale::Bench)]).build();
    assert_eq!(wrong.unwrap_err(), RequestError::Shape { what: "networks", expected: 2, got: 1 });
    let wrong_chip = RunRequest::fleet(&cfg, vec![vec![zoo::ncf(Scale::Bench)]]).build();
    assert!(matches!(wrong_chip.unwrap_err(), RequestError::Shape { what: "fleet networks", .. }));

    // Checkpoints only make sense on single-chip batch runs.
    let ck = RunRequest::serve(scenario()).checkpoint_at(100).build();
    assert_eq!(ck.unwrap_err(), RequestError::Checkpoint { shape: "serve" });
    let ck = RunRequest::fleet(&cfg, vec![dual_nets()]).checkpoint_at(100).build();
    assert_eq!(ck.unwrap_err(), RequestError::Checkpoint { shape: "fleet" });

    // An invalid system configuration surfaces the config validator's error.
    let mut broken = cfg.clone();
    broken.channels_per_core = 0;
    let err = RunRequest::networks(&broken, dual_nets()).build().unwrap_err();
    assert!(matches!(err, RequestError::Config(_)), "got {err:?}");
}
