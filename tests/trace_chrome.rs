//! Chrome-trace emission contract, driven end to end: a real engine run
//! under [`ProbeMode::Flight`] populates a flight ring, and the exported
//! document must hold the invariants any `chrome://tracing` / Perfetto
//! loader relies on — it parses as JSON, events are `ts`-sorted, every
//! `B` has a matching same-name `E` on its thread, and the job span nests
//! inside the worker span.

use mnpu_service::json::{self, Value};
use mnpusim::prelude::*;
use mnpusim::trace::TraceHandle;
use mnpusim::{zoo, ProbeMode};

/// Run a dual-core flight-probed workload and export its Chrome trace.
fn traced_document() -> String {
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    cfg.probe = ProbeMode::Flight;
    let trace = TraceHandle::with_capacity(512);
    {
        let _g = mnpusim::trace::install(&trace);
        RunRequest::networks(&cfg, vec![zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)])
            .run()
            .batch();
    }
    trace.chrome_json("job-42", 3)
}

fn events(doc: &str) -> Vec<Value> {
    let v = json::parse(doc).expect("chrome trace must parse as JSON");
    let arr = v.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    assert!(!arr.is_empty(), "an executed run must export events");
    arr.to_vec()
}

fn field<'a>(e: &'a Value, key: &str) -> &'a Value {
    e.get(key).unwrap_or_else(|| panic!("event lacks {key}"))
}

#[test]
fn document_parses_and_is_ts_sorted() {
    let doc = traced_document();
    let evs = events(&doc);
    let ts: Vec<f64> = evs.iter().map(|e| field(e, "ts").as_num().unwrap()).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "events are not ts-sorted");
}

#[test]
fn every_begin_has_a_matching_end_per_thread() {
    let doc = traced_document();
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    let mut spans = 0usize;
    for e in events(&doc) {
        let ph = field(&e, "ph").as_str().unwrap().to_string();
        let tid = field(&e, "tid").as_num().unwrap() as i64;
        let name = field(&e, "name").as_str().unwrap().to_string();
        match ph.as_str() {
            "B" => {
                stacks.entry(tid).or_default().push(name);
                spans += 1;
            }
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without B on tid {tid}"));
                assert_eq!(top, name, "mismatched B/E pair on tid {tid}");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    // A real flight-probed run produces tile-phase spans beyond the two
    // control spans.
    assert!(spans > 2, "expected tile-phase spans, got only the control lane");
}

#[test]
fn job_span_nests_inside_worker_span() {
    let doc = traced_document();
    let evs = events(&doc);
    let pos = |name: &str, ph: &str| {
        evs.iter()
            .position(|e| {
                field(e, "name").as_str() == Some(name) && field(e, "ph").as_str() == Some(ph)
            })
            .unwrap_or_else(|| panic!("no {ph} event for {name}"))
    };
    let (wb, jb) = (pos("worker-3", "B"), pos("job-42", "B"));
    let (je, we) = (pos("job-42", "E"), pos("worker-3", "E"));
    assert!(wb < jb && jb < je && je < we, "job span does not nest inside worker span");
}

#[test]
fn instants_carry_wall_clock_in_args_only() {
    // Wall-clock readings ride in `args` (telemetry), never in `ts`
    // (which is simulated cycles) — the determinism story depends on the
    // separation staying visible here.
    let doc = traced_document();
    let mut saw_instant = false;
    for e in events(&doc) {
        if field(&e, "ph").as_str() == Some("i") {
            saw_instant = true;
            let args = field(&e, "args");
            assert!(args.get("wall_ms").is_some(), "instant without wall_ms arg");
        }
    }
    assert!(saw_instant, "a flight-probed run must export instant events");
}
