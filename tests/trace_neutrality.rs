//! Determinism-neutrality suite for the mnpu-trace layer.
//!
//! The observability contract is that watching a run never changes it:
//! attaching a [`TraceHandle`](mnpusim::trace::TraceHandle) to the driver,
//! switching the engine probe to [`ProbeMode::Flight`], or doing both at
//! once must leave every simulation artifact — reports, checkpoints, the
//! bytes a resume produces — byte-identical to the unobserved run. Each
//! test here pins one face of that contract.

use mnpusim::prelude::*;
use mnpusim::trace::TraceHandle;
use mnpusim::{zoo, ProbeMode, RunControl, RunObservation};

fn dual_config() -> SystemConfig {
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    cfg.trace_window = Some(4096);
    cfg
}

fn dual_nets() -> Vec<Network> {
    vec![zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)]
}

fn runner(cfg: &SystemConfig) -> Runner {
    RunRequest::networks(cfg, dual_nets()).build().expect("valid request")
}

fn outcome_json(outcome: RunOutcome) -> String {
    outcome.batch().to_json()
}

#[test]
fn observed_run_is_byte_identical_and_publishes_progress() {
    let cfg = dual_config();
    let plain = match runner(&cfg).run_controlled(&mut || RunControl::Continue) {
        RunProgress::Done(o) => outcome_json(o),
        other => panic!("unstoppable run must finish, got {other:?}"),
    };
    let trace = TraceHandle::new();
    let observed = match runner(&cfg)
        .run_observed(Some(&trace), &mut |_: RunObservation| RunControl::Continue)
    {
        RunProgress::Done(o) => outcome_json(o),
        other => panic!("unstoppable run must finish, got {other:?}"),
    };
    assert_eq!(plain, observed, "attaching telemetry changed the report bytes");
    // The observation side effects are real: cycles advanced and at least
    // one poll boundary was published into the progress cell.
    let snap = trace.progress().snapshot();
    assert!(snap.cycles > 0, "observed run published no cycles");
    assert!(snap.polls >= 1, "observed run published no polls");
    assert!(!trace.events().is_empty(), "observed run left no ring events");
}

#[test]
fn flight_probe_report_matches_probe_none() {
    let mut none_cfg = dual_config();
    none_cfg.probe = ProbeMode::None;
    let mut flight_cfg = dual_config();
    flight_cfg.probe = ProbeMode::Flight;
    let none = RunRequest::networks(&none_cfg, dual_nets()).run().batch().to_json();
    let trace = TraceHandle::new();
    let flight = {
        let _g = mnpusim::trace::install(&trace);
        RunRequest::networks(&flight_cfg, dual_nets()).run().batch().to_json()
    };
    assert_eq!(none, flight, "ProbeMode::Flight leaked telemetry into the report");
    // And the probe really ran: dense traffic reached the progress cell
    // and phase edges reached the ring.
    let snap = trace.progress().snapshot();
    assert!(snap.traffic.dram_txns > 0, "flight probe recorded no DRAM traffic");
    assert!(
        trace.events().iter().any(|e| e.kind.label().ends_with("_begin")),
        "flight probe recorded no phase edges"
    );
}

#[test]
fn traced_checkpoint_resumes_to_untraced_bytes() {
    let cfg = dual_config();
    let uninterrupted = match runner(&cfg).run_controlled(&mut || RunControl::Continue) {
        RunProgress::Done(o) => outcome_json(o),
        other => panic!("unstoppable run must finish, got {other:?}"),
    };
    // Stop the traced run at its first poll boundary.
    let trace = TraceHandle::new();
    let ckpt = match runner(&cfg)
        .run_observed(Some(&trace), &mut |_: RunObservation| RunControl::Checkpoint)
    {
        RunProgress::Checkpointed(c) => c,
        other => panic!("a checkpoint-at-first-poll run must checkpoint, got {other:?}"),
    };
    // Resume without any telemetry; the answer must match.
    let resumed = match runner(&cfg)
        .resume(ckpt, &mut || RunControl::Continue)
        .expect("checkpoint round-trips")
    {
        RunProgress::Done(o) => outcome_json(o),
        other => panic!("resumed run must finish, got {other:?}"),
    };
    assert_eq!(uninterrupted, resumed, "a traced stop changed the resumed answer");
}

#[test]
fn checkpoint_bytes_ignore_telemetry() {
    let cfg = dual_config();
    let plain = match runner(&cfg).run_controlled(&mut || RunControl::Checkpoint) {
        RunProgress::Checkpointed(c) => c.to_json(),
        other => panic!("expected a checkpoint, got {other:?}"),
    };
    let trace = TraceHandle::new();
    let traced = match runner(&cfg)
        .run_observed(Some(&trace), &mut |_: RunObservation| RunControl::Checkpoint)
    {
        RunProgress::Checkpointed(c) => c.to_json(),
        other => panic!("expected a checkpoint, got {other:?}"),
    };
    assert_eq!(plain, traced, "telemetry leaked into checkpoint bytes");
}

#[test]
fn flight_probe_checkpoint_round_trips_like_none() {
    // A run under ProbeMode::Flight that checkpoints and resumes must land
    // on the ProbeMode::None answer: the probe saves/loads only its inner
    // (null) state, so the snapshot carries no telemetry.
    let mut cfg = dual_config();
    cfg.probe = ProbeMode::Flight;
    let mut none_cfg = dual_config();
    none_cfg.probe = ProbeMode::None;
    let expected = RunRequest::networks(&none_cfg, dual_nets()).run().batch().to_json();
    let trace = TraceHandle::new();
    let _g = mnpusim::trace::install(&trace);
    let ckpt = match RunRequest::networks(&cfg, dual_nets())
        .build()
        .expect("valid request")
        .run_observed(Some(&trace), &mut |_: RunObservation| RunControl::Checkpoint)
    {
        RunProgress::Checkpointed(c) => c,
        other => panic!("expected a checkpoint, got {other:?}"),
    };
    let resumed = match RunRequest::networks(&cfg, dual_nets())
        .build()
        .expect("valid request")
        .resume_observed(ckpt, Some(&trace), &mut |_: RunObservation| RunControl::Continue)
        .expect("checkpoint round-trips")
    {
        RunProgress::Done(o) => o.batch().to_json(),
        other => panic!("resumed run must finish, got {other:?}"),
    };
    assert_eq!(expected, resumed, "flight-probe checkpoint/resume diverged from probe-none");
}
