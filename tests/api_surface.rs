//! The facade crate's public surface is a reviewed artifact.
//!
//! This test regenerates a listing of every `pub` item (and `impl`
//! header) in the root crate's sources and diffs it against the
//! committed `tests/api_surface.txt` — the same golden-fixture
//! convention the engine uses for reports. Any change to the facade
//! (a new method on `RunRequest`, a renamed re-export, a signature
//! change) shows up as a reviewable diff in that file instead of
//! slipping through; re-bless deliberately with `MNPU_BLESS=1`.

use std::fmt::Write as _;
use std::path::Path;

/// The root-crate sources whose `pub` items make up the facade surface.
const SOURCES: [&str; 4] = ["src/lib.rs", "src/prelude.rs", "src/run.rs", "src/job.rs"];

/// Append `path`'s declaration lines to `out`: every top-of-line `pub`
/// item and `impl` header, accumulated until its opening `{` or closing
/// `;`, with internal whitespace collapsed so rustfmt line wrapping
/// cannot change the listing.
fn extract(root: &Path, path: &str, out: &mut String) {
    let text =
        std::fs::read_to_string(root.join(path)).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let _ = writeln!(out, "## {path}");
    let mut pending: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        let decl = match &mut pending {
            Some(acc) => {
                acc.push(' ');
                acc.push_str(t);
                acc
            }
            None if t.starts_with("pub ") || t.starts_with("impl ") || t.starts_with("impl<") => {
                pending = Some(t.to_string());
                pending.as_mut().expect("just set")
            }
            None => continue,
        };
        // A `pub use` list keeps its braced names (they ARE the surface);
        // everything else stops at the body's opening brace.
        let end = if decl.starts_with("pub use") { decl.find(';') } else { decl.find(['{', ';']) };
        if let Some(end) = end {
            let head: String = decl[..end].split_whitespace().collect::<Vec<_>>().join(" ");
            let _ = writeln!(out, "{}", head.trim_end());
            pending = None;
        }
    }
    let _ = writeln!(out);
}

#[test]
fn facade_surface_matches_the_committed_listing() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut got = String::new();
    for src in SOURCES {
        extract(root, src, &mut got);
    }
    let golden = root.join("tests/api_surface.txt");
    if std::env::var_os("MNPU_BLESS").is_some() {
        std::fs::write(&golden, &got).expect("blessing tests/api_surface.txt");
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .expect("tests/api_surface.txt is committed; MNPU_BLESS=1 regenerates it");
    assert_eq!(
        got, want,
        "the facade's public surface drifted from tests/api_surface.txt;\n\
         review the diff above and re-bless with:\n\
         MNPU_BLESS=1 cargo test --test api_surface"
    );
}
