//! End-to-end CLI test: drive the `mnpusim` binary exactly as the paper's
//! appendix does, against the checked-in `configs/`, and verify the result
//! files.

use std::fs;
use std::path::Path;
use std::process::Command;

#[test]
fn cli_runs_the_shipped_dual_core_config() {
    let out_dir = std::env::temp_dir().join(format!("mnpu_cli_{}", std::process::id()));
    let _ = fs::remove_dir_all(&out_dir);

    let status = Command::new(env!("CARGO_BIN_EXE_mnpusim"))
        .args([
            "configs/arch/bench_dual.txt",
            "configs/network/dual_ncf_gpt2.txt",
            "configs/dram/bench_dual_dwt.cfg",
            "configs/npumem/bench_dual.txt",
            out_dir.to_str().unwrap(),
            "configs/misc/default.cfg",
        ])
        .status()
        .expect("binary runs");
    assert!(status.success());

    let result = out_dir.join("result");
    let avg0 = result.join("avg_cycle_arch0_ncf0.txt");
    let avg1 = result.join("avg_cycle_arch1_gpt21.txt");
    for p in [&avg0, &avg1] {
        assert!(p.exists(), "{} missing", p.display());
        let cycles: u64 = fs::read_to_string(p).unwrap().trim().parse().unwrap();
        assert!(cycles > 0);
    }
    // Per-layer files exist and are non-trivial.
    let exec = fs::read_to_string(result.join("execution_cycle_arch1_gpt21.txt")).unwrap();
    assert!(exec.lines().count() > 20, "gpt2 has 25 layers + total");
    let _ = fs::remove_dir_all(&out_dir);
}

#[test]
fn cli_rejects_bad_usage_and_bad_files() {
    let out = Command::new(env!("CARGO_BIN_EXE_mnpusim"))
        .arg("only-one-arg")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = Command::new(env!("CARGO_BIN_EXE_mnpusim"))
        .args(["nope.txt", "nope.txt", "nope.cfg", "nope.txt", "/tmp/mnpu_nope", "nope.cfg"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn cli_is_deterministic_across_invocations() {
    let run = |tag: &str| {
        let out_dir =
            std::env::temp_dir().join(format!("mnpu_cli_det_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&out_dir);
        let status = Command::new(env!("CARGO_BIN_EXE_mnpusim"))
            .args([
                "configs/arch/bench_dual.txt",
                "configs/network/dual_ncf_gpt2.txt",
                "configs/dram/bench_dual_dwt.cfg",
                "configs/npumem/bench_dual.txt",
                out_dir.to_str().unwrap(),
                "configs/misc/default.cfg",
            ])
            .status()
            .unwrap();
        assert!(status.success());
        let cycles = fs::read_to_string(out_dir.join("result/avg_cycle_arch0_ncf0.txt")).unwrap();
        let _ = fs::remove_dir_all(&out_dir);
        cycles
    };
    assert_eq!(run("a"), run("b"));
}

#[test]
fn shipped_configs_parse() {
    // Every checked-in config file must load through the library path too.
    use mnpu_config::load_run;
    let spec = load_run(
        Path::new("configs/arch/bench_dual.txt"),
        Path::new("configs/network/dual_ncf_gpt2.txt"),
        Path::new("configs/dram/bench_dual_dwt.cfg"),
        Path::new("configs/npumem/bench_dual.txt"),
        Path::new("configs/misc/default.cfg"),
    )
    .expect("shipped configs are valid");
    assert_eq!(spec.system.cores, 2);
    assert_eq!(spec.networks.len(), 2);
}
