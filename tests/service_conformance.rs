//! Black-box conformance suite for `mnpu-serviced`: everything here talks
//! to the daemon over real TCP/HTTP against an ephemeral port, exactly as
//! an external client would, and compares the bytes it gets back against
//! in-process facade runs of the same workloads.
//!
//! The three pillars:
//!
//! 1. **Byte identity** — the daemon's `/report` for the quad-core golden
//!    workload and for a tiny serve scenario must equal the in-process
//!    `RunRequest` serialization byte for byte.
//! 2. **Stop-safety** — a job stopped mid-flight (budget or `DELETE`) and
//!    resumed from its handed-back checkpoint must produce the same bytes
//!    as the uninterrupted run.
//! 3. **Admission** — with the queue bound at 2 and dispatch held, 8
//!    concurrent submissions yield exactly 2 acceptances and 6 `429`s
//!    (with `Retry-After`), and both accepted jobs complete after release.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mnpu_config::parse_scenario;
use mnpu_service::{Service, ServiceConfig};
use mnpusim::prelude::*;
use mnpusim::{zoo, Scale};

/// One HTTP exchange; returns (status, headers, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("daemon is listening");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: conformance\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).expect("status line").parse().unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

/// Pull a `"key":"value"` string out of a response body (the bodies are
/// tiny service-authored JSON; a full parser is not needed here).
fn str_field(body: &str, key: &str) -> String {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}")) + marker.len();
    body[start..].split('"').next().unwrap().to_string()
}

fn submit(addr: SocketAddr, body: &str) -> String {
    let (status, _, resp) = request(addr, "POST", "/v1/jobs", body);
    assert_eq!(status, 202, "submission refused: {resp}");
    str_field(&resp, "id")
}

fn wait_terminal(addr: SocketAddr, id: &str) -> String {
    loop {
        let (status, _, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = str_field(&body, "state");
        if !matches!(state.as_str(), "queued" | "running") {
            return state;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn report(addr: SocketAddr, id: &str) -> String {
    let (status, _, body) = request(addr, "GET", &format!("/v1/jobs/{id}/report"), "");
    assert_eq!(status, 200, "{body}");
    body
}

/// The engine's pinned golden workload: quad-core +DWT with bandwidth
/// tracing, four mixed benchmarks.
fn golden_config() -> SystemConfig {
    let mut cfg = SystemConfig::bench(4, SharingLevel::PlusDwt);
    cfg.trace_window = Some(4096);
    cfg
}

fn golden_nets() -> Vec<mnpusim::Network> {
    vec![
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::yolo_tiny(Scale::Bench),
        zoo::dlrm(Scale::Bench),
    ]
}

const GOLDEN_BODY: &str = r#"{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096}"#;

#[test]
fn daemon_quad_golden_is_byte_identical_to_facade() {
    let expected = RunRequest::networks(&golden_config(), golden_nets()).run().batch().to_json();
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();

    let id = submit(addr, GOLDEN_BODY);
    assert_eq!(wait_terminal(addr, &id), "completed");
    assert_eq!(report(addr, &id), expected, "daemon and facade bytes diverge");
    svc.shutdown();
}

#[test]
fn daemon_serve_scenario_is_byte_identical_to_facade() {
    let scenario = "cores = 2\nsharing = +DWT\npattern = fixed:2000\n\
                    policy = first_free\njob = ncf\njob = gpt2\njob = ncf\n";
    let spec = parse_scenario("conformance", scenario).unwrap();
    let expected = RunRequest::serve(spec).run().serve().to_json();

    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    let body = format!(r#"{{"kind":"serve","scenario":"{}"}}"#, scenario.replace('\n', "\\n"));
    let id = submit(addr, &body);
    assert_eq!(wait_terminal(addr, &id), "completed");
    assert_eq!(report(addr, &id), expected, "daemon and facade serve bytes diverge");
    svc.shutdown();
}

/// Budget 0 stops the run deterministically at its first safe boundary;
/// the handed-back checkpoint resumed through the daemon must finish with
/// the uninterrupted run's exact bytes.
#[test]
fn budget_stop_then_resume_matches_uninterrupted_run() {
    let expected = RunRequest::networks(&golden_config(), golden_nets()).run().batch().to_json();
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();

    let budgeted = r#"{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096,"budget_ms":0}"#;

    let id = submit(addr, budgeted);
    assert_eq!(wait_terminal(addr, &id), "over_budget");
    let (status, _, ckpt) = request(addr, "GET", &format!("/v1/jobs/{id}/checkpoint"), "");
    assert_eq!(status, 200, "over-budget jobs must hand back a checkpoint: {ckpt}");
    assert!(ckpt.contains("mnpu-job-checkpoint"));

    // Resume: same workload body plus the checkpoint, no budget this time.
    let resume_body = format!(
        r#"{{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096,"resume":{ckpt}}}"#
    );
    let rid = submit(addr, &resume_body);
    assert_eq!(wait_terminal(addr, &rid), "completed");
    assert_eq!(report(addr, &rid), expected, "resumed run diverged from uninterrupted run");
    svc.shutdown();
}

/// A true `DELETE` mid-run: the stop cycle is whatever poll the request
/// lands on, and the resumed run must *still* match the uninterrupted
/// bytes — stopping never changes the answer, wherever it happens.
#[test]
fn cancel_mid_run_then_resume_matches_uninterrupted_run() {
    let expected = RunRequest::networks(&golden_config(), golden_nets()).run().batch().to_json();
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();

    // A distinct body (huge budget) so the result cache from other tests'
    // submissions cannot answer it instantly.
    let body = r#"{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096,"budget_ms":3600000}"#;
    let id = submit(addr, body);
    // Wait until it is actually running, then cancel.
    loop {
        let (_, _, status_body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        if str_field(&status_body, "state") != "queued" {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _, _) = request(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200);
    match wait_terminal(addr, &id).as_str() {
        "cancelled" => {
            let (status, _, ckpt) = request(addr, "GET", &format!("/v1/jobs/{id}/checkpoint"), "");
            assert_eq!(status, 200, "cancelled-while-running jobs keep their work: {ckpt}");
            let resume_body = format!(
                r#"{{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096,"resume":{ckpt}}}"#
            );
            let rid = submit(addr, &resume_body);
            assert_eq!(wait_terminal(addr, &rid), "completed");
            assert_eq!(report(addr, &rid), expected, "cancel/resume changed the answer");
        }
        // The run can legitimately win the race and finish before the
        // DELETE lands; byte identity must then hold directly.
        "completed" => assert_eq!(report(addr, &id), expected),
        other => panic!("unexpected terminal state {other}"),
    }
    svc.shutdown();
}

#[test]
fn version_endpoint_reports_build_and_hatches() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    let (status, _, body) = request(addr, "GET", "/v1/version", "");
    assert_eq!(status, 200, "{body}");
    let v = mnpu_service::json::parse(&body).expect("version body is JSON");
    assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("mnpu-service"));
    assert!(!str_field(&body, "version").is_empty());
    assert!(v.get("snapshot_version").and_then(|x| x.as_u64()).is_some(), "{body}");
    // The determinism escape hatches are booleans, whatever the env says.
    assert!(body.contains("\"fastfwd\":"), "{body}");
    assert!(body.contains("\"prefix_share\":"), "{body}");
    svc.shutdown();
}

#[test]
fn metrics_are_prometheus_exposition_compliant() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    let id = submit(addr, r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"]}"#);
    assert_eq!(wait_terminal(addr, &id), "completed");
    let (status, head, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "metrics must advertise the exposition content type: {head}"
    );
    mnpusim::metrics::prom::lint(&body).expect("metrics must pass the exposition lint");
    assert!(body.contains("# TYPE service_job_latency_seconds histogram"), "{body}");
    assert!(body.contains("# TYPE service_dispatch_queue_depth histogram"), "{body}");
    assert!(body.contains("sim_fastfwd_commits_total"), "{body}");
    svc.shutdown();
}

/// The black-box test: a worker panic mid-job must leave a well-formed
/// `flight-<job>.json` whose trailing events show what the job was doing
/// when it died.
#[test]
fn worker_panic_dumps_a_wellformed_flight_recording() {
    let dir = std::env::temp_dir().join(format!("mnpu-flight-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig { flight_dir: Some(dir.clone()), ..ServiceConfig::default() };
    let svc = Service::start(cfg).unwrap();
    let addr = svc.addr();

    let body = r#"{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096,"fault":"panic"}"#;
    let id = submit(addr, body);
    assert_eq!(wait_terminal(addr, &id), "failed");
    let (_, _, status_body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert!(status_body.contains("induced fault"), "{status_body}");

    // The dump is written after the terminal state is published; poll
    // briefly for the file.
    let path = dir.join(format!("flight-{id}.json"));
    let mut waited = 0;
    while !path.exists() && waited < 2000 {
        std::thread::sleep(Duration::from_millis(10));
        waited += 10;
    }
    let doc = std::fs::read_to_string(&path).expect("flight dump must exist after a panic");
    let v = mnpu_service::json::parse(&doc).expect("flight dump is well-formed JSON");
    assert_eq!(v.get("format").and_then(|x| x.as_str()), Some("mnpu-flight"));
    assert_eq!(v.get("job").and_then(|x| x.as_str()), Some(id.as_str()));
    let events = v.get("events").and_then(|x| x.as_arr()).expect("events array");
    assert!(!events.is_empty(), "a panicking job must leave events behind");
    // The tail of the recording matches the job's phase at death: driver
    // polls, then the failed lifecycle edge finish() recorded.
    let last = events.last().unwrap();
    assert_eq!(last.get("kind").and_then(|x| x.as_str()), Some("failed"), "{doc}");
    assert!(
        events.iter().any(|e| e.get("kind").and_then(|x| x.as_str()) == Some("poll")),
        "the ring must show the driver polling before the death: {doc}"
    );
    // The same recording is fetchable over HTTP, and the live progress
    // cell agrees about the terminal phase.
    let (status, _, flight) = request(addr, "GET", &format!("/v1/jobs/{id}/flight"), "");
    assert_eq!(status, 200);
    assert!(flight.contains("\"kind\":\"failed\""), "{flight}");
    let (status, _, progress) = request(addr, "GET", &format!("/v1/jobs/{id}/progress"), "");
    assert_eq!(status, 200);
    assert_eq!(str_field(&progress, "phase"), "failed");
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Live progress: polling a running job's `/progress` must show cycle
/// counts that only ever grow.
#[test]
fn progress_cycles_grow_monotonically_across_polls() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    // A unique body (distinct budget) so the result cache of sibling
    // tests cannot answer it instantly.
    let body = r#"{"kind":"networks","cores":4,"sharing":"+dwt","networks":["ncf","gpt2","yt","dlrm"],"trace_window":4096,"budget_ms":3600001}"#;
    let id = submit(addr, body);

    let mut samples: Vec<u64> = Vec::new();
    let mut live_samples = 0usize;
    loop {
        let (_, _, status_body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        let state = str_field(&status_body, "state");
        if state == "queued" {
            continue;
        }
        let (status, _, progress) = request(addr, "GET", &format!("/v1/jobs/{id}/progress"), "");
        assert_eq!(status, 200, "{progress}");
        let v = mnpu_service::json::parse(&progress).unwrap();
        samples.push(v.get("cycles").and_then(|x| x.as_u64()).unwrap());
        if state == "running" {
            live_samples += 1;
        } else {
            break;
        }
    }
    // Whatever the interleaving, every poll of a dispatched job saw a
    // non-decreasing cycle count, we got at least 3 reads, and the job
    // made real progress.
    while samples.len() < 3 {
        let (_, _, progress) = request(addr, "GET", &format!("/v1/jobs/{id}/progress"), "");
        let v = mnpu_service::json::parse(&progress).unwrap();
        samples.push(v.get("cycles").and_then(|x| x.as_u64()).unwrap());
    }
    assert!(samples.windows(2).all(|w| w[0] <= w[1]), "cycles regressed: {samples:?}");
    assert!(*samples.last().unwrap() > 0, "job finished with zero published cycles");
    assert!(live_samples > 0 || wait_terminal(addr, &id) == "completed");
    svc.shutdown();
}

#[test]
fn admission_bounces_exactly_the_excess_and_loses_nothing() {
    let cfg = ServiceConfig { queue_depth: 2, workers: 1, ..ServiceConfig::default() };
    let svc = Service::start(cfg).unwrap();
    let addr = svc.addr();
    // Hold dispatch so the queue fills deterministically.
    let (status, _, _) = request(addr, "POST", "/v1/hold", "");
    assert_eq!(status, 200);

    let body = r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"]}"#;
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, head, resp) = request(addr, "POST", "/v1/jobs", body);
                let id = (status == 202).then(|| str_field(&resp, "id"));
                (status, head, id)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let accepted: Vec<_> = results.iter().filter(|(s, _, _)| *s == 202).collect();
    let rejected: Vec<_> = results.iter().filter(|(s, _, _)| *s == 429).collect();
    assert_eq!(accepted.len(), 2, "exactly the queue bound is admitted: {results:?}");
    assert_eq!(rejected.len(), 6, "exactly the excess is bounced: {results:?}");
    for (_, head, _) in &rejected {
        assert!(head.contains("Retry-After:"), "429 must advertise Retry-After: {head}");
    }

    // Release the hold: every accepted job must run to completion.
    let (status, _, _) = request(addr, "POST", "/v1/release", "");
    assert_eq!(status, 200);
    for (_, _, id) in &accepted {
        let id = id.as_ref().unwrap();
        assert_eq!(wait_terminal(addr, id), "completed", "an accepted job was dropped");
    }
    let (_, _, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metrics.contains("service_submissions_total 8"), "{metrics}");
    assert!(metrics.contains("service_rejects_total 6"), "{metrics}");
    assert!(metrics.contains("service_completions_total 2"), "{metrics}");
    svc.shutdown();
}
