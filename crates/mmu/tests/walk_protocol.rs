//! Protocol-level property tests: arbitrary interleavings of lookups,
//! walk starts and walk advances never leak walkers, never double-fill,
//! and keep statistics consistent.

use mnpu_mmu::{Mmu, MmuConfig, WalkId, WalkStart, WalkStep};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Lookup(usize, u64),
    StartWalk(usize, u64),
    AdvanceOne,
}

fn arb_op(cores: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cores, 0u64..64).prop_map(|(c, v)| Op::Lookup(c, v)),
        (0..cores, 0u64..64).prop_map(|(c, v)| Op::StartWalk(c, v)),
        Just(Op::AdvanceOne),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn prop_walker_conservation(ops in proptest::collection::vec(arb_op(2), 1..200)) {
        let cfg = MmuConfig { ptw_shared: true, ptws_per_core: 2, ..MmuConfig::bench(4096) };
        let total = cfg.total_walkers(2);
        let mut mmu = Mmu::new(cfg, 2, &[0, 1 << 32]);
        let mut in_flight: Vec<WalkId> = Vec::new();
        for op in ops {
            match op {
                Op::Lookup(c, v) => {
                    let _ = mmu.lookup(c, v);
                }
                Op::StartWalk(c, v) => match mmu.start_or_join_walk(c, v) {
                    WalkStart::Started { walk, .. } => in_flight.push(walk),
                    WalkStart::Joined(w) => prop_assert!(in_flight.contains(&w)),
                    WalkStart::NoWalker => {
                        prop_assert_eq!(in_flight.len(), total, "NoWalker only when exhausted");
                    }
                },
                Op::AdvanceOne => {
                    if let Some(w) = in_flight.last().copied() {
                        if let WalkStep::Done { .. } = mmu.advance_walk(w) {
                            in_flight.pop();
                        }
                    }
                }
            }
            prop_assert_eq!(mmu.walks_in_flight(), in_flight.len());
            prop_assert!(in_flight.len() <= total);
        }
        // Drain everything: every walker must come back.
        while let Some(w) = in_flight.last().copied() {
            if let WalkStep::Done { .. } = mmu.advance_walk(w) {
                in_flight.pop();
            }
        }
        prop_assert_eq!(mmu.free_walkers(0), total);
        prop_assert_eq!(mmu.walks_in_flight(), 0);
    }

    #[test]
    fn prop_completed_walks_hit_afterwards(vpns in proptest::collection::vec(0u64..1024, 1..32)) {
        let mut mmu = Mmu::new(MmuConfig::neummu(65536), 1, &[0]);
        for &v in &vpns {
            match mmu.start_or_join_walk(0, v) {
                WalkStart::Started { walk, .. } => loop {
                    if let WalkStep::Done { vpn, .. } = mmu.advance_walk(walk) {
                        prop_assert_eq!(vpn, v);
                        break;
                    }
                },
                WalkStart::Joined(_) => unreachable!("serial walks never join"),
                WalkStart::NoWalker => unreachable!("serial walks never exhaust"),
            }
            prop_assert!(mmu.lookup(0, v), "page resident after its walk");
        }
    }

    #[test]
    fn prop_stats_counters_consistent(vpns in proptest::collection::vec(0u64..16, 1..100)) {
        let mut mmu = Mmu::new(MmuConfig::bench(4096), 1, &[0]);
        for &v in &vpns {
            if !mmu.lookup(0, v) {
                if let WalkStart::Started { walk, .. } = mmu.start_or_join_walk(0, v) {
                    loop {
                        if matches!(mmu.advance_walk(walk), WalkStep::Done { .. }) {
                            break;
                        }
                    }
                }
            }
        }
        let s = mmu.stats(0);
        prop_assert_eq!(s.tlb_hits + s.tlb_misses, vpns.len() as u64);
        prop_assert!(s.walks <= s.tlb_misses);
        prop_assert!(s.walks >= 1);
    }
}
