//! MMU configuration (the paper's `npumem_config` + the PTW part of
//! `misc_config`).

/// Radix walk depth for a page size, following the ARM64 translation
/// granules the paper cites: 4 levels for 4 KB, 3 for 64 KB, 2 for 1 MB
/// sections.
///
/// # Panics
///
/// Panics on an unsupported page size.
pub fn walk_levels_for(page_bytes: u64) -> u32 {
    match page_bytes {
        4096 => 4,
        65536 => 3,
        1048576 => 2,
        _ => panic!("unsupported page size: {page_bytes} (use 4KB, 64KB or 1MB)"),
    }
}

/// Per-core lower/upper bounds on shared-pool walker occupancy — the
/// original `misc_config`'s "upper and lower bound of available PTWs per
/// core" (a DWS-style managed sharing policy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PtwBounds {
    /// Guaranteed walkers per core (hard reservation).
    pub min: Vec<usize>,
    /// Maximum walkers any single core may hold.
    pub max: Vec<usize>,
}

/// MMU configuration for one multi-core NPU chip.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MmuConfig {
    /// TLB entries per core (Table 2: 2048). The shared TLB holds
    /// `cores * tlb_entries_per_core` entries.
    pub tlb_entries_per_core: u64,
    /// TLB associativity (Table 2: 8-way).
    pub tlb_assoc: u64,
    /// Page-table walkers per core (Table 2: 8).
    pub ptws_per_core: usize,
    /// Page size in bytes (4 KB, 64 KB or 1 MB).
    pub page_bytes: u64,
    /// `true` = one chip-wide TLB (`+DWT`); `false` = private per-core TLBs.
    pub tlb_shared: bool,
    /// `true` = all walkers in one dynamically shared pool (`+DW`).
    pub ptw_shared: bool,
    /// Explicit per-core walker counts for static partitioning sweeps
    /// (Figs. 13/14). Ignored when `ptw_shared`; when `None`, each core gets
    /// `ptws_per_core`.
    pub ptw_partition: Option<Vec<usize>>,
    /// Bytes of the per-core page-table region that walk accesses scatter
    /// over.
    pub pt_region_bytes: u64,
    /// Merge concurrent misses to the same page into one walk (MSHR-style;
    /// default). Disable for the ablation of DESIGN.md decision 3.
    pub coalesce_walks: bool,
    /// Managed sharing: per-core min/max occupancy of the shared pool.
    /// Takes precedence over `ptw_shared`/`ptw_partition` when set.
    pub ptw_bounds: Option<PtwBounds>,
}

impl MmuConfig {
    /// The NeuMMU-style configuration of Table 2 at the given page size:
    /// 2048 TLB entries / 8 walkers per core, 8-way, private resources.
    pub fn neummu(page_bytes: u64) -> Self {
        MmuConfig {
            tlb_entries_per_core: 2048,
            tlb_assoc: 8,
            ptws_per_core: 8,
            page_bytes,
            tlb_shared: false,
            ptw_shared: false,
            ptw_partition: None,
            pt_region_bytes: 16 << 20,
            coalesce_walks: true,
            ptw_bounds: None,
        }
    }

    /// A proportionally smaller configuration for bench-scale sweeps:
    /// 512 TLB entries / 2 walkers per core (walker pressure scaled so the
    /// +DW gain tracks the cloud configuration).
    pub fn bench(page_bytes: u64) -> Self {
        MmuConfig {
            tlb_entries_per_core: 512,
            tlb_assoc: 8,
            ptws_per_core: 2,
            page_bytes,
            ..MmuConfig::neummu(page_bytes)
        }
    }

    /// Walk depth implied by the page size.
    pub fn walk_levels(&self) -> u32 {
        walk_levels_for(self.page_bytes)
    }

    /// Bytes of virtual address space one core's TLB can map at once
    /// (entries × page size). A workload whose touched pages fit within the
    /// reach can, absent cross-core interference, run without capacity
    /// evictions — the analytical TLB-reach bound.
    pub fn tlb_reach_bytes(&self) -> u64 {
        self.tlb_entries_per_core * self.page_bytes
    }

    /// Total walkers across `cores` cores.
    pub fn total_walkers(&self, cores: usize) -> usize {
        match &self.ptw_partition {
            Some(p) => p.iter().sum(),
            None => self.ptws_per_core * cores,
        }
    }

    /// Validate the configuration for a chip with `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self, cores: usize) -> Result<(), String> {
        if cores == 0 {
            return Err("at least one core required".into());
        }
        if self.tlb_entries_per_core == 0 || self.tlb_assoc == 0 {
            return Err("TLB geometry must be positive".into());
        }
        if !self.tlb_entries_per_core.is_multiple_of(self.tlb_assoc) {
            return Err("TLB entries must be a multiple of associativity".into());
        }
        if !matches!(self.page_bytes, 4096 | 65536 | 1048576) {
            return Err(format!("unsupported page size {}", self.page_bytes));
        }
        if self.total_walkers(cores) == 0 {
            return Err("at least one page-table walker required".into());
        }
        if let Some(p) = &self.ptw_partition {
            if p.len() != cores {
                return Err("ptw_partition length must equal core count".into());
            }
            if p.contains(&0) {
                return Err("every core needs at least one walker".into());
            }
        }
        if self.pt_region_bytes < 4096 {
            return Err("pt_region_bytes too small".into());
        }
        if let Some(b) = &self.ptw_bounds {
            let total = self.ptws_per_core * cores;
            if b.min.len() != cores || b.max.len() != cores {
                return Err("ptw_bounds vectors must have one entry per core".into());
            }
            if b.min.iter().zip(&b.max).any(|(lo, hi)| lo > hi) {
                return Err("ptw_bounds min must not exceed max".into());
            }
            if b.max.iter().any(|&hi| hi > total) {
                return Err("ptw_bounds max must not exceed the pool".into());
            }
            if b.min.iter().sum::<usize>() > total {
                return Err("ptw_bounds minimums oversubscribe the pool".into());
            }
        }
        Ok(())
    }
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig::neummu(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_levels_match_arm64_granules() {
        assert_eq!(walk_levels_for(4096), 4);
        assert_eq!(walk_levels_for(65536), 3);
        assert_eq!(walk_levels_for(1 << 20), 2);
    }

    #[test]
    #[should_panic(expected = "unsupported page size")]
    fn odd_page_size_panics() {
        let _ = walk_levels_for(8192);
    }

    #[test]
    fn neummu_matches_table2() {
        let c = MmuConfig::neummu(4096);
        assert_eq!(c.tlb_entries_per_core, 2048);
        assert_eq!(c.tlb_assoc, 8);
        assert_eq!(c.ptws_per_core, 8);
        assert!(c.validate(1).is_ok());
        assert!(c.validate(4).is_ok());
    }

    #[test]
    fn tlb_reach_scales_with_page_size() {
        assert_eq!(MmuConfig::neummu(4096).tlb_reach_bytes(), 2048 * 4096);
        assert_eq!(MmuConfig::bench(65536).tlb_reach_bytes(), 512 * 65536);
    }

    #[test]
    fn total_walkers_scales_with_cores() {
        let c = MmuConfig::neummu(4096);
        assert_eq!(c.total_walkers(2), 16);
        let p = MmuConfig { ptw_partition: Some(vec![2, 14]), ..c };
        assert_eq!(p.total_walkers(2), 16);
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = MmuConfig::neummu(4096);

        let c = MmuConfig { tlb_entries_per_core: 100, ..base.clone() }; // not multiple of 8
        assert!(c.validate(1).is_err());

        let c = MmuConfig { page_bytes: 12345, ..base.clone() };
        assert!(c.validate(1).is_err());

        let c = MmuConfig { ptw_partition: Some(vec![4]), ..base.clone() };
        assert!(c.validate(2).is_err(), "partition length mismatch");

        let c = MmuConfig { ptw_partition: Some(vec![0, 16]), ..base.clone() };
        assert!(c.validate(2).is_err(), "zero-walker core");

        assert!(base.validate(0).is_err());
    }
}
