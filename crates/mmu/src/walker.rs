//! Page-table walker pool with shared / partitioned allocation.

/// Internal allocation policy of a [`WalkerPool`].
#[derive(Debug, Clone)]
enum Policy {
    /// One pool; `free[0]` is the free count.
    Shared,
    /// Per-core pools; `free[c]` is core *c*'s free count.
    PerCore,
    /// Shared pool of `total` with per-core `min` reservations and `max`
    /// caps; `in_use[c]` tracks core occupancy.
    Bounded { total: usize, min: Vec<usize>, max: Vec<usize>, in_use: Vec<usize> },
}

/// Allocates page-table walkers to cores under one of four policies:
///
/// * **private** — each core owns a fixed, equal number of walkers
///   (the `Static` and `+D` configurations);
/// * **partitioned** — fixed but *unequal* per-core counts (the Fig. 13/14
///   partitioning sweeps);
/// * **shared** — one pool any core may draw from (`+DW`, `+DWT`);
/// * **bounded** — a shared pool with per-core guaranteed minimums and
///   hard maximums (the original's `misc_config` lower/upper PTW bounds,
///   in the spirit of DWS page-walk stealing).
///
/// ```
/// use mnpu_mmu::WalkerPool;
///
/// let mut pool = WalkerPool::shared(2, 2); // 2 walkers total, 2 cores
/// assert!(pool.try_acquire(0));
/// assert!(pool.try_acquire(1));
/// assert!(!pool.try_acquire(0)); // exhausted
/// pool.release(1);
/// assert!(pool.try_acquire(0)); // core 0 can reuse core 1's walker
/// ```
#[derive(Debug, Clone)]
pub struct WalkerPool {
    policy: Policy,
    /// Shared: `[0]` = free walkers. PerCore: per-core free counts.
    /// Bounded: unused (occupancy lives in the policy).
    free: Vec<usize>,
    capacity: Vec<usize>,
    busy_peak: usize,
    acquires: u64,
    rejects: u64,
}

impl WalkerPool {
    /// One pool of `total` walkers shared by all `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `total` or `cores` is zero.
    pub fn shared(total: usize, cores: usize) -> Self {
        assert!(total > 0 && cores > 0, "pool dimensions must be positive");
        WalkerPool {
            policy: Policy::Shared,
            free: vec![total],
            capacity: vec![total],
            busy_peak: 0,
            acquires: 0,
            rejects: 0,
        }
    }

    /// Per-core private walkers, `per_core` each.
    ///
    /// # Panics
    ///
    /// Panics if `per_core` or `cores` is zero.
    pub fn private(per_core: usize, cores: usize) -> Self {
        assert!(per_core > 0 && cores > 0, "pool dimensions must be positive");
        WalkerPool::partitioned(vec![per_core; cores])
    }

    /// Statically partitioned walkers with explicit per-core counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or any count is zero.
    pub fn partitioned(counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "counts must not be empty");
        assert!(counts.iter().all(|&c| c > 0), "every core needs at least one walker");
        WalkerPool {
            policy: Policy::PerCore,
            free: counts.clone(),
            capacity: counts,
            busy_peak: 0,
            acquires: 0,
            rejects: 0,
        }
    }

    /// A shared pool of `total` walkers where core *c* is always guaranteed
    /// `min[c]` walkers and may never hold more than `max[c]`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, any `min > max`, any
    /// `max > total`, or the minimums oversubscribe the pool.
    pub fn bounded(total: usize, min: Vec<usize>, max: Vec<usize>) -> Self {
        assert!(total > 0, "pool must have walkers");
        assert_eq!(min.len(), max.len(), "min/max lengths must match");
        assert!(!min.is_empty(), "at least one core");
        assert!(min.iter().zip(&max).all(|(lo, hi)| lo <= hi), "min must not exceed max");
        assert!(max.iter().all(|&hi| hi <= total), "max must not exceed the pool");
        assert!(min.iter().sum::<usize>() <= total, "minimum reservations oversubscribe the pool");
        let cores = min.len();
        WalkerPool {
            policy: Policy::Bounded { total, min, max, in_use: vec![0; cores] },
            free: Vec::new(),
            capacity: vec![total],
            busy_peak: 0,
            acquires: 0,
            rejects: 0,
        }
    }

    /// Total walkers in the pool.
    pub fn total(&self) -> usize {
        self.capacity.iter().sum()
    }

    /// Walkers currently available to `core`.
    pub fn available(&self, core: usize) -> usize {
        match &self.policy {
            Policy::Shared => self.free[0],
            Policy::PerCore => self.free.get(core).copied().unwrap_or(0),
            Policy::Bounded { total, min, max, in_use } => {
                if core >= in_use.len() {
                    return 0;
                }
                let reserved_others: usize = (0..in_use.len())
                    .filter(|&o| o != core)
                    .map(|o| min[o].saturating_sub(in_use[o]))
                    .sum();
                let used: usize = in_use.iter().sum();
                let unreserved = total.saturating_sub(used + reserved_others);
                unreserved.min(max[core].saturating_sub(in_use[core]))
            }
        }
    }

    /// Try to reserve a walker for `core`; `true` on success.
    pub fn try_acquire(&mut self, core: usize) -> bool {
        let ok = match &mut self.policy {
            Policy::Shared => match self.free.get_mut(0) {
                Some(f) if *f > 0 => {
                    *f -= 1;
                    true
                }
                _ => false,
            },
            Policy::PerCore => match self.free.get_mut(core) {
                Some(f) if *f > 0 => {
                    *f -= 1;
                    true
                }
                _ => false,
            },
            Policy::Bounded { min, max, total, in_use } => {
                let grantable = core < in_use.len() && in_use[core] < max[core] && {
                    let reserved_others: usize = (0..in_use.len())
                        .filter(|&o| o != core)
                        .map(|o| min[o].saturating_sub(in_use[o]))
                        .sum();
                    let used: usize = in_use.iter().sum();
                    used + reserved_others < *total
                };
                if grantable {
                    in_use[core] += 1;
                }
                grantable
            }
        };
        if ok {
            self.acquires += 1;
            let busy = self.busy();
            self.busy_peak = self.busy_peak.max(busy);
        } else {
            self.rejects += 1;
        }
        ok
    }

    fn busy(&self) -> usize {
        match &self.policy {
            Policy::Bounded { in_use, .. } => in_use.iter().sum(),
            _ => self.total() - self.free.iter().sum::<usize>(),
        }
    }

    /// Return a walker previously acquired for `core`.
    ///
    /// # Panics
    ///
    /// Panics if more walkers are released than were acquired.
    pub fn release(&mut self, core: usize) {
        match &mut self.policy {
            Policy::Shared => {
                let f = &mut self.free[0];
                assert!(*f < self.capacity[0], "release without matching acquire");
                *f += 1;
            }
            Policy::PerCore => {
                let f = &mut self.free[core];
                assert!(*f < self.capacity[core], "release without matching acquire");
                *f += 1;
            }
            Policy::Bounded { in_use, .. } => {
                assert!(in_use[core] > 0, "release without matching acquire");
                in_use[core] -= 1;
            }
        }
    }

    /// Peak number of simultaneously busy walkers.
    pub fn busy_peak(&self) -> usize {
        self.busy_peak
    }

    /// Successful acquisitions.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// Failed acquisitions (walk had to wait for a walker).
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Serialize all mutable pool state (free/occupancy counts, peak,
    /// acquire/reject counters). The policy shape and capacities are
    /// excluded: restore targets a pool built under the same policy.
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.seq(&self.free, |w, &f| w.usize(f));
        match &self.policy {
            Policy::Bounded { in_use, .. } => {
                w.bool(true);
                w.seq(in_use, |w, &u| w.usize(u));
            }
            _ => w.bool(false),
        }
        w.usize(self.busy_peak);
        w.u64(self.acquires);
        w.u64(self.rejects);
    }

    /// Restore state saved by [`WalkerPool::save_state`] into a pool built
    /// under the same policy.
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is malformed or was
    /// taken under a different pool policy or shape.
    pub fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        use mnpu_snapshot::SnapError;
        let free = r.seq(|r| r.usize())?;
        if free.len() != self.free.len() {
            return Err(SnapError::BadValue("walker pool shape mismatch"));
        }
        let in_use = if r.bool()? { Some(r.seq(|r| r.usize())?) } else { None };
        match (&mut self.policy, in_use) {
            (Policy::Bounded { in_use: dst, .. }, Some(src)) => {
                if src.len() != dst.len() {
                    return Err(SnapError::BadValue("bounded pool core count mismatch"));
                }
                *dst = src;
            }
            (Policy::Shared | Policy::PerCore, None) => {}
            _ => return Err(SnapError::BadValue("walker pool policy mismatch")),
        }
        self.free = free;
        self.busy_peak = r.usize()?;
        self.acquires = r.u64()?;
        self.rejects = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_pools_are_isolated() {
        let mut p = WalkerPool::private(2, 2);
        assert!(p.try_acquire(0));
        assert!(p.try_acquire(0));
        assert!(!p.try_acquire(0), "core 0 exhausted its partition");
        assert_eq!(p.available(1), 2, "core 1 unaffected");
    }

    #[test]
    fn shared_pool_lets_one_core_use_all() {
        let mut p = WalkerPool::shared(16, 2);
        for _ in 0..16 {
            assert!(p.try_acquire(0));
        }
        assert!(!p.try_acquire(1));
        assert_eq!(p.busy_peak(), 16);
    }

    #[test]
    fn unequal_partition() {
        let mut p = WalkerPool::partitioned(vec![2, 14]);
        assert_eq!(p.total(), 16);
        assert!(p.try_acquire(0));
        assert!(p.try_acquire(0));
        assert!(!p.try_acquire(0));
        for _ in 0..14 {
            assert!(p.try_acquire(1));
        }
        assert!(!p.try_acquire(1));
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = WalkerPool::private(1, 1);
        assert!(p.try_acquire(0));
        p.release(0);
        assert!(p.try_acquire(0));
        assert_eq!(p.acquires(), 2);
        assert_eq!(p.rejects(), 0);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn double_release_panics() {
        let mut p = WalkerPool::private(1, 1);
        p.release(0);
    }

    #[test]
    fn reject_counting() {
        let mut p = WalkerPool::shared(1, 2);
        assert!(p.try_acquire(0));
        assert!(!p.try_acquire(1));
        assert!(!p.try_acquire(1));
        assert_eq!(p.rejects(), 2);
    }
}

#[cfg(test)]
mod bounded_tests {
    use super::*;

    #[test]
    fn minimums_are_hard_reservations() {
        // 4 walkers, each core guaranteed 1, capped at 4.
        let mut p = WalkerPool::bounded(4, vec![1, 1], vec![4, 4]);
        // Core 0 tries to hog: it can take 3 (4 minus core 1's reserve)...
        assert!(p.try_acquire(0));
        assert!(p.try_acquire(0));
        assert!(p.try_acquire(0));
        // ...but not the 4th: one walker stays reserved for core 1.
        assert!(!p.try_acquire(0));
        // Core 1's guaranteed walker is immediately available.
        assert!(p.try_acquire(1));
        assert!(!p.try_acquire(1), "pool fully busy now");
    }

    #[test]
    fn maximums_cap_hogging() {
        let mut p = WalkerPool::bounded(8, vec![0, 0], vec![3, 8]);
        for _ in 0..3 {
            assert!(p.try_acquire(0));
        }
        assert!(!p.try_acquire(0), "core 0 capped at 3");
        for _ in 0..5 {
            assert!(p.try_acquire(1));
        }
        assert!(!p.try_acquire(1), "pool exhausted");
        assert_eq!(p.busy_peak(), 8);
    }

    #[test]
    fn release_restores_bounded_capacity() {
        let mut p = WalkerPool::bounded(2, vec![1, 1], vec![2, 2]);
        assert!(p.try_acquire(0));
        assert!(p.try_acquire(1));
        p.release(0);
        // The freed walker returns to core 0's *reservation*: core 1 may
        // not steal it, even though its own max (2) would allow more.
        assert!(!p.try_acquire(1), "minimum reservations survive releases");
        assert_eq!(p.available(0), 1, "core 0's reserve is back");
        assert!(p.try_acquire(0));
    }

    #[test]
    fn available_accounts_for_reservations() {
        let p = WalkerPool::bounded(4, vec![1, 1], vec![4, 4]);
        // Idle pool: each core sees total minus the other's reserve.
        assert_eq!(p.available(0), 3);
        assert_eq!(p.available(1), 3);
    }

    #[test]
    fn equal_bounds_behave_like_partition() {
        // min == max == 2 per core is exactly a 2/2 static split.
        let mut p = WalkerPool::bounded(4, vec![2, 2], vec![2, 2]);
        assert!(p.try_acquire(0) && p.try_acquire(0));
        assert!(!p.try_acquire(0));
        assert!(p.try_acquire(1) && p.try_acquire(1));
        assert!(!p.try_acquire(1));
    }

    #[test]
    fn zero_min_full_max_behaves_like_shared() {
        let mut p = WalkerPool::bounded(4, vec![0, 0], vec![4, 4]);
        for _ in 0..4 {
            assert!(p.try_acquire(0));
        }
        assert!(!p.try_acquire(1));
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscribed_minimums_rejected() {
        let _ = WalkerPool::bounded(4, vec![3, 3], vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_bounds_rejected() {
        let _ = WalkerPool::bounded(4, vec![3, 0], vec![2, 4]);
    }
}
