//! Set-associative, LRU translation lookaside buffer.

/// A TLB entry: which address space and virtual page it caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    asid: u16,
    vpn: u64,
    last_use: u64,
}

/// A set-associative TLB with true-LRU replacement.
///
/// Entries are tagged with an address-space identifier so a shared TLB can
/// hold translations of several cores at once; the set index mixes the ASID
/// in so different cores' hot pages spread across sets (the paper notes the
/// set-index restriction matters for shared TLBs).
///
/// ```
/// use mnpu_mmu::Tlb;
///
/// let mut tlb = Tlb::new(64, 8);
/// assert!(!tlb.lookup(0, 7));
/// tlb.insert(0, 7);
/// assert!(tlb.lookup(0, 7));
/// assert!(!tlb.lookup(1, 7)); // other address space
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<Entry>>,
    assoc: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Create a TLB with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`.
    pub fn new(entries: u64, assoc: u64) -> Self {
        assert!(assoc > 0 && entries > 0, "TLB geometry must be positive");
        assert!(entries.is_multiple_of(assoc), "entries must be a multiple of associativity");
        let n_sets = (entries / assoc) as usize;
        Tlb {
            sets: vec![Vec::with_capacity(assoc as usize); n_sets],
            assoc: assoc as usize,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, asid: u16, vpn: u64) -> usize {
        // Mix the ASID with a golden-ratio multiple so co-runners' identical
        // VPNs land in different sets of a shared TLB.
        let h = vpn ^ (u64::from(asid)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let n = self.sets.len() as u64;
        // The set count is a runtime value LLVM cannot strength-reduce, and
        // this runs once per translation; every stock geometry is a power of
        // two, so the mask path is the common case. Same result either way.
        let idx = if n.is_power_of_two() { h & (n - 1) } else { h % n };
        idx as usize
    }

    /// Probe for `(asid, vpn)`; updates LRU state and hit/miss counters.
    pub fn lookup(&mut self, asid: u16, vpn: u64) -> bool {
        self.clock += 1;
        let idx = self.set_index(asid, vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.asid == asid && e.vpn == vpn) {
            e.last_use = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Probe without disturbing LRU state or counters.
    pub fn probe(&self, asid: u16, vpn: u64) -> bool {
        let idx = self.set_index(asid, vpn);
        self.sets[idx].iter().any(|e| e.asid == asid && e.vpn == vpn)
    }

    /// Insert `(asid, vpn)`, evicting the set's LRU entry if needed.
    ///
    /// Returns the `(asid, vpn)` of the evicted entry, or `None` when the
    /// insert refreshed an existing entry or filled a free way. Under a
    /// shared TLB the victim's ASID may differ from `asid` — that
    /// cross-core displacement is the thrashing signal the observability
    /// layer attributes to the victim's owner.
    pub fn insert(&mut self, asid: u16, vpn: u64) -> Option<(u16, u64)> {
        self.clock += 1;
        let idx = self.set_index(asid, vpn);
        let assoc = self.assoc;
        let clock = self.clock;
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.asid == asid && e.vpn == vpn) {
            e.last_use = clock;
            return None;
        }
        let entry = Entry { asid, vpn, last_use: clock };
        if set.len() < assoc {
            set.push(entry);
            None
        } else {
            let victim =
                set.iter_mut().min_by_key(|e| e.last_use).expect("set is non-empty at capacity");
            let evicted = (victim.asid, victim.vpn);
            *victim = entry;
            Some(evicted)
        }
    }

    /// Invalidate every entry of one address space (e.g. on workload swap).
    pub fn flush_asid(&mut self, asid: u16) {
        for set in &mut self.sets {
            set.retain(|e| e.asid != asid);
        }
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Number of resident entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Serialize all mutable TLB state (resident entries in stored order,
    /// LRU clock, counters). Geometry is excluded: restore targets a TLB
    /// built with the same `entries`/`assoc`.
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.seq(&self.sets, |w, set| {
            w.seq(set, |w, e| {
                w.u16(e.asid);
                w.u64(e.vpn);
                w.u64(e.last_use);
            });
        });
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    /// Restore state saved by [`Tlb::save_state`] into a TLB of the same
    /// geometry.
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is malformed or shaped
    /// for a different geometry.
    pub fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        let sets =
            r.seq(|r| r.seq(|r| Ok(Entry { asid: r.u16()?, vpn: r.u64()?, last_use: r.u64()? })))?;
        if sets.len() != self.sets.len() || sets.iter().any(|s| s.len() > self.assoc) {
            return Err(mnpu_snapshot::SnapError::BadValue("TLB geometry mismatch"));
        }
        self.sets = sets;
        self.clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(16, 4);
        t.insert(0, 100);
        assert!(t.lookup(0, 100));
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn asid_isolates_address_spaces() {
        let mut t = Tlb::new(16, 4);
        t.insert(1, 100);
        assert!(!t.lookup(2, 100));
        assert!(t.lookup(1, 100));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct construction of one set: 1 set, 2 ways.
        let mut t = Tlb::new(2, 2);
        t.insert(0, 1);
        t.insert(0, 2);
        assert!(t.lookup(0, 1)); // touch 1; 2 becomes LRU
        t.insert(0, 3); // evicts 2
        assert!(t.probe(0, 1));
        assert!(!t.probe(0, 2));
        assert!(t.probe(0, 3));
    }

    #[test]
    fn insert_reports_victim() {
        let mut t = Tlb::new(2, 2);
        assert_eq!(t.insert(0, 1), None); // free way
        assert_eq!(t.insert(0, 2), None); // free way
        assert_eq!(t.insert(0, 1), None); // refresh in place
                                          // Both ways of the single set are full; the LRU entry (0, 2) goes.
        assert_eq!(t.insert(1, 9), Some((0, 2)));
        assert!(!t.probe(0, 2), "victim must be gone");
        assert!(t.probe(1, 9));
    }

    #[test]
    fn capacity_bounded() {
        let mut t = Tlb::new(64, 8);
        for vpn in 0..1000 {
            t.insert(0, vpn);
        }
        assert!(t.occupancy() <= 64);
    }

    #[test]
    fn flush_asid_removes_only_that_space() {
        let mut t = Tlb::new(64, 8);
        for vpn in 0..10 {
            t.insert(0, vpn);
            t.insert(1, vpn);
        }
        t.flush_asid(0);
        assert!(!t.probe(0, 5));
        assert!(t.probe(1, 5));
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut t = Tlb::new(256, 8);
        let ws: Vec<u64> = (0..100).collect();
        for &v in &ws {
            t.insert(0, v);
        }
        // Re-touch repeatedly: never a miss once resident.
        for _ in 0..10 {
            for &v in &ws {
                assert!(t.lookup(0, v));
            }
        }
    }

    #[test]
    fn low_associativity_conflicts_between_asids() {
        // Direct-mapped shared TLB: two address spaces with the same page
        // stream conflict far more than an 8-way one — the paper's §4.4.2
        // associativity observation.
        let stream: Vec<u64> = (0..64).collect();
        let run = |assoc: u64| {
            let mut t = Tlb::new(512, assoc);
            let mut misses = 0;
            for _ in 0..20 {
                for &v in &stream {
                    for asid in 0..4u16 {
                        if !t.lookup(asid, v) {
                            misses += 1;
                            t.insert(asid, v);
                        }
                    }
                }
            }
            misses
        };
        assert!(run(1) >= run(8));
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(10, 4);
    }

    proptest! {
        #[test]
        fn prop_occupancy_never_exceeds_capacity(ops in proptest::collection::vec((0u16..4, 0u64..512), 0..2000)) {
            let mut t = Tlb::new(128, 8);
            for (asid, vpn) in ops {
                if !t.lookup(asid, vpn) {
                    t.insert(asid, vpn);
                }
            }
            prop_assert!(t.occupancy() <= 128);
        }

        #[test]
        fn prop_insert_then_probe_hits(asid in 0u16..8, vpn in 0u64..(1 << 30)) {
            let mut t = Tlb::new(64, 8);
            t.insert(asid, vpn);
            prop_assert!(t.probe(asid, vpn));
        }
    }
}
