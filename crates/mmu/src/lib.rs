//! NPU memory-management unit: TLBs and page-table walkers.
//!
//! NPUs use virtually-addressed scratchpads, so *every* DRAM transaction
//! needs an address translation, and a tile fill touches thousands of pages
//! in a burst. Following NeuMMU (the design the paper adopts), this crate
//! models:
//!
//! * a set-associative, LRU [`Tlb`] per core — or one shared TLB whose
//!   capacity is the sum of the per-core capacities (the paper's `+DWT`);
//! * a pool of page-table walkers ([`WalkerPool`]) that is private per core,
//!   statically partitioned in arbitrary ratios (Figs. 13/14), or
//!   dynamically shared (`+DW`);
//! * multi-level radix walks whose per-level accesses are real DRAM reads
//!   (issued by the engine), so walk bandwidth and data bandwidth contend —
//!   4 levels for 4 KB pages, 3 for 64 KB, 2 for 1 MB (the ARM64-style page
//!   sizes of the paper's §4.5);
//! * walk coalescing: concurrent misses on one page join the in-flight walk
//!   instead of consuming another walker.
//!
//! The MMU is a *timing* model: the virtual→physical mapping itself lives in
//! the engine's page-table allocator; this crate decides hits, misses, walk
//! structure and walker occupancy.
//!
//! # Example
//!
//! ```
//! use mnpu_mmu::{Mmu, MmuConfig, WalkStart, WalkStep};
//!
//! let mut mmu = Mmu::new(MmuConfig::neummu(4096), 2, &[0x1000_0000, 0x2000_0000]);
//! let vpn = 42;
//! assert!(!mmu.lookup(0, vpn)); // cold miss
//! let WalkStart::Started { walk, pt_addr } = mmu.start_or_join_walk(0, vpn) else {
//!     panic!("walker available")
//! };
//! let mut addr = pt_addr;
//! loop {
//!     // (engine reads `addr` through DRAM here)
//!     match mmu.advance_walk(walk) {
//!         mnpu_mmu::WalkStep::Access(next) => addr = next,
//!         mnpu_mmu::WalkStep::Done { .. } => break,
//!     }
//! }
//! let _ = addr;
//! assert!(mmu.lookup(0, vpn)); // filled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fxhash;
mod mmu;
mod tlb;
mod walker;

pub use config::{walk_levels_for, MmuConfig, PtwBounds};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use mmu::{Mmu, MmuStats, WalkId, WalkStart, WalkStep};
pub use tlb::Tlb;
pub use walker::WalkerPool;
