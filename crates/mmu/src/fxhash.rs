//! A deterministic, multiplication-based hasher for hot integer-keyed maps.
//!
//! The in-flight walk table and the engine's page-table allocator are
//! probed on every transaction, and with `std`'s default SipHash the
//! hashing itself shows up in profiles (several percent of a full sweep).
//! These maps are keyed by small integers under no adversarial pressure,
//! so the DoS resistance buys nothing here. [`FxHasher`] is the classic
//! rotate–xor–multiply folding hash (the scheme rustc itself uses): one
//! multiply per word instead of SipHash's full permutation.
//!
//! Determinism note: swapping the randomly-seeded default hasher for a
//! fixed one makes iteration order reproducible across runs. Simulation
//! results were already bit-reproducible *with* the random seed, which
//! proves no observable output depends on map order; the swap can
//! therefore only change wall-clock time.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A [`HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Word-at-a-time folding hasher; see the module-level docs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Odd constant with a balanced bit pattern (2^64 / golden ratio), the
/// usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_and_is_deterministic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 0x1_0000, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 0x1_0000)), Some(&i));
        }
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(0xdead_beef);
        h2.write_u64(0xdead_beef);
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(FxHasher::default().finish(), h1.finish());
    }

    #[test]
    fn tuple_keys_work() {
        let mut m: FxHashMap<(u16, u64), u64> = FxHashMap::default();
        m.insert((3, 77), 1);
        m.insert((4, 77), 2);
        assert_eq!(m[&(3, 77)], 1);
        assert_eq!(m[&(4, 77)], 2);
    }
}
