//! The MMU façade: TLB lookups, walk lifecycle, coalescing.

use crate::config::MmuConfig;
use crate::fxhash::FxHashMap;
use crate::tlb::Tlb;
use crate::walker::WalkerPool;

/// Identifier of an in-flight page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WalkId(u64);

impl WalkId {
    /// The raw id, usable as a request tag.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a `WalkId` from a tag produced by [`WalkId::raw`].
    pub fn from_raw(raw: u64) -> Self {
        WalkId(raw)
    }
}

/// Outcome of [`Mmu::start_or_join_walk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStart {
    /// A walker was acquired; the engine must read `pt_addr` through DRAM,
    /// then call [`Mmu::advance_walk`].
    Started {
        /// The new walk's id.
        walk: WalkId,
        /// Physical address of the first page-table access.
        pt_addr: u64,
    },
    /// A walk for this page is already in flight; wait for it to finish.
    Joined(WalkId),
    /// No walker is free for this core; retry when one is released.
    NoWalker,
}

/// Outcome of [`Mmu::advance_walk`] after a page-table access completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStep {
    /// Another level remains: read this physical address next.
    Access(u64),
    /// The walk finished; the TLB has been filled and the walker released.
    Done {
        /// Core that owned the walk.
        core: usize,
        /// Virtual page number now resident in the TLB.
        vpn: u64,
    },
}

#[derive(Debug, Clone)]
struct Walk {
    core: usize,
    vpn: u64,
    levels_left: u32,
    joined: u32,
}

/// Per-core MMU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// TLB lookup hits.
    pub tlb_hits: u64,
    /// TLB lookup misses.
    pub tlb_misses: u64,
    /// Walks started (one per missing page, after coalescing).
    pub walks: u64,
    /// Misses that joined an in-flight walk instead of starting one.
    pub coalesced: u64,
    /// Walk attempts deferred because no walker was free.
    pub walker_stalls: u64,
    /// This core's TLB entries displaced by an insert (by any core, under a
    /// shared TLB — the cross-core thrashing signal). Reported through the
    /// observability layer, not the legacy JSON report.
    pub tlb_evictions: u64,
}

impl MmuStats {
    /// TLB hit rate in `[0, 1]`.
    pub fn tlb_hit_rate(&self) -> f64 {
        let t = self.tlb_hits + self.tlb_misses;
        if t == 0 {
            return 0.0;
        }
        self.tlb_hits as f64 / t as f64
    }
}

/// The chip-level MMU: per-core or shared TLBs, a walker pool, and the
/// in-flight walk table. See the [crate docs](crate) for the protocol.
#[derive(Debug, Clone)]
pub struct Mmu {
    config: MmuConfig,
    cores: usize,
    tlbs: Vec<Tlb>,
    walkers: WalkerPool,
    walks: FxHashMap<u64, Walk>,
    active_by_page: FxHashMap<(u16, u64), WalkId>,
    next_walk_id: u64,
    pt_bases: Vec<u64>,
    stats: Vec<MmuStats>,
    /// The `(owner_asid, vpn)` displaced by the most recent TLB fill, kept
    /// until [`Mmu::take_last_eviction`] collects it for the probe layer.
    last_eviction: Option<(u16, u64)>,
}

impl Mmu {
    /// Build the MMU for `cores` cores; `pt_bases[c]` is the physical base
    /// of core *c*'s page-table region (walk reads scatter within
    /// `config.pt_region_bytes` of it).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MmuConfig::validate`] or
    /// `pt_bases.len() != cores`.
    pub fn new(config: MmuConfig, cores: usize, pt_bases: &[u64]) -> Self {
        if let Err(e) = config.validate(cores) {
            panic!("invalid MMU config: {e}");
        }
        assert_eq!(pt_bases.len(), cores, "one page-table base per core");
        let tlbs = if config.tlb_shared {
            vec![Tlb::new(config.tlb_entries_per_core * cores as u64, config.tlb_assoc)]
        } else {
            (0..cores).map(|_| Tlb::new(config.tlb_entries_per_core, config.tlb_assoc)).collect()
        };
        let walkers = if let Some(b) = &config.ptw_bounds {
            WalkerPool::bounded(config.total_walkers(cores), b.min.clone(), b.max.clone())
        } else if config.ptw_shared {
            WalkerPool::shared(config.total_walkers(cores), cores)
        } else {
            match &config.ptw_partition {
                Some(p) => WalkerPool::partitioned(p.clone()),
                None => WalkerPool::private(config.ptws_per_core, cores),
            }
        };
        Mmu {
            cores,
            tlbs,
            walkers,
            walks: FxHashMap::default(),
            active_by_page: FxHashMap::default(),
            next_walk_id: 0,
            pt_bases: pt_bases.to_vec(),
            stats: vec![MmuStats::default(); cores],
            last_eviction: None,
            config,
        }
    }

    /// The configuration this MMU was built with.
    pub fn config(&self) -> &MmuConfig {
        &self.config
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.config.page_bytes
    }

    /// Virtual page number of `vaddr`.
    pub fn vpn_of(&self, vaddr: u64) -> u64 {
        vaddr / self.config.page_bytes
    }

    fn tlb_of(&mut self, core: usize) -> &mut Tlb {
        if self.config.tlb_shared {
            &mut self.tlbs[0]
        } else {
            &mut self.tlbs[core]
        }
    }

    /// Probe the TLB for `(core, vpn)` without updating LRU state or
    /// statistics (used to re-check parked transactions whose page may have
    /// become resident through another walk).
    pub fn probe(&self, core: usize, vpn: u64) -> bool {
        let tlb = if self.config.tlb_shared { &self.tlbs[0] } else { &self.tlbs[core] };
        tlb.probe(core as u16, vpn)
    }

    /// Probe the TLB for `(core, vpn)`; returns `true` on a hit. Updates
    /// LRU and statistics.
    pub fn lookup(&mut self, core: usize, vpn: u64) -> bool {
        debug_assert!(core < self.cores);
        let hit = self.tlb_of(core).lookup(core as u16, vpn);
        if hit {
            self.stats[core].tlb_hits += 1;
        } else {
            self.stats[core].tlb_misses += 1;
        }
        hit
    }

    /// After a miss: start a walk, join an in-flight one, or report walker
    /// exhaustion.
    pub fn start_or_join_walk(&mut self, core: usize, vpn: u64) -> WalkStart {
        self.start_walk_inner(core, vpn, true)
    }

    /// Like [`Mmu::start_or_join_walk`] but without counting a walker stall:
    /// used when *retrying* a previously stalled walk, so the stall counter
    /// reflects transactions that waited rather than retry attempts.
    pub fn retry_walk(&mut self, core: usize, vpn: u64) -> WalkStart {
        self.start_walk_inner(core, vpn, false)
    }

    fn start_walk_inner(&mut self, core: usize, vpn: u64, count_stall: bool) -> WalkStart {
        debug_assert!(core < self.cores);
        if self.config.coalesce_walks {
            if let Some(&id) = self.active_by_page.get(&(core as u16, vpn)) {
                self.stats[core].coalesced += 1;
                if let Some(w) = self.walks.get_mut(&id.raw()) {
                    w.joined += 1;
                }
                return WalkStart::Joined(id);
            }
        }
        if !self.walkers.try_acquire(core) {
            if count_stall {
                self.stats[core].walker_stalls += 1;
            }
            return WalkStart::NoWalker;
        }
        let id = WalkId(self.next_walk_id);
        self.next_walk_id += 1;
        let levels = self.config.walk_levels();
        self.walks.insert(id.raw(), Walk { core, vpn, levels_left: levels, joined: 0 });
        if self.config.coalesce_walks {
            self.active_by_page.insert((core as u16, vpn), id);
        }
        self.stats[core].walks += 1;
        WalkStart::Started { walk: id, pt_addr: self.pt_access_addr(core, vpn, levels) }
    }

    /// Notify the MMU that the current page-table access of `walk` finished.
    /// Returns the next access, or `Done` after the last level (at which
    /// point the TLB is filled and the walker released).
    ///
    /// # Panics
    ///
    /// Panics if `walk` is not in flight.
    pub fn advance_walk(&mut self, walk: WalkId) -> WalkStep {
        let w = self.walks.get_mut(&walk.raw()).expect("walk in flight");
        w.levels_left -= 1;
        if w.levels_left > 0 {
            let (core, vpn, left) = (w.core, w.vpn, w.levels_left);
            return WalkStep::Access(self.pt_access_addr(core, vpn, left));
        }
        let w = self.walks.remove(&walk.raw()).expect("walk in flight");
        if self.active_by_page.get(&(w.core as u16, w.vpn)) == Some(&walk) {
            self.active_by_page.remove(&(w.core as u16, w.vpn));
        }
        if let Some(victim) = self.tlb_of(w.core).insert(w.core as u16, w.vpn) {
            self.stats[victim.0 as usize].tlb_evictions += 1;
            self.last_eviction = Some(victim);
        }
        self.walkers.release(w.core);
        WalkStep::Done { core: w.core, vpn: w.vpn }
    }

    /// The `(owner_asid, vpn)` evicted by the most recent TLB fill, if any,
    /// consuming it. The engine polls this after a [`WalkStep::Done`] to
    /// emit the probe's eviction event without widening `WalkStep`.
    pub fn take_last_eviction(&mut self) -> Option<(u16, u64)> {
        self.last_eviction.take()
    }

    /// Physical address of the page-table entry read at `level`
    /// (levels count down to 1). Entries scatter pseudo-randomly across the
    /// core's page-table region so walk reads exercise many DRAM rows, as
    /// real multi-level tables do.
    fn pt_access_addr(&self, core: usize, vpn: u64, level: u32) -> u64 {
        let slots = self.config.pt_region_bytes / 64;
        // Index bits of this level: radix-512 per level (9 bits), like x86/ARM.
        let prefix = vpn >> (9 * (level - 1));
        let h = prefix
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(level).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        self.pt_bases[core] + (h % slots) * 64
    }

    /// Walkers currently free for `core`.
    pub fn free_walkers(&self, core: usize) -> usize {
        self.walkers.available(core)
    }

    /// Number of walks currently in flight.
    pub fn walks_in_flight(&self) -> usize {
        self.walks.len()
    }

    /// Invalidate every TLB entry belonging to `core`'s address space, as
    /// on a workload swap. With a shared TLB only that core's entries are
    /// dropped; other cores' translations survive. Statistics are *not*
    /// reset — they accumulate over the core's lifetime, across bindings.
    ///
    /// # Panics
    ///
    /// Panics if `core` has a page-table walk in flight: the caller must
    /// quiesce the core before rebinding it.
    pub fn flush_core(&mut self, core: usize) {
        assert!(
            !self.walks.values().any(|w| w.core == core),
            "cannot flush core {core}: walk in flight"
        );
        self.tlb_of(core).flush_asid(core as u16);
    }

    /// Per-core statistics.
    pub fn stats(&self, core: usize) -> &MmuStats {
        &self.stats[core]
    }

    /// The walker pool (peak occupancy, rejects, …).
    pub fn walker_pool(&self) -> &WalkerPool {
        &self.walkers
    }

    /// Serialize all mutable MMU state: TLB contents, walker occupancy,
    /// in-flight walks and the coalescing table (both in sorted key order —
    /// their map iteration order is never behaviorally observed), the walk
    /// id counter, per-core stats and the pending eviction. Configuration,
    /// core count and page-table bases are excluded: restore targets an MMU
    /// built from the same inputs.
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.tag(0xE0);
        w.seq(&self.tlbs, |w, t| t.save_state(w));
        self.walkers.save_state(w);
        let mut walks: Vec<(&u64, &Walk)> = self.walks.iter().collect();
        walks.sort_unstable_by_key(|(id, _)| **id);
        w.seq(&walks, |w, (id, walk)| {
            w.u64(**id);
            w.usize(walk.core);
            w.u64(walk.vpn);
            w.u32(walk.levels_left);
            w.u32(walk.joined);
        });
        let mut active: Vec<(&(u16, u64), &WalkId)> = self.active_by_page.iter().collect();
        active.sort_unstable_by_key(|(k, _)| **k);
        w.seq(&active, |w, (&(asid, vpn), id)| {
            w.u16(asid);
            w.u64(vpn);
            w.u64(id.raw());
        });
        w.u64(self.next_walk_id);
        w.seq(&self.stats, |w, s| {
            w.u64(s.tlb_hits);
            w.u64(s.tlb_misses);
            w.u64(s.walks);
            w.u64(s.coalesced);
            w.u64(s.walker_stalls);
            w.u64(s.tlb_evictions);
        });
        w.opt(&self.last_eviction, |w, &(asid, vpn)| {
            w.u16(asid);
            w.u64(vpn);
        });
    }

    /// Restore state saved by [`Mmu::save_state`] into an MMU built from
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is malformed or shaped
    /// for a different MMU organization.
    pub fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        use mnpu_snapshot::SnapError;
        r.tag(0xE0)?;
        let n_tlbs = r.usize()?;
        if n_tlbs != self.tlbs.len() {
            return Err(SnapError::BadValue("TLB count mismatch"));
        }
        for t in &mut self.tlbs {
            t.load_state(r)?;
        }
        self.walkers.load_state(r)?;
        let walks = r.seq(|r| {
            Ok((
                r.u64()?,
                Walk { core: r.usize()?, vpn: r.u64()?, levels_left: r.u32()?, joined: r.u32()? },
            ))
        })?;
        if walks.iter().any(|(_, w)| w.core >= self.cores || w.levels_left == 0) {
            return Err(SnapError::BadValue("in-flight walk out of range"));
        }
        self.walks = walks.into_iter().collect();
        let active = r.seq(|r| Ok(((r.u16()?, r.u64()?), WalkId(r.u64()?))))?;
        self.active_by_page = active.into_iter().collect();
        self.next_walk_id = r.u64()?;
        let stats = r.seq(|r| {
            Ok(MmuStats {
                tlb_hits: r.u64()?,
                tlb_misses: r.u64()?,
                walks: r.u64()?,
                coalesced: r.u64()?,
                walker_stalls: r.u64()?,
                tlb_evictions: r.u64()?,
            })
        })?;
        if stats.len() != self.cores {
            return Err(SnapError::BadValue("MMU stats core count mismatch"));
        }
        self.stats = stats;
        self.last_eviction = r.opt(|r| Ok((r.u16()?, r.u64()?)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu(cfg: MmuConfig, cores: usize) -> Mmu {
        let bases: Vec<u64> = (0..cores as u64).map(|c| c << 32).collect();
        Mmu::new(cfg, cores, &bases)
    }

    fn run_walk(m: &mut Mmu, walk: WalkId) -> (usize, u64, u32) {
        let mut accesses = 1; // the initial pt_addr from Started
        loop {
            match m.advance_walk(walk) {
                WalkStep::Access(_) => accesses += 1,
                WalkStep::Done { core, vpn } => return (core, vpn, accesses),
            }
        }
    }

    #[test]
    fn walk_fills_tlb() {
        let mut m = mmu(MmuConfig::neummu(4096), 1);
        assert!(!m.lookup(0, 5));
        let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, 5) else { panic!() };
        let (core, vpn, accesses) = run_walk(&mut m, walk);
        assert_eq!((core, vpn), (0, 5));
        assert_eq!(accesses, 4, "4KB pages walk 4 levels");
        assert!(m.lookup(0, 5));
        assert_eq!(m.free_walkers(0), 8);
    }

    #[test]
    fn larger_pages_walk_fewer_levels() {
        for (page, levels) in [(4096u64, 4u32), (65536, 3), (1 << 20, 2)] {
            let mut m = mmu(MmuConfig::neummu(page), 1);
            let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, 9) else { panic!() };
            let (_, _, accesses) = run_walk(&mut m, walk);
            assert_eq!(accesses, levels, "page {page}");
        }
    }

    #[test]
    fn concurrent_misses_coalesce() {
        let mut m = mmu(MmuConfig::neummu(4096), 1);
        let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, 7) else { panic!() };
        assert_eq!(m.start_or_join_walk(0, 7), WalkStart::Joined(walk));
        assert_eq!(m.stats(0).coalesced, 1);
        assert_eq!(m.stats(0).walks, 1);
        // Only one walker consumed.
        assert_eq!(m.free_walkers(0), 7);
        let _ = run_walk(&mut m, walk);
    }

    #[test]
    fn walker_exhaustion_reports_no_walker() {
        let cfg = MmuConfig { ptws_per_core: 2, ..MmuConfig::neummu(4096) };
        let mut m = mmu(cfg, 1);
        let WalkStart::Started { .. } = m.start_or_join_walk(0, 1) else { panic!() };
        let WalkStart::Started { .. } = m.start_or_join_walk(0, 2) else { panic!() };
        assert_eq!(m.start_or_join_walk(0, 3), WalkStart::NoWalker);
        assert_eq!(m.stats(0).walker_stalls, 1);
    }

    #[test]
    fn shared_pool_multiplies_per_core_walkers() {
        let cfg = MmuConfig { ptw_shared: true, ..MmuConfig::neummu(4096) };
        let mut m = mmu(cfg, 2);
        // Core 0 can take all 16 walkers when core 1 is idle.
        for vpn in 0..16 {
            assert!(matches!(m.start_or_join_walk(0, vpn), WalkStart::Started { .. }), "vpn {vpn}");
        }
        assert_eq!(m.start_or_join_walk(0, 99), WalkStart::NoWalker);
        assert_eq!(m.start_or_join_walk(1, 0), WalkStart::NoWalker);
    }

    #[test]
    fn private_tlbs_do_not_share_capacity() {
        let mut m = mmu(MmuConfig::neummu(4096), 2);
        // Fill core 0's TLB; core 1's stays empty.
        for vpn in 0..100 {
            let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, vpn) else { panic!() };
            let _ = run_walk(&mut m, walk);
        }
        assert!(m.lookup(0, 50));
        assert!(!m.lookup(1, 50));
    }

    #[test]
    fn shared_tlb_holds_both_cores() {
        let cfg = MmuConfig { tlb_shared: true, ..MmuConfig::neummu(4096) };
        let mut m = mmu(cfg, 2);
        let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, 11) else { panic!() };
        let _ = run_walk(&mut m, walk);
        let WalkStart::Started { walk, .. } = m.start_or_join_walk(1, 11) else { panic!() };
        let _ = run_walk(&mut m, walk);
        assert!(m.lookup(0, 11));
        assert!(m.lookup(1, 11));
    }

    #[test]
    fn pt_accesses_stay_in_core_region() {
        let cfg = MmuConfig::neummu(4096);
        let region = cfg.pt_region_bytes;
        let mut m = mmu(cfg, 2);
        for vpn in [0u64, 1, 1000, 123_456_789] {
            let WalkStart::Started { walk, pt_addr } = m.start_or_join_walk(1, vpn) else {
                panic!()
            };
            let base = 1u64 << 32;
            assert!(pt_addr >= base && pt_addr < base + region);
            let mut step = m.advance_walk(walk);
            while let WalkStep::Access(a) = step {
                assert!(a >= base && a < base + region);
                step = m.advance_walk(walk);
            }
        }
    }

    #[test]
    fn stats_hit_rate() {
        let mut m = mmu(MmuConfig::neummu(4096), 1);
        let _ = m.lookup(0, 1); // miss
        let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, 1) else { panic!() };
        let _ = run_walk(&mut m, walk);
        let _ = m.lookup(0, 1); // hit
        assert!((m.stats(0).tlb_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "walk in flight")]
    fn advancing_finished_walk_panics() {
        let mut m = mmu(MmuConfig::neummu(1 << 20), 1);
        let WalkStart::Started { walk, .. } = m.start_or_join_walk(0, 1) else { panic!() };
        let _ = run_walk(&mut m, walk);
        let _ = m.advance_walk(walk);
    }
}

#[cfg(test)]
mod coalescing_tests {
    use super::*;
    use crate::config::MmuConfig;

    #[test]
    fn disabled_coalescing_walks_every_miss() {
        let cfg = MmuConfig { coalesce_walks: false, ..MmuConfig::neummu(4096) };
        let mut m = Mmu::new(cfg, 1, &[0]);
        let WalkStart::Started { .. } = m.start_or_join_walk(0, 7) else { panic!() };
        // Same page again: a second full walk, not a join.
        assert!(matches!(m.start_or_join_walk(0, 7), WalkStart::Started { .. }));
        assert_eq!(m.stats(0).walks, 2);
        assert_eq!(m.stats(0).coalesced, 0);
        assert_eq!(m.free_walkers(0), 6);
    }

    #[test]
    fn uncoalesced_duplicate_walks_both_complete() {
        let cfg = MmuConfig { coalesce_walks: false, ..MmuConfig::neummu(1 << 20) };
        let mut m = Mmu::new(cfg, 1, &[0]);
        let WalkStart::Started { walk: w1, .. } = m.start_or_join_walk(0, 3) else { panic!() };
        let WalkStart::Started { walk: w2, .. } = m.start_or_join_walk(0, 3) else { panic!() };
        assert_ne!(w1, w2);
        for w in [w1, w2] {
            loop {
                if let WalkStep::Done { vpn, .. } = m.advance_walk(w) {
                    assert_eq!(vpn, 3);
                    break;
                }
            }
        }
        assert_eq!(m.free_walkers(0), 8, "both walkers released");
        assert!(m.lookup(0, 3));
    }
}
