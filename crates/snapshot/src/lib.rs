//! Bit-exact checkpoint/restore protocol for the simulator.
//!
//! Every stateful component of the simulation pipeline — core runtimes,
//! the DMA arbiter, NoC queues, DRAM channels and their fast-forward
//! caches, the MMU, the scheduler — serializes its *mutable* state through
//! this crate's [`Writer`]/[`Reader`] codec into a [`SimSnapshot`].
//! Structural state (anything derivable from the configuration and the
//! workload traces) is deliberately *not* serialized: a snapshot is
//! restored **into** a freshly built simulation, and fingerprints of the
//! configuration and traces guard against restoring into the wrong shape.
//!
//! The contract is exactness: a simulation snapshotted at cycle *k* and
//! restored into a fresh instance must continue bit-identically to one
//! that never stopped. The engine's lockstep proptest suite, the fuzzer's
//! mid-case restore, and the `snapshot-resume-exact` metamorphic law all
//! fence that contract.
//!
//! Snapshots survive process restarts through two interchangeable
//! encodings: a compact binary framing ([`SimSnapshot::to_bytes`]) and a
//! JSON wrapper with a hex payload ([`SimSnapshot::to_json`]) for
//! artifact pipelines. The two round-trip losslessly:
//! `from_json(to_json(s)) == s == from_bytes(to_bytes(s))`.
//!
//! The header is versioned the same way the bench run cache is
//! (`#mnpu-run-cache v5`): a snapshot whose [`SNAPSHOT_VERSION`] does not
//! match the binary that reads it fails loudly with
//! [`SnapError::VersionMismatch`] instead of silently misdecoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Current snapshot format version. Bump on any change to the payload
/// layout of *any* component; old snapshots are then rejected loudly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic bytes opening the binary framing.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MNPS";

/// Decoding/validation failure. Every variant is loud and descriptive —
/// a snapshot that cannot be restored exactly must never be restored
/// approximately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the decoder was done.
    Truncated,
    /// The binary framing does not open with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// The snapshot was taken under a different system configuration.
    ConfigMismatch {
        /// Fingerprint in the snapshot header.
        found: u64,
        /// Fingerprint of the configuration being restored into.
        expected: u64,
    },
    /// A core's workload trace does not match the snapshot's.
    TraceMismatch {
        /// Core whose trace fingerprint disagreed.
        core: usize,
    },
    /// A section tag byte did not match the expected section.
    BadTag {
        /// Tag the decoder expected.
        expected: u8,
        /// Tag found in the stream.
        found: u8,
    },
    /// A decoded value was structurally impossible (described by the str).
    BadValue(&'static str),
    /// The JSON wrapper was malformed.
    BadJson(&'static str),
    /// Bytes were left over after the last section — the payload and the
    /// decoder disagree about the layout.
    TrailingBytes,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a mNPUsim snapshot (bad magic)"),
            SnapError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot version {found} does not match this binary's version {expected} \
                 (re-take the snapshot; formats are not migrated)"
            ),
            SnapError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot config fingerprint {found:#018x} != {expected:#018x}: \
                 restore target was built from a different SystemConfig"
            ),
            SnapError::TraceMismatch { core } => {
                write!(f, "core {core}: workload trace does not match the snapshot")
            }
            SnapError::BadTag { expected, found } => {
                write!(f, "bad section tag: expected {expected:#04x}, found {found:#04x}")
            }
            SnapError::BadValue(what) => write!(f, "invalid snapshot value: {what}"),
            SnapError::BadJson(what) => write!(f, "invalid snapshot JSON: {what}"),
            SnapError::TrailingBytes => write!(f, "trailing bytes after final snapshot section"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over a string — the same compact fingerprint the bench run
/// cache keys with. Used for the config/trace guard fingerprints.
pub fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fold `v` into fingerprint `h` (order-sensitive, FNV-1a over the LE
/// bytes). Lets trace fingerprints combine cheap numeric summaries
/// without formatting strings on the hot path.
pub fn fingerprint_u64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Little-endian append-only byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::with_capacity(4096) }
    }

    /// Consume the writer, returning the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a section tag byte (checked by [`Reader::tag`] on load).
    pub fn tag(&mut self, t: u8) {
        self.buf.push(t);
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write an `Option` as a presence byte plus the value.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Writer, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Write a slice as a length prefix plus the elements.
    pub fn seq<T>(&mut self, xs: &[T], mut f: impl FnMut(&mut Writer, &T)) {
        self.usize(xs.len());
        for x in xs {
            f(self, x);
        }
    }

    /// Write a string as length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian cursor over a snapshot payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Check (and consume) a section tag byte.
    pub fn tag(&mut self, expected: u8) -> Result<(), SnapError> {
        let found = self.u8()?;
        if found != expected {
            return Err(SnapError::BadTag { expected, found });
        }
        Ok(())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `usize` written as `u64`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::BadValue("usize overflow"))
    }

    /// Read a bool byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadValue("bool byte")),
        }
    }

    /// Read an `Option` written by [`Writer::opt`].
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Read a sequence written by [`Writer::seq`].
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let n = self.usize()?;
        // Guard against a corrupt length claiming more elements than the
        // remaining bytes could possibly hold (1 byte per element floor).
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(SnapError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Read a string written by [`Writer::str`].
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadValue("non-UTF-8 string"))
    }

    /// Error unless every payload byte has been consumed — layout drift
    /// between writer and reader must not pass silently.
    pub fn done(&self) -> Result<(), SnapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// A value type that snapshots itself through the codec. Stateful
/// components with structural fields instead expose `save_state` /
/// `load_state` methods that restore into a prebuilt instance.
pub trait Snap: Sized {
    /// Serialize into `w`.
    fn save(&self, w: &mut Writer);
    /// Deserialize from `r`.
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u64 {
    fn save(&self, w: &mut Writer) {
        w.u64(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snap for usize {
    fn save(&self, w: &mut Writer) {
        w.usize(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.usize()
    }
}

impl Snap for bool {
    fn save(&self, w: &mut Writer) {
        w.bool(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.usize(self.len());
        for x in self {
            x.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.seq(T::load)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            Some(x) => {
                w.bool(true);
                x.save(w);
            }
            None => w.bool(false),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.opt(T::load)
    }
}

/// A complete simulation checkpoint: versioned header plus the opaque
/// component payload written by `Simulation::snapshot`.
///
/// The payload deliberately excludes the [`SystemConfig`] and the
/// workload traces: restoring rebuilds the simulation from those inputs
/// first and then overlays this mutable state, with `config_fp` (and
/// per-core trace fingerprints inside the payload) guarding the shape.
///
/// [`SystemConfig`]: https://docs.rs/mnpu-engine
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`] at capture time).
    pub version: u32,
    /// Fingerprint of the `SystemConfig` the snapshot was taken under.
    pub config_fp: u64,
    /// Opaque component payload (sectioned, tag-checked on restore).
    pub payload: Vec<u8>,
}

impl SimSnapshot {
    /// Wrap a payload under the current format version.
    pub fn new(config_fp: u64, payload: Vec<u8>) -> SimSnapshot {
        SimSnapshot { version: SNAPSHOT_VERSION, config_fp, payload }
    }

    /// Binary framing: magic, version, config fingerprint, payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 24);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.config_fp.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decode the binary framing.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`] when the bytes are not a snapshot,
    /// [`SnapError::VersionMismatch`] when the format version differs
    /// from [`SNAPSHOT_VERSION`], [`SnapError::Truncated`] /
    /// [`SnapError::TrailingBytes`] on framing damage.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimSnapshot, SnapError> {
        let mut r = Reader::new(bytes);
        let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::VersionMismatch { found: version, expected: SNAPSHOT_VERSION });
        }
        let config_fp = r.u64()?;
        let len = r.usize()?;
        let payload = r.take(len)?.to_vec();
        r.done()?;
        Ok(SimSnapshot { version, config_fp, payload })
    }

    /// JSON wrapper with a hex payload — human-inspectable framing whose
    /// round-trip through [`SimSnapshot::from_json`] is byte-exact.
    pub fn to_json(&self) -> String {
        let mut hex = String::with_capacity(self.payload.len() * 2);
        for b in &self.payload {
            hex.push_str(&format!("{b:02x}"));
        }
        format!(
            "{{\"format\":\"mnpu-snapshot\",\"version\":{},\"config_fp\":\"{:016x}\",\
             \"payload\":\"{hex}\"}}",
            self.version, self.config_fp
        )
    }

    /// Decode the JSON wrapper written by [`SimSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// [`SnapError::BadJson`] on malformed wrappers and
    /// [`SnapError::VersionMismatch`] on a foreign format version.
    pub fn from_json(text: &str) -> Result<SimSnapshot, SnapError> {
        fn field<'t>(text: &'t str, key: &str) -> Option<&'t str> {
            let start = text.find(&format!("\"{key}\":"))? + key.len() + 3;
            let rest = &text[start..];
            if let Some(stripped) = rest.strip_prefix('"') {
                let end = stripped.find('"')?;
                Some(&stripped[..end])
            } else {
                let end = rest.find([',', '}'])?;
                Some(&rest[..end])
            }
        }
        if field(text, "format") != Some("mnpu-snapshot") {
            return Err(SnapError::BadJson("missing mnpu-snapshot format marker"));
        }
        let version: u32 = field(text, "version")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(SnapError::BadJson("bad version field"))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::VersionMismatch { found: version, expected: SNAPSHOT_VERSION });
        }
        let config_fp = u64::from_str_radix(
            field(text, "config_fp").ok_or(SnapError::BadJson("missing config_fp"))?,
            16,
        )
        .map_err(|_| SnapError::BadJson("bad config_fp hex"))?;
        let hex = field(text, "payload").ok_or(SnapError::BadJson("missing payload"))?;
        if hex.len() % 2 != 0 {
            return Err(SnapError::BadJson("odd payload hex length"));
        }
        let mut payload = Vec::with_capacity(hex.len() / 2);
        for pair in hex.as_bytes().chunks(2) {
            let s = std::str::from_utf8(pair).map_err(|_| SnapError::BadJson("payload hex"))?;
            payload.push(
                u8::from_str_radix(s, 16).map_err(|_| SnapError::BadJson("payload hex digit"))?,
            );
        }
        Ok(SimSnapshot { version, config_fp, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writer_reader_round_trip_every_primitive() {
        let mut w = Writer::new();
        w.tag(7);
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(12345);
        w.bool(true);
        w.bool(false);
        w.opt(&Some(9u64), |w, v| w.u64(*v));
        w.opt(&None::<u64>, |w, v| w.u64(*v));
        w.seq(&[1u64, 2, 3], |w, v| w.u64(*v));
        w.str("héllo");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.tag(7).unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 12345);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.str().unwrap(), "héllo");
        r.done().unwrap();
    }

    #[test]
    fn wrong_tag_and_truncation_fail_loudly() {
        let mut w = Writer::new();
        w.tag(1);
        w.u64(42);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.tag(2), Err(SnapError::BadTag { expected: 2, found: 1 }));
        let mut r = Reader::new(&bytes[..4]);
        r.tag(1).unwrap();
        assert_eq!(r.u64(), Err(SnapError::Truncated));
        let mut r = Reader::new(&bytes);
        r.tag(1).unwrap();
        assert_eq!(r.done(), Err(SnapError::TrailingBytes));
    }

    #[test]
    fn corrupt_sequence_length_is_rejected_not_allocated() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd element count
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(r.seq(|r| r.u64()).is_err());
    }

    #[test]
    fn version_mismatch_fails_loudly_binary_and_json() {
        let snap = SimSnapshot::new(0x1234, vec![1, 2, 3]);
        let mut bytes = snap.to_bytes();
        // Tamper with the version field (bytes 4..8).
        bytes[4] = bytes[4].wrapping_add(1);
        assert!(matches!(
            SimSnapshot::from_bytes(&bytes),
            Err(SnapError::VersionMismatch { expected: SNAPSHOT_VERSION, .. })
        ));
        let json = snap.to_json().replace(
            &format!("\"version\":{SNAPSHOT_VERSION}"),
            &format!("\"version\":{}", SNAPSHOT_VERSION + 1),
        );
        assert!(matches!(
            SimSnapshot::from_json(&json),
            Err(SnapError::VersionMismatch { expected: SNAPSHOT_VERSION, .. })
        ));
    }

    #[test]
    fn bad_magic_is_not_a_snapshot() {
        let mut bytes = SimSnapshot::new(1, vec![]).to_bytes();
        bytes[0] = b'X';
        assert_eq!(SimSnapshot::from_bytes(&bytes), Err(SnapError::BadMagic));
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        let h = fingerprint_u64(fingerprint("seed"), 7);
        assert_ne!(h, fingerprint_u64(fingerprint("seed"), 8));
        assert_eq!(h, fingerprint_u64(fingerprint("seed"), 7));
    }

    proptest! {
        #[test]
        fn prop_binary_json_binary_round_trip(
            fp in 0u64..u64::MAX,
            payload in proptest::collection::vec(0u8..=255u8, 0..512),
        ) {
            let snap = SimSnapshot::new(fp, payload);
            let via_bytes = SimSnapshot::from_bytes(&snap.to_bytes()).unwrap();
            prop_assert_eq!(&via_bytes, &snap);
            let via_json = SimSnapshot::from_json(&snap.to_json()).unwrap();
            prop_assert_eq!(&via_json, &snap);
            // The full chain of the satellite requirement:
            // binary -> JSON -> binary equality.
            let chained = SimSnapshot::from_bytes(
                &SimSnapshot::from_json(&via_bytes.to_json()).unwrap().to_bytes(),
            )
            .unwrap();
            prop_assert_eq!(chained, snap);
        }

        #[test]
        fn prop_u64_round_trip(vs in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
            let mut w = Writer::new();
            vs.save(&mut w);
            let bytes = w.finish();
            let mut r = Reader::new(&bytes);
            prop_assert_eq!(Vec::<u64>::load(&mut r).unwrap(), vs);
            r.done().unwrap();
        }
    }
}
