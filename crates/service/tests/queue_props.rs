//! Property tests for the admission queue + service counters, driven by
//! random submit/cancel/dispatch interleavings.
//!
//! The invariants under test are the ones the daemon's metrics endpoint
//! advertises:
//!
//! * no accepted job is lost, and none runs twice;
//! * dispatch order is FIFO among the jobs that stayed queued;
//! * queue depth always equals admissions − dispatches − cancellations,
//!   and [`ServiceStats::in_system`] always equals queued + running.

use std::collections::HashSet;

use mnpu_metrics::ServiceStats;
use mnpu_service::{Admission, AdmissionQueue};
use proptest::prelude::*;

/// One scripted step against the queue.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Submit a fresh job id.
    Submit,
    /// Dispatch the queue head and complete it.
    RunOne,
    /// Cancel the `k`-th oldest job ever submitted (whatever its state).
    Cancel(usize),
}

fn decode(raw: usize) -> Op {
    match raw % 3 {
        0 => Op::Submit,
        1 => Op::RunOne,
        _ => Op::Cancel(raw / 3),
    }
}

proptest! {
    #[test]
    fn prop_no_loss_no_double_run_fifo_and_depth(
        raw_ops in proptest::collection::vec(0usize..64, 0..128),
        bound in 1usize..6,
    ) {
        let mut q = AdmissionQueue::new(bound);
        let mut stats = ServiceStats::new();

        let mut next_id = 0u64;
        let mut submitted: Vec<u64> = Vec::new();      // accepted, in order
        let mut model_queue: Vec<u64> = Vec::new();    // expected FIFO
        let mut dispatched: HashSet<u64> = HashSet::new();
        let mut cancelled: HashSet<u64> = HashSet::new();

        for &raw in &raw_ops {
            match decode(raw) {
                Op::Submit => {
                    next_id += 1;
                    stats.submissions += 1;
                    match q.submit(next_id) {
                        Admission::Accepted => {
                            prop_assert!(model_queue.len() < bound,
                                "accepted above the bound");
                            submitted.push(next_id);
                            model_queue.push(next_id);
                        }
                        Admission::Rejected => {
                            prop_assert_eq!(model_queue.len(), bound,
                                "rejected below the bound");
                            stats.rejects += 1;
                        }
                    }
                }
                Op::RunOne => {
                    let got = q.pop();
                    if model_queue.is_empty() {
                        prop_assert_eq!(got, None);
                    } else {
                        let expect = model_queue.remove(0);
                        prop_assert_eq!(got, Some(expect), "dispatch must be FIFO");
                        prop_assert!(dispatched.insert(expect), "a job ran twice");
                        prop_assert!(!cancelled.contains(&expect),
                            "a cancelled job was dispatched");
                        stats.dispatches += 1;
                        stats.completions += 1;
                        stats.record_latency_ms(0.0);
                    }
                }
                Op::Cancel(k) => {
                    if submitted.is_empty() { continue; }
                    let id = submitted[k % submitted.len()];
                    let was_queued = model_queue.iter().position(|&x| x == id);
                    let removed = q.cancel(id);
                    match was_queued {
                        Some(pos) => {
                            prop_assert!(removed, "queued jobs must be cancellable");
                            model_queue.remove(pos);
                            cancelled.insert(id);
                            stats.cancellations += 1;
                        }
                        None => prop_assert!(!removed,
                            "cancel invented a job that was not queued"),
                    }
                }
            }
            // Depth accounting holds after every single step.
            prop_assert_eq!(q.depth(), model_queue.len());
            prop_assert_eq!(
                q.depth() as u64,
                submitted.len() as u64
                    - dispatched.len() as u64
                    - cancelled.len() as u64,
                "depth != admissions - dispatches - cancellations"
            );
            prop_assert_eq!(stats.in_system(), q.depth() as u64,
                "in_system must equal queued (+0 running in this model)");
            let ids: Vec<u64> = q.ids().collect();
            prop_assert_eq!(&ids, &model_queue, "queue order drifted from FIFO");
        }

        // End state: every accepted job is exactly one of queued,
        // dispatched, or cancelled — nothing lost, nothing duplicated.
        for &id in &submitted {
            let places = [
                model_queue.contains(&id),
                dispatched.contains(&id),
                cancelled.contains(&id),
            ];
            prop_assert_eq!(places.iter().filter(|&&p| p).count(), 1,
                "job {} is in {} places", id, places.iter().filter(|&&p| p).count());
        }
        prop_assert_eq!(stats.finished(),
            dispatched.len() as u64 + cancelled.len() as u64);
    }

    /// The backpressure contract in isolation: once the queue is full,
    /// every further submission is rejected until something is popped.
    #[test]
    fn prop_bound_is_exact(bound in 1usize..8, extra in 0usize..16) {
        let mut q = AdmissionQueue::new(bound);
        for i in 0..bound {
            prop_assert_eq!(q.submit(i as u64), Admission::Accepted);
        }
        for i in 0..extra {
            prop_assert_eq!(q.submit((bound + i) as u64), Admission::Rejected);
        }
        prop_assert_eq!(q.depth(), bound);
        q.pop();
        prop_assert_eq!(q.submit(999), Admission::Accepted);
        prop_assert_eq!(q.depth(), bound);
    }
}
