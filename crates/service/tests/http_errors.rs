//! Error-path conformance: every malformed or unacceptable request gets a
//! typed 4xx with a one-line JSON error — and the daemon stays fully
//! serviceable afterwards. No input a client can send may take down a
//! worker.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mnpu_service::{Service, ServiceConfig};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("daemon is listening");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: errs\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).expect("status line").parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Submit a known-good job and wait for it to complete — the proof that
/// the daemon survived whatever came before.
fn assert_serviceable(addr: SocketAddr) {
    let (status, body) = request(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"]}"#,
    );
    assert_eq!(status, 202, "daemon no longer accepts work: {body}");
    let id_start = body.find("job-").expect("an id");
    let id: String =
        body[id_start..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        if body.contains("\"state\":\"completed\"") {
            return;
        }
        assert!(
            !body.contains("\"state\":\"failed\""),
            "the canary job failed — a worker is damaged: {body}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn malformed_json_is_400_and_daemon_survives() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    for bad in ["{nope", "", "[1,2,3]", "\"just a string\"", "{\"kind\":42}"] {
        let (status, body) = request(addr, "POST", "/v1/jobs", bad);
        assert_eq!(status, 400, "for {bad:?}: {body}");
        assert!(body.contains("\"error\""), "for {bad:?}: {body}");
    }
    assert_serviceable(addr);
    svc.shutdown();
}

#[test]
fn unknown_workload_is_400_with_the_zoo_listing() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    let (status, body) = request(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["resnet5000"]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown workload 'resnet5000'"), "{body}");
    assert!(body.contains("ncf"), "the error should list valid names: {body}");
    // Shape errors surface the facade's own RequestError message.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"networks","cores":2,"sharing":"ideal","networks":["ncf"]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("RequestError"), "{body}");
    assert_serviceable(addr);
    svc.shutdown();
}

#[test]
fn oversize_body_is_413_without_reading_the_payload() {
    let cfg = ServiceConfig { body_limit: 1024, ..ServiceConfig::default() };
    let svc = Service::start(cfg).unwrap();
    let addr = svc.addr();
    let huge = format!(r#"{{"kind":"networks","pad":"{}"}}"#, "x".repeat(4096));
    let (status, body) = request(addr, "POST", "/v1/jobs", &huge);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("exceeds"), "{body}");
    assert_serviceable(addr);
    svc.shutdown();
}

#[test]
fn resume_version_mismatch_is_409_not_a_worker_death() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    let body = r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"],
        "resume":{"format":"mnpu-job-checkpoint","version":999,"kind":"batch","payload":""}}"#;
    let (status, resp) = request(addr, "POST", "/v1/jobs", body);
    assert_eq!(status, 409, "{resp}");
    assert!(resp.contains("VersionMismatch"), "{resp}");
    // A right-version wrapper around corrupt snapshot bytes is the same
    // class of conflict.
    let body = r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"],
        "resume":{"format":"mnpu-job-checkpoint","version":1,"kind":"batch","payload":""}}"#;
    let (status, resp) = request(addr, "POST", "/v1/jobs", body);
    assert_eq!(status, 409, "{resp}");
    // A checkpoint that *decodes* but is offered to a non-resumable kind
    // is a plain 400 at admission.
    let cfg = mnpu_engine::SystemConfig::bench(1, mnpu_engine::SharingLevel::Ideal);
    let nets = vec![mnpusim::zoo::ncf(mnpusim::Scale::Bench)];
    let ckpt = mnpusim::RunRequest::networks(&cfg, nets)
        .build()
        .unwrap()
        .run_controlled(&mut || mnpusim::RunControl::Checkpoint)
        .checkpoint()
        .to_json();
    let body = format!(r#"{{"kind":"sweep","sweep":"tiny","resume":{ckpt}}}"#);
    let (status, resp) = request(addr, "POST", "/v1/jobs", &body);
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("not resumable"), "{resp}");
    assert_serviceable(addr);
    svc.shutdown();
}

#[test]
fn unknown_routes_and_methods_are_typed() {
    let svc = Service::start(ServiceConfig::default()).unwrap();
    let addr = svc.addr();
    assert_eq!(request(addr, "GET", "/v2/jobs", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/jobs/job-999", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/jobs/not-an-id", "").0, 404);
    assert_eq!(request(addr, "PATCH", "/v1/jobs", "").0, 405);
    let (status, body) = request(addr, "POST", "/v1/jobs", r#"{"kind":"sweep","sweep":"huge"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown sweep"), "{body}");
    assert_serviceable(addr);
    svc.shutdown();
}
