//! A deliberately small HTTP/1.1 layer: parse one request, write one
//! response, close.
//!
//! The daemon is a control plane for a simulator, not a web server —
//! every exchange is one short JSON body each way, so `Connection: close`
//! per request keeps the state machine trivial and `curl`-friendly.
//! Bodies are bounded *before* they are read: a `Content-Length` over the
//! configured limit is answered with 413 without consuming the payload.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request: method, path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// The request target, e.g. `/v1/jobs/job-1`.
    pub path: String,
    /// The decoded body (empty when none was sent).
    pub body: String,
}

/// Why a request could not be served at the HTTP layer, mapped straight
/// to a status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line or headers were malformed.
    BadRequest(&'static str),
    /// The declared body length exceeds the server's limit.
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
}

impl HttpError {
    /// The HTTP status code.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge { .. } => 413,
        }
    }

    /// The one-line message for the response body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => (*m).to_string(),
            HttpError::TooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

/// Read one request from `stream`. `body_limit` bounds the accepted
/// `Content-Length`.
///
/// # Errors
///
/// [`HttpError`] on malformed framing or an over-size declaration; I/O
/// errors surface as `BadRequest` (the connection is torn down either
/// way).
pub fn read_request(stream: &mut TcpStream, body_limit: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| malformed("clone failed"))?);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|_| malformed("unreadable request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(malformed("request line has no target"))?.to_string();
    let version = parts.next().ok_or(malformed("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("not an HTTP/1.x request"));
    }

    let mut content_length = 0usize;
    let mut expects_continue = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|_| malformed("unreadable header"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(malformed("header without a colon"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length =
                    value.parse().map_err(|_| malformed("unparsable content-length"))?;
            }
            "transfer-encoding" => {
                // One-shot JSON exchanges have no business being chunked,
                // and refusing keeps the body-limit check airtight.
                return Err(malformed("chunked transfer encoding is not supported"));
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => expects_continue = true,
            _ => {}
        }
    }
    if content_length > body_limit {
        return Err(HttpError::TooLarge { declared: content_length, limit: body_limit });
    }
    if expects_continue && content_length > 0 {
        // curl sends Expect: 100-continue for larger bodies; honor it so
        // the client actually transmits the payload.
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        let _ = stream.flush();
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| malformed("body shorter than content-length"))?;
    let body = String::from_utf8(body).map_err(|_| malformed("body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

fn malformed(m: &'static str) -> HttpError {
    HttpError::BadRequest(m)
}

/// Write one response and flush. Extra headers are `name: value` pairs
/// (used for `Retry-After` on 429).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    // The client may already be gone; a failed write is its problem.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str, limit: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            // Drain whatever the server sends (e.g. 100 Continue).
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let got = read_request(&mut conn, limit);
        // Close the server side before joining: the client blocks in
        // read_to_end until it sees EOF.
        drop(conn);
        client.join().unwrap();
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = round_trip("GET /metrics HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.body, "");
    }

    #[test]
    fn oversize_bodies_are_refused_by_declaration() {
        let err = round_trip("POST /v1/jobs HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 1024)
            .unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("999999"));
    }

    #[test]
    fn malformed_framing_is_a_400() {
        for raw in
            ["\r\n\r\n", "GET\r\n\r\n", "GET / FTP/1.0\r\n\r\n", "GET / HTTP/1.1\r\nbad\r\n\r\n"]
        {
            let err = round_trip(raw, 1024).unwrap_err();
            assert_eq!(err.status(), 400, "for {raw:?}");
        }
    }

    #[test]
    fn chunked_bodies_are_refused() {
        let err =
            round_trip("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 1024)
                .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("chunked"));
    }
}
