//! The service's request vocabulary: JSON bodies in, typed jobs out.
//!
//! A submission body describes one job in one of three kinds:
//!
//! * `"networks"` — a single-chip batch run: `cores`, `sharing`
//!   (`"ideal"`/`"static"`/`"+d"`/`"+dw"`/`"+dwt"`), `networks` (zoo
//!   names, one per core), optional `trace_window` and `probe`
//!   (`"stats"`/`"flight"`);
//! * `"serve"` — a dynamic scenario: `scenario` holds the scenario file
//!   text verbatim ([`mnpu_config::parse_scenario`]);
//! * `"sweep"` — a canonical sweep by name (`"tiny"`, `"fig04"`), run
//!   through the shared bench harness so its counts are comparable with
//!   `mnpu_hotpath`.
//!
//! Any job may carry `budget_ms` (wall-clock budget) and the resumable
//! kinds accept `resume` (a `mnpu-job-checkpoint` object from an earlier
//! stop). Every rejection is a typed [`WireError`] that maps to one 4xx
//! status and a one-line machine-readable message — the error contract
//! the HTTP error-path tests pin down.

use crate::json::{self, Value};
use mnpu_config::parse_scenario;
use mnpu_engine::{ProbeMode, SharingLevel, SnapError, SystemConfig};
use mnpu_model::{zoo, Scale};
use mnpusim::{JobCheckpoint, RequestError, RunRequest, Runner};

/// How a job will execute.
#[derive(Debug, Clone)]
pub enum ExecPlan {
    /// A facade run ([`Runner`]), optionally resumed from a checkpoint.
    Facade(Box<Runner>, Option<JobCheckpoint>),
    /// A named canonical sweep through the shared bench harness.
    Sweep(String),
}

/// A validated submission: the execution plan plus its service options.
#[derive(Debug, Clone)]
pub struct WireJob {
    /// How to run it.
    pub plan: ExecPlan,
    /// Wall-clock budget in milliseconds; `None` = unbounded.
    pub budget_ms: Option<u64>,
    /// `true` when the job resumes a checkpoint (excluded from the result
    /// cache: its answer depends on the checkpoint, not just the body).
    pub resumed: bool,
    /// `true` when the body carried `"fault":"panic"` — a test hatch that
    /// makes the executing worker panic mid-run, so the flight-recorder
    /// black-box path can be exercised end to end.
    pub fault: bool,
}

/// Why a submission was rejected, each variant carrying the one-line
/// message returned to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The body is not valid JSON.
    Json(String),
    /// The body is JSON but not a valid job description.
    Field(String),
    /// A workload name is not in the zoo.
    UnknownWorkload(String),
    /// The serve scenario text failed to parse.
    Scenario(String),
    /// The assembled request failed facade validation
    /// ([`RequestError`]).
    Request(String),
    /// The resume checkpoint failed to decode ([`SnapError`], including
    /// version mismatches).
    Snapshot(SnapError),
}

impl WireError {
    /// The HTTP status this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            // A checkpoint from a different format version or
            // configuration is a conflict with server state, not a syntax
            // error.
            WireError::Snapshot(_) => 409,
            _ => 400,
        }
    }

    /// The one-line message for the response body.
    pub fn message(&self) -> String {
        match self {
            WireError::Json(m) => m.clone(),
            WireError::Field(m) => m.clone(),
            WireError::UnknownWorkload(name) => {
                format!("unknown workload '{name}' (zoo: {})", zoo::MODEL_NAMES.join(", "))
            }
            WireError::Scenario(m) => m.clone(),
            WireError::Request(m) => format!("RequestError: {m}"),
            WireError::Snapshot(e) => format!("{e:?}"),
        }
    }
}

impl From<RequestError> for WireError {
    fn from(e: RequestError) -> Self {
        WireError::Request(e.to_string())
    }
}

impl From<SnapError> for WireError {
    fn from(e: SnapError) -> Self {
        WireError::Snapshot(e)
    }
}

fn sharing_by_name(name: &str) -> Option<SharingLevel> {
    Some(match name {
        "ideal" => SharingLevel::Ideal,
        "static" => SharingLevel::Static,
        "+d" => SharingLevel::PlusD,
        "+dw" => SharingLevel::PlusDw,
        "+dwt" => SharingLevel::PlusDwt,
        _ => return None,
    })
}

fn field_err(m: impl Into<String>) -> WireError {
    WireError::Field(m.into())
}

/// Parse and validate one submission body.
///
/// # Errors
///
/// A [`WireError`] describing the first problem found; nothing is
/// partially constructed.
pub fn parse_job(body: &str) -> Result<WireJob, WireError> {
    let v = json::parse(body).map_err(|e| WireError::Json(e.to_string()))?;
    let obj = v.as_obj().ok_or_else(|| field_err("job body must be a JSON object"))?;
    for key in obj.keys() {
        match key.as_str() {
            "kind" | "cores" | "sharing" | "networks" | "trace_window" | "probe" | "scenario"
            | "sweep" | "budget_ms" | "resume" | "fault" => {}
            other => return Err(field_err(format!("unknown field '{other}'"))),
        }
    }
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| field_err("missing or non-string 'kind'"))?;

    let budget_ms = match v.get("budget_ms") {
        None => None,
        Some(b) => Some(
            b.as_u64().ok_or_else(|| field_err("'budget_ms' must be a non-negative integer"))?,
        ),
    };
    let fault = match v.get("fault") {
        None => false,
        Some(f) => match f.as_str() {
            Some("panic") => true,
            _ => return Err(field_err("'fault' must be \"panic\"")),
        },
    };
    let resume = match v.get("resume") {
        None => None,
        Some(r) => {
            // Round-trip through text: `JobCheckpoint::from_json` owns the
            // validation (format marker, version, payload integrity).
            let text = render_value(r);
            Some(JobCheckpoint::from_json(&text)?)
        }
    };

    let plan = match kind {
        "networks" => {
            let cores = v
                .get("cores")
                .and_then(Value::as_u64)
                .ok_or_else(|| field_err("'networks' jobs need an integer 'cores'"))?
                as usize;
            if cores == 0 || cores > 64 {
                return Err(field_err("'cores' must be between 1 and 64"));
            }
            let sharing_name = v
                .get("sharing")
                .and_then(Value::as_str)
                .ok_or_else(|| field_err("'networks' jobs need a 'sharing' level"))?;
            let sharing = sharing_by_name(sharing_name).ok_or_else(|| {
                field_err(format!(
                    "unknown sharing level '{sharing_name}' (ideal, static, +d, +dw, +dwt)"
                ))
            })?;
            let names = v
                .get("networks")
                .and_then(Value::as_arr)
                .ok_or_else(|| field_err("'networks' jobs need a 'networks' array"))?;
            let mut nets = Vec::with_capacity(names.len());
            for n in names {
                let name =
                    n.as_str().ok_or_else(|| field_err("'networks' entries must be strings"))?;
                let net = zoo::by_name(name, Scale::Bench)
                    .ok_or_else(|| WireError::UnknownWorkload(name.to_string()))?;
                nets.push(net);
            }
            let mut cfg = SystemConfig::bench(cores, sharing);
            if let Some(w) = v.get("trace_window") {
                cfg.trace_window =
                    Some(w.as_u64().ok_or_else(|| field_err("'trace_window' must be an integer"))?);
            }
            if let Some(p) = v.get("probe") {
                cfg.probe = match p.as_str() {
                    Some("stats") => ProbeMode::Stats,
                    Some("flight") => ProbeMode::Flight,
                    Some("none") => ProbeMode::None,
                    _ => {
                        return Err(field_err("'probe' must be \"stats\", \"flight\" or \"none\""))
                    }
                };
            }
            let runner = RunRequest::networks(&cfg, nets).build()?;
            ExecPlan::Facade(Box::new(runner), resume)
        }
        "serve" => {
            let text = v
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or_else(|| field_err("'serve' jobs need a 'scenario' text field"))?;
            let spec = parse_scenario("wire", text)
                .map_err(|e| WireError::Scenario(format!("scenario: {e}")))?;
            let runner = RunRequest::serve(spec).build()?;
            ExecPlan::Facade(Box::new(runner), resume)
        }
        "sweep" => {
            if resume.is_some() {
                return Err(field_err("'sweep' jobs are not resumable"));
            }
            let name = v
                .get("sweep")
                .and_then(Value::as_str)
                .ok_or_else(|| field_err("'sweep' jobs need a 'sweep' name"))?;
            if mnpu_bench::sweeps::by_name(name).is_none() {
                return Err(field_err(format!("unknown sweep '{name}' (tiny, fig04)")));
            }
            ExecPlan::Sweep(name.to_string())
        }
        other => return Err(field_err(format!("unknown kind '{other}'"))),
    };

    let resumed = matches!(&plan, ExecPlan::Facade(_, Some(_)));
    Ok(WireJob { plan, budget_ms, resumed, fault })
}

/// Render a parsed [`Value`] back to canonical JSON text (used to hand the
/// `resume` object to [`JobCheckpoint::from_json`], which owns its own
/// framing validation).
fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Str(s) => format!("\"{}\"", json::escape(s)),
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Obj(m) => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json::escape(k), render_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_networks_job() {
        let job = parse_job(
            r#"{"kind":"networks","cores":2,"sharing":"+dwt",
                "networks":["ncf","gpt2"],"budget_ms":500}"#,
        )
        .unwrap();
        assert_eq!(job.budget_ms, Some(500));
        assert!(!job.resumed);
        assert!(matches!(job.plan, ExecPlan::Facade(_, None)));
    }

    #[test]
    fn parses_a_serve_job() {
        let job = parse_job(r#"{"kind":"serve","scenario":"cores = 1\njob = ncf\njob = ncf\n"}"#)
            .unwrap();
        assert!(matches!(job.plan, ExecPlan::Facade(_, None)));
        assert_eq!(job.budget_ms, None);
    }

    #[test]
    fn parses_flight_probe_and_fault_hatch() {
        let job = parse_job(
            r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"],
                "probe":"flight","fault":"panic"}"#,
        )
        .unwrap();
        assert!(job.fault);
        assert!(matches!(job.plan, ExecPlan::Facade(_, None)));
        assert!(matches!(
            parse_job(r#"{"kind":"sweep","sweep":"tiny","fault":"segfault"}"#),
            Err(WireError::Field(ref m)) if m.contains("fault")
        ));
    }

    #[test]
    fn parses_a_sweep_job() {
        let job = parse_job(r#"{"kind":"sweep","sweep":"tiny"}"#).unwrap();
        assert!(matches!(job.plan, ExecPlan::Sweep(ref n) if n == "tiny"));
    }

    #[test]
    fn rejects_with_typed_errors() {
        assert!(matches!(parse_job("{nope"), Err(WireError::Json(_))));
        assert!(matches!(parse_job("[1,2]"), Err(WireError::Field(_))));
        assert!(matches!(
            parse_job(r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["nope"]}"#),
            Err(WireError::UnknownWorkload(ref n)) if n == "nope"
        ));
        assert!(matches!(
            parse_job(r#"{"kind":"serve","scenario":"cores = 0\n"}"#),
            Err(WireError::Scenario(_))
        ));
        // Wrong workload count per core -> facade-level RequestError.
        let err =
            parse_job(r#"{"kind":"networks","cores":2,"sharing":"ideal","networks":["ncf"]}"#)
                .unwrap_err();
        assert!(matches!(err, WireError::Request(_)));
        assert!(err.message().contains("RequestError"));
        // Unknown fields are rejected loudly rather than ignored.
        assert!(matches!(
            parse_job(r#"{"kind":"sweep","sweep":"tiny","budget":5}"#),
            Err(WireError::Field(ref m)) if m.contains("budget")
        ));
    }

    #[test]
    fn resume_version_mismatch_is_a_snapshot_error() {
        let body = r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"],
            "resume":{"format":"mnpu-job-checkpoint","version":999,"kind":"batch","payload":""}}"#;
        let err = parse_job(body).unwrap_err();
        assert_eq!(err.status(), 409);
        assert!(matches!(err, WireError::Snapshot(SnapError::VersionMismatch { found: 999, .. })));
        assert!(err.message().contains("VersionMismatch"));
    }

    #[test]
    fn statuses_are_4xx() {
        assert_eq!(WireError::Json("x".into()).status(), 400);
        assert_eq!(WireError::Snapshot(SnapError::Truncated).status(), 409);
    }
}
