//! Process-signal plumbing for the daemon: SIGTERM/SIGINT set a flag, the
//! main loop notices and drains.
//!
//! The crate is `deny(unsafe_code)`; this module is the one sanctioned
//! exception, containing the two-line FFI to `signal(2)` that a std-only
//! build needs (no signal-handling crate is vendored). The handler itself
//! only stores to an atomic — the async-signal-safe subset.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Install the SIGTERM/SIGINT handler. Returns `false` on non-Unix
/// targets, where the daemon simply cannot be signalled to drain.
pub fn install_termination_handler() -> bool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// `true` once a termination signal has been delivered.
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_handler_installs() {
        // The flag may already be set if another test delivered a signal;
        // only assert what is invariant.
        assert!(install_termination_handler() || !cfg!(unix));
        on_signal(15);
        assert!(termination_requested());
    }
}
