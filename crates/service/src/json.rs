//! A minimal JSON reader for the service wire format.
//!
//! The workspace is std-only, and the service's request bodies are small
//! hand-authored objects, so a compact recursive-descent parser is the
//! honest tool: full JSON value grammar, string escapes, a depth limit,
//! and loud errors. It parses — it does not pretty-print; responses are
//! assembled with `format!` like every other JSON emitter in the
//! workspace.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is irrelevant to the wire format, so a sorted
    /// map keeps lookups simple.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Why a body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset the parser stopped at.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth beyond which a body is rejected (stack safety against
/// adversarial `[[[[...]]]]` inputs).
const MAX_DEPTH: usize = 64;

/// Parse one complete JSON document.
///
/// # Errors
///
/// A [`ParseError`] naming the first offending byte; trailing non-space
/// content after the document is an error too.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content after the JSON document"));
    }
    Ok(v)
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { message, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not worth supporting in a
                            // machine-to-machine wire format; reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = first_scalar(rest);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

/// The first UTF-8 scalar of `bytes`, as a str slice (bytes come from a
/// `&str`, so decoding cannot fail — this just finds the boundary).
fn first_scalar(bytes: &[u8]) -> &str {
    let len = match bytes[0] {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    };
    std::str::from_utf8(&bytes[..len]).expect("input was a valid &str")
}

/// Escape `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_shapes() {
        let v = parse(r#"{"kind":"networks","cores":2,"nets":["ncf","gpt2"],"deep":{"x":null}}"#)
            .unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("networks"));
        assert_eq!(v.get("cores").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("nets").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("deep").and_then(|d| d.get("x")), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn numbers_bools_and_escapes() {
        assert_eq!(parse("-12.5e1").unwrap().as_num(), Some(-125.0));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(r#""a\nb\t\"c\" A""#).unwrap().as_str(), Some("a\nb\t\"c\" A"));
        assert_eq!(parse(r#""héllo""#).unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "{} trailing",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\none\t\"quoted\" \\ \u{1}";
        let quoted = format!("\"{}\"", escape(s));
        assert_eq!(parse(&quoted).unwrap().as_str(), Some(s));
    }
}
