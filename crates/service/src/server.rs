//! The always-on simulation service: a bounded worker pool behind an
//! HTTP/1.1 control plane.
//!
//! One [`Service`] owns three kinds of threads: an accept loop, one
//! short-lived handler per connection, and `workers` long-lived execution
//! threads. All shared state sits behind a single mutex + condvar pair —
//! admission queue, job table, counters, and the `hold`/`draining` flags —
//! and every blocking wait (worker looking for work, drain waiting for
//! running jobs) is a condition on that one state, so the lifecycle has no
//! lock-ordering to get wrong.
//!
//! Execution reuses the rest of the workspace rather than reimplementing
//! it: facade jobs run through [`mnpusim::Runner::run_controlled`] /
//! [`mnpusim::Runner::resume`] (so cancellation, budgets and drain all stop at
//! bit-exact checkpoint boundaries), and sweep jobs run through the shared
//! bench [`Harness`] (so a daemon-run sweep accumulates exactly the counts
//! `mnpu_hotpath` prints, warm-start prefix sharing included).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mnpu_bench::{sweeps, Harness};
use mnpu_metrics::{prom, ServiceStats};
use mnpu_probe::JobPhase;
use mnpu_trace::TraceHandle;
use mnpusim::{RunControl, RunObservation, RunOutcome, RunProgress};

use crate::http::{self, Request};
use crate::jobs::{JobState, JobTable};
use crate::json;
use crate::queue::{Admission, AdmissionQueue};
use crate::wire::{self, ExecPlan};

/// How a daemon instance is shaped.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission queue bound: submissions beyond it get 429.
    pub queue_depth: usize,
    /// Largest accepted request body in bytes (resume bodies embed
    /// hex-encoded snapshots, so the default is generous).
    pub body_limit: usize,
    /// The `Retry-After` seconds advertised on 429.
    pub retry_after_secs: u64,
    /// Where a drain writes its manifest and per-job checkpoint files;
    /// `None` drains without persisting.
    pub checkpoint_dir: Option<PathBuf>,
    /// Where abnormally-stopped jobs (panic, budget, cancel, drain) dump
    /// their flight-recorder black box as `flight-<job>.json`; `None`
    /// disables the dumps (telemetry stays fetchable over HTTP).
    pub flight_dir: Option<PathBuf>,
    /// Per-job flight-recorder ring capacity, in events.
    pub flight_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            body_limit: 16 << 20,
            retry_after_secs: 1,
            checkpoint_dir: None,
            flight_dir: None,
            flight_capacity: mnpu_trace::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Why a running job was asked to stop, in priority order (a cancel beats
/// a drain beats a budget when several fire at the same poll).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopReason {
    Cancel,
    Drain,
    Budget,
}

/// Everything behind the big lock.
struct State {
    queue: AdmissionQueue,
    jobs: JobTable,
    stats: ServiceStats,
    /// `true` pauses dispatch while admission keeps running — the switch
    /// the backpressure tests use to fill the queue deterministically.
    hold: bool,
    /// `true` once a drain began: no new admissions, no new dispatches,
    /// running jobs checkpoint at their next poll.
    draining: bool,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<State>,
    cv: Condvar,
    started: Instant,
    harness: Harness,
    /// Completed results by submission body. Deterministic simulations
    /// make this sound: the same body always produces the same bytes.
    cache: Mutex<HashMap<String, String>>,
    accepting: AtomicBool,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// What a drain left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that were running and were checkpointed.
    pub suspended_running: usize,
    /// Jobs that were still queued and were returned to the backlog.
    pub suspended_queued: usize,
    /// Files written under the configured checkpoint directory.
    pub files: Vec<PathBuf>,
}

/// A running daemon instance. Start one with [`Service::start`], stop it
/// with [`Service::shutdown`] (which drains: running jobs checkpoint, the
/// backlog is preserved, nothing in flight is lost).
pub struct Service {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Bind, spawn the worker pool and the accept loop, and return.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: AdmissionQueue::new(cfg.queue_depth),
                jobs: JobTable::new(),
                stats: ServiceStats::new(),
                hold: false,
                draining: false,
            }),
            cv: Condvar::new(),
            started: Instant::now(),
            harness: Harness::new(),
            cache: Mutex::new(HashMap::new()),
            accepting: AtomicBool::new(true),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, w))
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        Ok(Service { inner, addr, accept: Some(accept), workers })
    }

    /// The bound address (the actual port when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a drain has been requested (by [`Service::shutdown`] or
    /// by `POST /v1/drain`). The daemon binary polls this to exit.
    pub fn draining(&self) -> bool {
        self.inner.state.lock().unwrap().draining
    }

    /// Drain and stop: refuse new work, checkpoint every running job at
    /// its next safe boundary, suspend the backlog, persist everything to
    /// the checkpoint directory (when configured), and join all threads.
    pub fn shutdown(mut self) -> DrainReport {
        let (running_ids, queued_ids) = {
            let mut st = self.inner.state.lock().unwrap();
            st.draining = true;
            self.inner.cv.notify_all();
            // Wait for every running job to reach a terminal state — their
            // poll callbacks observe `draining` and checkpoint.
            while st.jobs.any_running() {
                st = self.inner.cv.wait(st).unwrap();
            }
            // Suspend the backlog: these never started, so their bodies are
            // their whole state.
            let queued = st.queue.drain();
            let now = self.inner.now_ms();
            for &id in &queued {
                let job = st.jobs.get_mut(id).expect("queued jobs are in the table");
                job.state = JobState::Suspended;
                job.timeline.record(now, JobPhase::Suspended);
                st.stats.suspended += 1;
            }
            (st.jobs.ids_in_state(JobState::Suspended), queued)
        };
        let files = self.persist_drain(&running_ids);

        // Unblock and join the accept loop: flip the flag, then poke it
        // with one throwaway connection.
        self.inner.accepting.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        DrainReport {
            suspended_running: running_ids.len() - queued_ids.len(),
            suspended_queued: queued_ids.len(),
            files,
        }
    }

    /// Write the drain manifest and one file per suspended job.
    fn persist_drain(&self, suspended: &[u64]) -> Vec<PathBuf> {
        let Some(dir) = &self.inner.cfg.checkpoint_dir else {
            return Vec::new();
        };
        let mut files = Vec::new();
        if std::fs::create_dir_all(dir).is_err() {
            return files;
        }
        let st = self.inner.state.lock().unwrap();
        let mut ids = Vec::new();
        for &id in suspended {
            let job = st.jobs.get(id).expect("suspended jobs are in the table");
            let ckpt = job.checkpoint.as_deref().unwrap_or("null");
            let doc = format!(
                "{{\"id\":\"{}\",\"body\":{},\"checkpoint\":{}}}",
                job.wire_id(),
                job.body,
                ckpt
            );
            let path = dir.join(format!("{}.json", job.wire_id()));
            if std::fs::write(&path, doc).is_ok() {
                files.push(path);
                ids.push(format!("\"{}\"", job.wire_id()));
            }
        }
        let manifest = format!(
            "{{\"format\":\"mnpu-drain-manifest\",\"suspended\":[{}],\"jobs\":{}}}",
            ids.join(","),
            st.jobs.len()
        );
        let path = dir.join("drain.json");
        if std::fs::write(&path, manifest).is_ok() {
            files.push(path);
        }
        files
    }
}

/// Accept connections until the service stops accepting; each connection
/// gets a short-lived handler thread (requests are one JSON exchange).
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else { continue };
        if !inner.accepting.load(Ordering::SeqCst) {
            return;
        }
        let inner = Arc::clone(inner);
        std::thread::spawn(move || handle_conn(stream, &inner));
    }
}

/// Pull jobs off the queue and execute them until a drain begins.
fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    loop {
        let (id, body, deadline, resumed, trace) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.draining {
                    return;
                }
                if !st.hold {
                    if let Some(id) = st.queue.pop() {
                        let now = inner.now_ms();
                        st.stats.dispatches += 1;
                        let backlog = st.queue.depth() as u64;
                        st.stats.record_queue_depth(backlog);
                        let job = st.jobs.get_mut(id).expect("popped jobs are in the table");
                        job.state = JobState::Running;
                        let phase =
                            if job.resumed { JobPhase::Resumed } else { JobPhase::Dispatched };
                        job.timeline.record(now, phase);
                        // Telemetry attaches at dispatch: from here on the
                        // job's ring and progress cell are fetchable.
                        let trace = TraceHandle::with_capacity(inner.cfg.flight_capacity);
                        trace.record_lifecycle(phase);
                        job.telemetry = Some(trace.clone());
                        job.worker = Some(worker);
                        let deadline =
                            job.budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                        break (id, job.body.clone(), deadline, job.resumed, trace);
                    }
                }
                st = inner.cv.wait(st).unwrap();
            }
        };
        execute(inner, id, &body, deadline, resumed, &trace);
    }
}

/// What one execution attempt produced.
enum ExecOutcome {
    /// Rendered result JSON.
    Completed(String),
    /// Stopped on request; the checkpoint JSON when one exists (facade
    /// jobs), `None` when the shape cannot checkpoint (sweeps).
    Stopped(Option<String>),
    /// Execution failed with a message.
    Error(String),
}

/// Decide whether a running job must stop, in priority order.
fn check_stop(inner: &Inner, id: u64, deadline: Option<Instant>) -> Option<StopReason> {
    {
        let st = inner.state.lock().unwrap();
        if st.jobs.get(id).is_some_and(|j| j.cancel_requested) {
            return Some(StopReason::Cancel);
        }
        if st.draining {
            return Some(StopReason::Drain);
        }
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Some(StopReason::Budget);
    }
    None
}

/// Run one dispatched job end to end and record its terminal state.
fn execute(
    inner: &Arc<Inner>,
    id: u64,
    body: &str,
    deadline: Option<Instant>,
    resumed: bool,
    trace: &TraceHandle,
) {
    let busy = Instant::now();
    let busy_ms = |t0: Instant| t0.elapsed().as_millis() as u64;
    // Re-derive the plan from the stored body; submission already
    // validated it, so failures here are real execution errors.
    let job = match wire::parse_job(body) {
        Ok(j) => j,
        Err(e) => {
            return finish(inner, id, ExecOutcome::Error(e.message()), None, false, busy_ms(busy))
        }
    };
    let fault = job.fault;

    // Result cache: deterministic runs keyed by the exact body. Resumes
    // are excluded — their answer depends on the checkpoint's progress.
    if !resumed {
        let cached = inner.cache.lock().unwrap().get(body).cloned();
        if let Some(result) = cached {
            return finish(inner, id, ExecOutcome::Completed(result), None, true, busy_ms(busy));
        }
    }

    let mut stop_reason: Option<StopReason> = None;
    let outcome = {
        let reason = &mut stop_reason;
        catch_unwind(AssertUnwindSafe(|| match job.plan {
            ExecPlan::Facade(runner, from) => {
                let mut polls = 0u64;
                let mut poll = |_obs: RunObservation| {
                    polls += 1;
                    if fault && polls > 2 {
                        panic!("induced fault: panic");
                    }
                    if reason.is_none() {
                        *reason = check_stop(inner, id, deadline);
                    }
                    if reason.is_some() {
                        RunControl::Checkpoint
                    } else {
                        RunControl::Continue
                    }
                };
                let progress = match from {
                    Some(ckpt) => match runner.resume_observed(ckpt, Some(trace), &mut poll) {
                        Ok(p) => p,
                        Err(e) => return ExecOutcome::Error(format!("resume failed: {e:?}")),
                    },
                    None => runner.run_observed(Some(trace), &mut poll),
                };
                match progress {
                    RunProgress::Done(outcome) => ExecOutcome::Completed(render_outcome(outcome)),
                    RunProgress::Checkpointed(c) => ExecOutcome::Stopped(Some(c.to_json())),
                    RunProgress::Stopped => ExecOutcome::Stopped(None),
                }
            }
            ExecPlan::Sweep(name) => {
                let reqs = sweeps::by_name(&name).expect("sweep names validated at admission");
                let mut units = 0u64;
                let mut should_stop = || {
                    units += 1;
                    if fault && units > 2 {
                        panic!("induced fault: panic");
                    }
                    if reason.is_none() {
                        *reason = check_stop(inner, id, deadline);
                    }
                    reason.is_some()
                };
                match sweeps::run_counts_observed(
                    &inner.harness,
                    &reqs,
                    Some(trace),
                    &mut should_stop,
                ) {
                    Some(counts) => ExecOutcome::Completed(counts.to_json()),
                    None => ExecOutcome::Stopped(None),
                }
            }
        }))
    };
    let outcome = outcome.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string());
        ExecOutcome::Error(format!("panic: {msg}"))
    });
    finish(inner, id, outcome, stop_reason, false, busy_ms(busy));
}

/// Render a completed facade outcome as its canonical report JSON — the
/// same bytes an in-process `RunRequest::run()` caller would serialize.
fn render_outcome(outcome: RunOutcome) -> String {
    match outcome {
        RunOutcome::Batch(r) => r.to_json(),
        RunOutcome::Serve(s) => s.to_json(),
        RunOutcome::Fleet(rs) => {
            let inner: Vec<String> = rs.iter().map(|r| r.to_json()).collect();
            format!("{{\"fleet\":[{}]}}", inner.join(","))
        }
    }
}

/// Record a job's terminal state, counters and latency, wake waiters, and
/// — for abnormal stops — dump the flight-recorder black box.
fn finish(
    inner: &Inner,
    id: u64,
    outcome: ExecOutcome,
    stop_reason: Option<StopReason>,
    from_cache: bool,
    busy_ms: u64,
) {
    let mut flight_dump: Option<(PathBuf, String)> = None;
    {
        let mut st = inner.state.lock().unwrap();
        let now = inner.now_ms();
        st.stats.worker_busy_ms += busy_ms;
        let job = st.jobs.get_mut(id).expect("finishing jobs are in the table");
        let trace = job.telemetry.clone();
        match outcome {
            ExecOutcome::Completed(result) => {
                job.state = JobState::Completed;
                job.from_cache = from_cache;
                job.timeline.record(now, JobPhase::Completed);
                job.result = Some(result.clone());
                let latency = job.elapsed_ms() as f64;
                let cacheable = !job.resumed && !from_cache;
                let body = job.body.clone();
                if let Some(t) = &trace {
                    t.record_lifecycle(JobPhase::Completed);
                }
                st.stats.completions += 1;
                if from_cache {
                    st.stats.cache_hits += 1;
                }
                st.stats.record_latency_ms(latency);
                if cacheable {
                    inner.cache.lock().unwrap().insert(body, result);
                }
            }
            ExecOutcome::Stopped(checkpoint) => {
                if checkpoint.is_some() {
                    job.timeline.record(now, JobPhase::Checkpointed);
                }
                job.checkpoint = checkpoint;
                // A stop with no recorded reason can only be a drain observed
                // inside the engine after the flag flipped mid-poll.
                let state = match stop_reason.unwrap_or(StopReason::Drain) {
                    StopReason::Cancel => JobState::Cancelled,
                    StopReason::Drain => JobState::Suspended,
                    StopReason::Budget => JobState::OverBudget,
                };
                job.state = state;
                job.timeline.record(now, state.terminal_phase());
                if let Some(t) = &trace {
                    if job.checkpoint.is_some() {
                        t.record_lifecycle(JobPhase::Checkpointed);
                    }
                    t.record_lifecycle(state.terminal_phase());
                }
                match state {
                    JobState::Cancelled => st.stats.cancellations += 1,
                    JobState::Suspended => st.stats.suspended += 1,
                    JobState::OverBudget => st.stats.over_budget += 1,
                    _ => unreachable!("stop reasons map to stopped states"),
                }
            }
            ExecOutcome::Error(message) => {
                job.state = JobState::Failed;
                job.error = Some(message);
                job.timeline.record(now, JobPhase::Failed);
                if let Some(t) = &trace {
                    t.record_lifecycle(JobPhase::Failed);
                }
                st.stats.failures += 1;
            }
        }
        // An abnormal stop writes the black box; completions don't need one.
        let job = st.jobs.get(id).expect("still in the table");
        let abnormal = matches!(
            job.state,
            JobState::Failed | JobState::Cancelled | JobState::OverBudget | JobState::Suspended
        );
        if abnormal {
            if let (Some(t), Some(dir)) = (&trace, &inner.cfg.flight_dir) {
                let wire_id = job.wire_id();
                flight_dump =
                    Some((dir.join(format!("flight-{wire_id}.json")), t.dump_json(&wire_id)));
            }
        }
        inner.cv.notify_all();
    }
    // File I/O happens after the lock is gone; a slow disk must not stall
    // dispatch or status polls.
    if let Some((path, doc)) = flight_dump {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(path, doc);
    }
}

fn json_error(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(msg))
}

/// Serve one connection: read a request, route it, write the response.
fn handle_conn(mut stream: TcpStream, inner: &Arc<Inner>) {
    let req = match http::read_request(&mut stream, inner.cfg.body_limit) {
        Ok(r) => r,
        Err(e) => {
            http::write_response(
                &mut stream,
                e.status(),
                "application/json",
                &[],
                &json_error(&e.message()),
            );
            return;
        }
    };
    let (status, content_type, extra, body) = route(inner, &req);
    let extra_refs: Vec<(&str, &str)> =
        extra.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    http::write_response(&mut stream, status, content_type, &extra_refs, &body);
}

type Response = (u16, &'static str, Vec<(String, String)>, String);

fn json_response(status: u16, body: String) -> Response {
    (status, "application/json", Vec::new(), body)
}

/// The service's route table.
fn route(inner: &Arc<Inner>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => submit(inner, &req.body),
        ("GET", "/metrics") => (200, prom::CONTENT_TYPE, Vec::new(), metrics(inner)),
        ("GET", "/v1/version") => json_response(200, version_json()),
        ("GET", "/v1/healthz") => {
            let st = inner.state.lock().unwrap();
            json_response(
                200,
                format!("{{\"ok\":true,\"draining\":{},\"hold\":{}}}", st.draining, st.hold),
            )
        }
        ("POST", "/v1/hold") => {
            inner.state.lock().unwrap().hold = true;
            json_response(200, "{\"hold\":true}".to_string())
        }
        ("POST", "/v1/release") => {
            inner.state.lock().unwrap().hold = false;
            inner.cv.notify_all();
            json_response(200, "{\"hold\":false}".to_string())
        }
        ("POST", "/v1/drain") => {
            inner.state.lock().unwrap().draining = true;
            inner.cv.notify_all();
            json_response(200, "{\"draining\":true}".to_string())
        }
        (method, path) if path.starts_with("/v1/jobs/") => {
            job_route(inner, method, &path["/v1/jobs/".len()..])
        }
        ("GET" | "POST" | "DELETE", _) => json_response(404, json_error("unknown path")),
        _ => json_response(405, json_error("method not allowed")),
    }
}

/// `POST /v1/jobs`: validate, admit or bounce.
fn submit(inner: &Arc<Inner>, body: &str) -> Response {
    // Parse outside the lock; scenario parsing is cheap but not free.
    let parsed = wire::parse_job(body);
    let mut st = inner.state.lock().unwrap();
    if st.draining {
        return json_response(503, json_error("service is draining"));
    }
    let job = match parsed {
        Ok(j) => j,
        Err(e) => return json_response(e.status(), json_error(&e.message())),
    };
    st.stats.submissions += 1;
    if st.queue.depth() >= st.queue.bound() {
        st.stats.rejects += 1;
        let retry = inner.cfg.retry_after_secs;
        return (
            429,
            "application/json",
            vec![("Retry-After".to_string(), retry.to_string())],
            json_error(&format!("admission queue full ({} queued)", st.queue.depth())),
        );
    }
    let now = inner.now_ms();
    let id = st.jobs.admit(body.to_string(), job.budget_ms, job.resumed, now);
    let admitted = st.queue.submit(id);
    debug_assert_eq!(admitted, Admission::Accepted, "depth was checked under the same lock");
    inner.cv.notify_all();
    let wire_id = st.jobs.get(id).expect("just admitted").wire_id();
    json_response(202, format!("{{\"id\":\"{wire_id}\",\"state\":\"queued\"}}"))
}

/// Routes under `/v1/jobs/<id>[/...]`.
fn job_route(inner: &Arc<Inner>, method: &str, rest: &str) -> Response {
    let (wire_id, sub) = match rest.split_once('/') {
        Some((id, sub)) => (id, Some(sub)),
        None => (rest, None),
    };
    let Some(id) = JobTable::parse_wire_id(wire_id) else {
        return json_response(404, json_error("job ids look like job-<n>"));
    };
    let mut st = inner.state.lock().unwrap();
    let Some(job) = st.jobs.get(id) else {
        return json_response(404, json_error("unknown job"));
    };
    match (method, sub) {
        ("GET", None) => json_response(200, job.status_json()),
        ("GET", Some("report")) => match &job.result {
            Some(r) => json_response(200, r.clone()),
            None => json_response(404, json_error("no result available")),
        },
        ("GET", Some("checkpoint")) => match &job.checkpoint {
            Some(c) => json_response(200, c.clone()),
            None => json_response(404, json_error("no checkpoint available")),
        },
        ("GET", Some("progress")) => match &job.telemetry {
            Some(t) => json_response(200, t.progress().snapshot().to_json()),
            None => json_response(404, json_error("job has not been dispatched")),
        },
        ("GET", Some("flight")) => match &job.telemetry {
            Some(t) => json_response(200, t.dump_json(&job.wire_id())),
            None => json_response(404, json_error("job has not been dispatched")),
        },
        ("GET", Some("trace")) => match &job.telemetry {
            Some(t) => json_response(200, t.chrome_json(&job.wire_id(), job.worker.unwrap_or(0))),
            None => json_response(404, json_error("job has not been dispatched")),
        },
        ("DELETE", None) => {
            let now = inner.now_ms();
            let job = st.jobs.get_mut(id).expect("present above");
            match job.state {
                JobState::Queued => {
                    job.cancel_requested = true;
                    job.state = JobState::Cancelled;
                    job.timeline.record(now, JobPhase::Cancelled);
                    let body = job.status_json();
                    let removed = st.queue.cancel(id);
                    debug_assert!(removed, "queued jobs are in the queue");
                    st.stats.cancellations += 1;
                    inner.cv.notify_all();
                    json_response(200, body)
                }
                JobState::Running => {
                    // The worker observes the flag at its next poll and
                    // checkpoints; the client polls for `cancelled`.
                    job.cancel_requested = true;
                    json_response(200, job.status_json())
                }
                _ => json_response(200, job.status_json()),
            }
        }
        _ => json_response(405, json_error("method not allowed for this job route")),
    }
}

/// `GET /v1/version`: build identity plus the state of the determinism
/// escape hatches — the first thing to check when two deployments
/// disagree about wall clock.
fn version_json() -> String {
    let no_fastfwd = std::env::var_os("MNPU_NO_FASTFWD").is_some_and(|v| v != "0");
    format!(
        "{{\"name\":\"mnpu-service\",\"version\":\"{}\",\"snapshot_version\":{},\
         \"fastfwd\":{},\"prefix_share\":{}}}",
        env!("CARGO_PKG_VERSION"),
        mnpu_snapshot::SNAPSHOT_VERSION,
        !no_fastfwd,
        mnpu_bench::prefix_share_enabled(),
    )
}

/// `GET /metrics`: the service counters, queue gauges, latency and
/// queue-depth histograms, and the process-wide simulator-internal
/// counters, in Prometheus text-exposition format (`version=0.0.4`,
/// `HELP`/`TYPE` for every family — [`prom::lint`] holds it to the spec).
fn metrics(inner: &Arc<Inner>) -> String {
    let st = inner.state.lock().unwrap();
    let s = &st.stats;
    let running = st.jobs.ids_in_state(JobState::Running).len();
    let workers = inner.cfg.workers.max(1);
    let uptime = inner.started.elapsed().as_secs_f64();
    let utilization = if uptime > 0.0 {
        (s.worker_busy_ms as f64 / 1000.0) / (uptime * workers as f64)
    } else {
        0.0
    };
    let sim = mnpu_trace::counters::snapshot();
    let mut latency = prom::ExpHistogram::latency_seconds();
    for &ms in s.latencies_ms() {
        latency.observe(ms / 1000.0);
    }
    let mut out = String::new();
    prom::gauge(
        &mut out,
        "service_queue_depth",
        "Jobs waiting for a worker.",
        st.queue.depth() as f64,
    );
    prom::gauge(
        &mut out,
        "service_queue_bound",
        "Admission queue capacity.",
        st.queue.bound() as f64,
    );
    prom::gauge(&mut out, "service_jobs_running", "Jobs executing right now.", running as f64);
    prom::gauge(
        &mut out,
        "service_jobs_in_system",
        "Jobs admitted but not yet terminal.",
        s.in_system() as f64,
    );
    prom::gauge(&mut out, "service_workers", "Worker threads in the pool.", workers as f64);
    prom::gauge(
        &mut out,
        "service_worker_utilization",
        "Fraction of total worker time spent executing jobs.",
        utilization,
    );
    prom::counter(&mut out, "service_submissions_total", "Submissions received.", s.submissions);
    prom::counter(
        &mut out,
        "service_rejects_total",
        "Submissions bounced by admission control.",
        s.rejects,
    );
    prom::counter(&mut out, "service_dispatches_total", "Jobs handed to a worker.", s.dispatches);
    prom::counter(
        &mut out,
        "service_completions_total",
        "Jobs finished with a result.",
        s.completions,
    );
    prom::counter(
        &mut out,
        "service_cancellations_total",
        "Jobs stopped by DELETE.",
        s.cancellations,
    );
    prom::counter(
        &mut out,
        "service_over_budget_total",
        "Jobs stopped at their wall-clock budget.",
        s.over_budget,
    );
    prom::counter(&mut out, "service_failures_total", "Jobs that died with an error.", s.failures);
    prom::counter(
        &mut out,
        "service_suspended_total",
        "Jobs checkpointed or re-queued by a drain.",
        s.suspended,
    );
    prom::counter(
        &mut out,
        "service_cache_hits_total",
        "Completions served from the result cache.",
        s.cache_hits,
    );
    prom::counter(
        &mut out,
        "service_worker_busy_ms_total",
        "Cumulative worker milliseconds spent executing jobs.",
        s.worker_busy_ms,
    );
    prom::counter(
        &mut out,
        "sim_run_cache_hits_total",
        "Bench-harness run-cache hits, process-wide.",
        sim.run_cache_hits,
    );
    prom::counter(
        &mut out,
        "sim_prefix_share_sims_total",
        "Simulations served from warm-start prefix groups, process-wide.",
        sim.prefix_share_sims,
    );
    prom::counter(
        &mut out,
        "sim_fastfwd_commits_total",
        "DRAM steady-state fast-forward commits, process-wide.",
        sim.fastfwd_commits,
    );
    prom::histogram(
        &mut out,
        "service_job_latency_seconds",
        "Terminal job latency, admission to terminal state.",
        &latency,
    );
    prom::histogram(
        &mut out,
        "service_dispatch_queue_depth",
        "Backlog left behind at each dispatch.",
        s.queue_depth_hist(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    fn wait_terminal(addr: SocketAddr, id: &str) -> String {
        loop {
            let (_, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
            let v = json::parse(&body).unwrap();
            let state = v.get("state").and_then(json::Value::as_str).unwrap().to_string();
            if !matches!(state.as_str(), "queued" | "running") {
                return state;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_run_report_lifecycle() {
        let svc = Service::start(ServiceConfig::default()).unwrap();
        let addr = svc.addr();
        let (status, body) = request(
            addr,
            "POST",
            "/v1/jobs",
            r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"]}"#,
        );
        assert_eq!(status, 202, "{body}");
        let id = json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(wait_terminal(addr, &id), "completed");
        let (status, report) = request(addr, "GET", &format!("/v1/jobs/{id}/report"), "");
        assert_eq!(status, 200);
        assert!(report.contains("total_cycles"));
        // A second identical submission is a cache hit with the same bytes.
        let (_, body2) = request(
            addr,
            "POST",
            "/v1/jobs",
            r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"]}"#,
        );
        let id2 = json::parse(&body2)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(wait_terminal(addr, &id2), "completed");
        let (_, report2) = request(addr, "GET", &format!("/v1/jobs/{id2}/report"), "");
        assert_eq!(report, report2);
        let (_, m) = request(addr, "GET", "/metrics", "");
        assert!(m.contains("service_cache_hits_total 1"), "{m}");
        prom::lint(&m).expect("metrics must be exposition-compliant");
        assert!(m.contains("# TYPE service_job_latency_seconds histogram"), "{m}");
        // The live endpoints exist once a job has been dispatched.
        let (status, progress) = request(addr, "GET", &format!("/v1/jobs/{id}/progress"), "");
        assert_eq!(status, 200, "{progress}");
        assert!(progress.contains("\"phase\":\"completed\""), "{progress}");
        let (status, flight) = request(addr, "GET", &format!("/v1/jobs/{id}/flight"), "");
        assert_eq!(status, 200);
        assert!(flight.contains("\"format\":\"mnpu-flight\""), "{flight}");
        let (status, trace) = request(addr, "GET", &format!("/v1/jobs/{id}/trace"), "");
        assert_eq!(status, 200);
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        let (status, ver) = request(addr, "GET", "/v1/version", "");
        assert_eq!(status, 200);
        assert!(ver.contains("\"snapshot_version\""), "{ver}");
        let drained = svc.shutdown();
        assert_eq!(drained.suspended_running + drained.suspended_queued, 0);
    }

    #[test]
    fn budget_zero_checkpoints_immediately_and_resumes() {
        let svc = Service::start(ServiceConfig::default()).unwrap();
        let addr = svc.addr();
        let body =
            r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"],"budget_ms":0}"#;
        let (status, resp) = request(addr, "POST", "/v1/jobs", body);
        assert_eq!(status, 202, "{resp}");
        let id = json::parse(&resp)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(wait_terminal(addr, &id), "over_budget");
        let (status, ckpt) = request(addr, "GET", &format!("/v1/jobs/{id}/checkpoint"), "");
        assert_eq!(status, 200);
        assert!(ckpt.contains("mnpu-job-checkpoint"));
        // Resume from the handed-back checkpoint; it must now complete.
        let resume_body = format!(
            r#"{{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"],"resume":{ckpt}}}"#
        );
        let (status, resp) = request(addr, "POST", "/v1/jobs", &resume_body);
        assert_eq!(status, 202, "{resp}");
        let rid = json::parse(&resp)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(wait_terminal(addr, &rid), "completed");
        svc.shutdown();
    }

    #[test]
    fn hold_fills_queue_and_drain_suspends_backlog() {
        let dir = std::env::temp_dir().join(format!("mnpu-drain-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            queue_depth: 2,
            checkpoint_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let svc = Service::start(cfg).unwrap();
        let addr = svc.addr();
        let (s, _) = request(addr, "POST", "/v1/hold", "");
        assert_eq!(s, 200);
        let body = r#"{"kind":"networks","cores":1,"sharing":"ideal","networks":["ncf"]}"#;
        let mut statuses = Vec::new();
        for _ in 0..4 {
            statuses.push(request(addr, "POST", "/v1/jobs", body).0);
        }
        assert_eq!(statuses, vec![202, 202, 429, 429]);
        let drained = svc.shutdown();
        assert_eq!(drained.suspended_queued, 2);
        assert_eq!(drained.suspended_running, 0);
        // One file per suspended job plus the manifest.
        assert_eq!(drained.files.len(), 3);
        assert!(dir.join("drain.json").exists());
        let manifest = std::fs::read_to_string(dir.join("drain.json")).unwrap();
        assert!(manifest.contains("mnpu-drain-manifest"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
