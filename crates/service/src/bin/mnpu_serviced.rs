//! `mnpu-serviced`: the always-on simulation daemon.
//!
//! ```text
//! mnpu_serviced [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!               [--body-limit BYTES] [--checkpoint-dir PATH]
//!               [--flight-dir PATH] [--flight-capacity N]
//! ```
//!
//! Prints `mnpu-serviced listening on <addr>` once the socket is bound
//! (scripts wait for that line), serves until SIGTERM/SIGINT or a
//! `POST /v1/drain`, then drains: running jobs checkpoint at their next
//! safe boundary, the backlog is suspended, and everything is persisted
//! under `--checkpoint-dir` before the process exits 0.

use std::io::Write;
use std::time::Duration;

use mnpu_service::{signal, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mnpu_serviced [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--body-limit BYTES] [--checkpoint-dir PATH] [--flight-dir PATH] \
         [--flight-capacity N]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServiceConfig {
    let mut cfg = ServiceConfig { addr: "127.0.0.1:8750".to_string(), ..ServiceConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| usage_missing(what));
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-depth" => {
                cfg.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth")
            }
            "--body-limit" => cfg.body_limit = parse_num(&value("--body-limit"), "--body-limit"),
            "--checkpoint-dir" => cfg.checkpoint_dir = Some(value("--checkpoint-dir").into()),
            "--flight-dir" => cfg.flight_dir = Some(value("--flight-dir").into()),
            "--flight-capacity" => {
                cfg.flight_capacity = parse_num(&value("--flight-capacity"), "--flight-capacity")
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if cfg.workers == 0 || cfg.queue_depth == 0 {
        eprintln!("mnpu-serviced: --workers and --queue-depth must be positive");
        std::process::exit(2);
    }
    cfg
}

fn usage_missing(what: &str) -> ! {
    eprintln!("mnpu-serviced: {what} needs a value");
    std::process::exit(2);
}

fn parse_num(s: &str, what: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("mnpu-serviced: {what} must be a number, got '{s}'");
        std::process::exit(2);
    })
}

fn main() {
    let cfg = parse_args();
    signal::install_termination_handler();
    let service = match Service::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mnpu-serviced: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("mnpu-serviced listening on {}", service.addr());
    let _ = std::io::stdout().flush();

    // Serve until something asks for a drain: a signal, or the drain
    // endpoint flipping the service's own flag.
    while !signal::termination_requested() && !service.draining() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let report = service.shutdown();
    println!(
        "mnpu-serviced drained: {} running checkpointed, {} queued suspended, {} files",
        report.suspended_running,
        report.suspended_queued,
        report.files.len()
    );
}
