//! The daemon's job table: every submission the service has accepted,
//! from admission to terminal state, as plain data.
//!
//! Concurrency lives in `server.rs`; this module is single-threaded and
//! value-semantic so the state machine can be tested without a socket in
//! sight. A [`JobRecord`] keeps the original submission body (the drain
//! manifest and the result cache both key on it), the
//! [`JobTimeline`] of lifecycle events, and —
//! once terminal — exactly one of a result, a resumable checkpoint, or an
//! error message.

use mnpu_probe::{JobPhase, JobTimeline};
use mnpu_trace::TraceHandle;
use std::collections::HashMap;

use crate::json;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; the result is available.
    Completed,
    /// Stopped by a cancellation request (checkpointed if it was running).
    Cancelled,
    /// Stopped at its wall-clock budget, checkpointed.
    OverBudget,
    /// Died with an execution error.
    Failed,
    /// Checkpointed (or returned to the backlog) by a daemon drain.
    Suspended,
}

impl JobState {
    /// Stable lowercase name used in status JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::OverBudget => "over_budget",
            JobState::Failed => "failed",
            JobState::Suspended => "suspended",
        }
    }

    /// `true` once the job will never run again under this daemon (it may
    /// still be resumable from its checkpoint via a new submission).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// The terminal [`JobPhase`] this state records on the timeline.
    ///
    /// # Panics
    ///
    /// Panics on the non-terminal states, which map to
    /// [`JobPhase::Submitted`] / [`JobPhase::Dispatched`] at transition
    /// time instead.
    pub fn terminal_phase(self) -> JobPhase {
        match self {
            JobState::Completed => JobPhase::Completed,
            JobState::Cancelled => JobPhase::Cancelled,
            JobState::OverBudget => JobPhase::OverBudget,
            JobState::Failed => JobPhase::Failed,
            JobState::Suspended => JobPhase::Suspended,
            JobState::Queued | JobState::Running => {
                panic!("{} is not a terminal state", self.as_str())
            }
        }
    }
}

/// One accepted submission and everything the service knows about it.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The numeric id (rendered as `job-<id>` on the wire).
    pub id: u64,
    /// The submission body, verbatim.
    pub body: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Set by `DELETE`; a running job observes it at its next poll.
    pub cancel_requested: bool,
    /// `true` when the submission carried a `resume` checkpoint.
    pub resumed: bool,
    /// Wall-clock budget from the submission, if any.
    pub budget_ms: Option<u64>,
    /// `true` when the result came from the daemon's result cache.
    pub from_cache: bool,
    /// Lifecycle events in service time.
    pub timeline: JobTimeline,
    /// The rendered result JSON (terminal `Completed` only).
    pub result: Option<String>,
    /// The resumable checkpoint JSON (stopped-but-resumable terminals).
    pub checkpoint: Option<String>,
    /// The failure message (terminal `Failed` only).
    pub error: Option<String>,
    /// Live telemetry (flight ring + progress cell), attached at dispatch;
    /// `None` while the job has only ever been queued.
    pub telemetry: Option<TraceHandle>,
    /// Index of the worker that executed (or is executing) the job.
    pub worker: Option<usize>,
}

impl JobRecord {
    /// The wire id, `job-<id>`.
    pub fn wire_id(&self) -> String {
        format!("job-{}", self.id)
    }

    /// Milliseconds between admission and the latest recorded event —
    /// the job's service latency once it is terminal.
    pub fn elapsed_ms(&self) -> u64 {
        let events = self.timeline.events();
        match (events.first(), events.last()) {
            (Some(first), Some(last)) => last.at_ms - first.at_ms,
            _ => 0,
        }
    }

    /// The status document returned by `GET /v1/jobs/<id>`.
    pub fn status_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"state\":\"{}\",\"cancel_requested\":{},\
             \"resumed\":{},\"from_cache\":{},\"timeline\":{}",
            self.wire_id(),
            self.state.as_str(),
            self.cancel_requested,
            self.resumed,
            self.from_cache,
            self.timeline.to_json(),
        );
        if let Some(b) = self.budget_ms {
            out.push_str(&format!(",\"budget_ms\":{b}"));
        }
        // The result and checkpoint are JSON already; the error is text.
        out.push_str(&format!(",\"has_result\":{}", self.result.is_some()));
        out.push_str(&format!(",\"has_checkpoint\":{}", self.checkpoint.is_some()));
        if let Some(e) = &self.error {
            out.push_str(&format!(",\"error\":\"{}\"", json::escape(e)));
        }
        out.push('}');
        out
    }
}

/// All jobs the daemon has admitted, by id.
#[derive(Debug, Default)]
pub struct JobTable {
    next_id: u64,
    jobs: HashMap<u64, JobRecord>,
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Admit a new job in `Queued` state, recording `Submitted` at
    /// `now_ms`. Returns the assigned id.
    pub fn admit(
        &mut self,
        body: String,
        budget_ms: Option<u64>,
        resumed: bool,
        now_ms: u64,
    ) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        let mut timeline = JobTimeline::new();
        timeline.record(now_ms, JobPhase::Submitted);
        self.jobs.insert(
            id,
            JobRecord {
                id,
                body,
                state: JobState::Queued,
                cancel_requested: false,
                resumed,
                budget_ms,
                from_cache: false,
                timeline,
                result: None,
                checkpoint: None,
                error: None,
                telemetry: None,
                worker: None,
            },
        );
        id
    }

    /// Look up a job.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// Look up a job mutably.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut JobRecord> {
        self.jobs.get_mut(&id)
    }

    /// Parse a `job-<id>` wire id.
    pub fn parse_wire_id(wire: &str) -> Option<u64> {
        wire.strip_prefix("job-")?.parse().ok()
    }

    /// All ids currently in the given state, ascending.
    pub fn ids_in_state(&self, state: JobState) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.jobs.values().filter(|j| j.state == state).map(|j| j.id).collect();
        ids.sort_unstable();
        ids
    }

    /// `true` while any job is `Running` (drain must wait for these).
    pub fn any_running(&self) -> bool {
        self.jobs.values().any(|j| j.state == JobState::Running)
    }

    /// Number of admitted jobs, ever.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_assigns_sequential_ids() {
        let mut t = JobTable::new();
        let a = t.admit("{}".into(), None, false, 0);
        let b = t.admit("{}".into(), Some(5), true, 1);
        assert_eq!((a, b), (1, 2));
        assert_eq!(t.get(a).unwrap().state, JobState::Queued);
        assert_eq!(t.get(b).unwrap().budget_ms, Some(5));
        assert!(t.get(b).unwrap().resumed);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn wire_ids_round_trip() {
        let mut t = JobTable::new();
        let id = t.admit("{}".into(), None, false, 0);
        let wire = t.get(id).unwrap().wire_id();
        assert_eq!(wire, "job-1");
        assert_eq!(JobTable::parse_wire_id(&wire), Some(id));
        assert_eq!(JobTable::parse_wire_id("job-x"), None);
        assert_eq!(JobTable::parse_wire_id("1"), None);
    }

    #[test]
    fn status_json_reflects_the_record() {
        let mut t = JobTable::new();
        let id = t.admit("{}".into(), Some(7), false, 3);
        let job = t.get_mut(id).unwrap();
        job.state = JobState::Failed;
        job.error = Some("boom \"quoted\"".into());
        job.timeline.record(9, JobPhase::Failed);
        let s = job.status_json();
        assert!(s.contains("\"id\":\"job-1\""));
        assert!(s.contains("\"state\":\"failed\""));
        assert!(s.contains("\"budget_ms\":7"));
        assert!(s.contains("\"error\":\"boom \\\"quoted\\\"\""));
        assert!(s.contains("\"at_ms\":3"));
        assert_eq!(job.elapsed_ms(), 6);
        // The status document is itself valid JSON.
        assert!(crate::json::parse(&s).is_ok());
    }

    #[test]
    fn terminal_bookkeeping() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Suspended.is_terminal());
        assert_eq!(JobState::OverBudget.terminal_phase(), JobPhase::OverBudget);
        let mut t = JobTable::new();
        let a = t.admit("{}".into(), None, false, 0);
        t.get_mut(a).unwrap().state = JobState::Running;
        assert!(t.any_running());
        assert_eq!(t.ids_in_state(JobState::Running), vec![a]);
        t.get_mut(a).unwrap().state = JobState::Completed;
        assert!(!t.any_running());
    }

    #[test]
    #[should_panic(expected = "not a terminal state")]
    fn terminal_phase_rejects_live_states() {
        let _ = JobState::Running.terminal_phase();
    }
}
