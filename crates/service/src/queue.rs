//! Bounded FIFO admission control, as a pure data structure.
//!
//! The daemon's concurrency lives in `server.rs`; admission policy lives
//! here, single-threaded and deterministic, so property tests can drive
//! arbitrary submit/cancel/dispatch interleavings against it directly:
//! no job is lost or double-dispatched, dispatch order is FIFO among the
//! jobs that were actually admitted, and the depth always equals
//! admissions minus dispatches minus cancellations.

use std::collections::VecDeque;

/// What happened to a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; will be dispatched in FIFO order.
    Accepted,
    /// Bounced: the queue was at its bound.
    Rejected,
}

/// A bounded FIFO of queued job ids.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    bound: usize,
    queue: VecDeque<u64>,
}

impl AdmissionQueue {
    /// An empty queue admitting at most `bound` undispatched jobs.
    ///
    /// # Panics
    ///
    /// Panics on a zero bound (a queue that can never admit is a
    /// configuration bug).
    pub fn new(bound: usize) -> Self {
        assert!(bound > 0, "admission bound must be positive");
        AdmissionQueue { bound, queue: VecDeque::new() }
    }

    /// The configured bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Offer a job. Admission is all-or-nothing at the bound: the queue
    /// never holds more than `bound` jobs.
    pub fn submit(&mut self, id: u64) -> Admission {
        debug_assert!(!self.queue.contains(&id), "job ids are unique");
        if self.queue.len() >= self.bound {
            Admission::Rejected
        } else {
            self.queue.push_back(id);
            Admission::Accepted
        }
    }

    /// Take the oldest queued job for dispatch, if any.
    pub fn pop(&mut self) -> Option<u64> {
        self.queue.pop_front()
    }

    /// Remove a queued job before dispatch (cancellation). `false` when
    /// the job is not queued (already dispatched, rejected, or unknown) —
    /// the caller decides what that means.
    pub fn cancel(&mut self, id: u64) -> bool {
        match self.queue.iter().position(|&q| q == id) {
            Some(pos) => {
                self.queue.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Drain every queued job, oldest first (daemon shutdown).
    pub fn drain(&mut self) -> Vec<u64> {
        self.queue.drain(..).collect()
    }

    /// The queued ids, oldest first (for status reporting).
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.queue.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_with_backpressure() {
        let mut q = AdmissionQueue::new(2);
        assert_eq!(q.submit(1), Admission::Accepted);
        assert_eq!(q.submit(2), Admission::Accepted);
        assert_eq!(q.submit(3), Admission::Rejected);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.submit(3), Admission::Accepted);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let mut q = AdmissionQueue::new(4);
        q.submit(1);
        q.submit(2);
        assert!(q.cancel(1));
        assert!(!q.cancel(1), "already cancelled");
        assert!(!q.cancel(99), "never submitted");
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn drain_empties_in_order() {
        let mut q = AdmissionQueue::new(3);
        q.submit(5);
        q.submit(6);
        assert_eq!(q.drain(), vec![5, 6]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let _ = AdmissionQueue::new(0);
    }
}
