//! `mnpu-service`: the always-on simulation service behind
//! `mnpu-serviced`.
//!
//! The rest of the workspace runs simulations as batch processes: build a
//! request, run it, exit. This crate keeps a simulator *resident* — a
//! std-only daemon (threads and TCP, no async runtime) that accepts
//! [`RunRequest`](mnpusim::RunRequest)-shaped jobs as JSON over HTTP/1.1
//! and executes them on a bounded worker pool:
//!
//! * `POST /v1/jobs` — submit; `202` with a job id, or `429` +
//!   `Retry-After` when the admission queue is at its bound;
//! * `GET /v1/jobs/<id>` — status and lifecycle timeline;
//! * `GET /v1/jobs/<id>/report` — the result, byte-identical to what an
//!   in-process facade run of the same body would produce;
//! * `GET /v1/jobs/<id>/checkpoint` — the resumable checkpoint of a
//!   cancelled / over-budget / drained job (resubmit it under `resume`);
//! * `DELETE /v1/jobs/<id>` — cancel (running jobs checkpoint first);
//! * `GET /v1/jobs/<id>/progress` — live progress: cycles simulated,
//!   lifecycle phase, stall attribution, sim-cycles/sec;
//! * `GET /v1/jobs/<id>/flight` — the job's flight-recorder ring (the
//!   same black box dumped to `flight-<id>.json` on abnormal stops);
//! * `GET /v1/jobs/<id>/trace` — the ring as a Chrome-trace document
//!   (load in `chrome://tracing` / Perfetto);
//! * `GET /v1/version` — build identity, snapshot format version, and
//!   the state of the determinism escape hatches;
//! * `GET /metrics` — Prometheus text exposition: counters, queue
//!   gauges, latency and queue-depth histograms, simulator internals.
//!
//! The load-bearing invariant is inherited from the snapshot subsystem:
//! **stopping never changes the answer**. Cancellation, wall-clock budgets
//! and the SIGTERM drain all stop jobs at bit-exact checkpoint boundaries
//! ([`Runner::run_controlled`](mnpusim::Runner::run_controlled)), so no
//! accepted work is ever silently lost — it either finishes, or comes back
//! as a checkpoint that finishes later with identical bytes.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod jobs;
pub mod json;
pub mod queue;
pub mod server;
pub mod signal;
pub mod wire;

pub use jobs::{JobRecord, JobState, JobTable};
pub use queue::{Admission, AdmissionQueue};
pub use server::{DrainReport, Service, ServiceConfig};
pub use wire::{parse_job, ExecPlan, WireError, WireJob};
