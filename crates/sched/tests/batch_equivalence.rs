//! The serve-mode keystone invariant: a scenario where every job arrives
//! at cycle 0 pinned to its own core must produce an engine report
//! byte-identical to batch mode. The comparison target is the *existing*
//! quad-core golden fixture from `mnpu-engine` — the same bytes that pin
//! batch behavior pin serve mode, so the two modes can never drift apart
//! silently.

use mnpu_config::parse_scenario;
use mnpu_engine::{Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};
use mnpu_sched::serve;

/// The golden scenario: the fixture's four benchmarks (ncf, gpt2,
/// yolo-tiny, dlrm) on the +DWT bench chip with bandwidth tracing on.
fn golden_scenario() -> mnpu_sched::ScenarioSpec {
    let mut spec = parse_scenario(
        "golden",
        "cores = 4\nsharing = +DWT\npolicy = pinned\n\
         job = ncf on 0\njob = gpt2 on 1\njob = yt on 2\njob = dlrm on 3\n",
    )
    .unwrap();
    spec.system.trace_window = Some(4096);
    spec
}

fn golden_fixture() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../engine/tests/fixtures/quad_golden.json");
    std::fs::read_to_string(path).expect("engine golden fixture present")
}

#[test]
fn all_jobs_at_cycle_zero_is_byte_identical_to_batch_mode() {
    let report = serve(&golden_scenario());
    let json = report.run.to_json();
    let expected = golden_fixture();
    assert_eq!(json.len(), expected.len(), "serialized report size diverged from batch");
    assert_eq!(json, expected, "serve(all-at-0, pinned) must be byte-identical to batch");
    // And the scheduling layer saw what batch mode implies: no queueing.
    for j in &report.jobs {
        assert_eq!(j.arrival, 0);
        assert_eq!(j.queueing(), 0);
    }
}

#[test]
fn scenario_chip_equals_the_batch_preset() {
    // The scenario goes through `mnpu-config`'s builder; the fixture was
    // produced from the preset directly. Equality here localizes any
    // future divergence to the config layer rather than the engine.
    let spec = golden_scenario();
    let mut preset = SystemConfig::bench(4, mnpu_engine::SharingLevel::PlusDwt);
    preset.trace_window = Some(4096);
    assert_eq!(spec.system, preset);
}

#[test]
fn first_free_matches_pinned_for_the_identity_layout() {
    // With simultaneous arrivals and a free chip, first-free assigns jobs
    // to cores in declaration order — the same layout the pins force.
    let mut spec = parse_scenario(
        "ff",
        "cores = 4\nsharing = +DWT\njob = ncf\njob = gpt2\njob = yt\njob = dlrm\n",
    )
    .unwrap();
    spec.system.trace_window = Some(4096);
    assert_eq!(serve(&spec).run.to_json(), golden_fixture());
}

#[test]
fn staggered_arrivals_change_the_report() {
    // Sanity for the invariant's contrapositive: once arrivals are
    // staggered, serve mode genuinely schedules (cores start late) and the
    // report must differ from batch.
    let mut spec = parse_scenario(
        "stagger",
        "cores = 4\nsharing = +DWT\npattern = fixed:100000\npolicy = pinned\n\
         job = ncf on 0\njob = gpt2 on 1\njob = yt on 2\njob = dlrm on 3\n",
    )
    .unwrap();
    spec.system.trace_window = Some(4096);
    let staggered = serve(&spec);
    assert_ne!(staggered.run.to_json(), golden_fixture());
    assert_eq!(staggered.jobs[3].arrival, 300_000);
    assert_eq!(staggered.jobs[3].queueing(), 0, "own core is free: no queueing");
}

#[test]
fn batch_equivalence_also_holds_against_a_fresh_batch_run() {
    // Independent of the checked-in fixture: serve == batch for a config
    // the fixture does not cover (2 cores, Static sharing).
    let cfg = SystemConfig::bench(2, mnpu_engine::SharingLevel::Static);
    let nets = [zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench)];
    let batch = Simulation::execute_networks(&cfg, &nets).to_json();

    let spec = parse_scenario(
        "fresh",
        "cores = 2\nsharing = Static\npolicy = pinned\njob = ncf on 0\njob = dlrm on 1\n",
    )
    .unwrap();
    assert_eq!(serve(&spec).run.to_json(), batch);
}
