//! Serve-mode checkpoint/restore fencing: a session snapshotted at an
//! arbitrary decision boundary and resumed — in-process or through the
//! binary wire format — must finish byte-identical to the uninterrupted
//! run, and a checkpoint must refuse to load against the wrong scenario.

use mnpu_config::parse_scenario;
use mnpu_engine::{ProbeMode, SnapError, StatsProbe};
use mnpu_sched::{serve, ServeSession, ServeSnapshot};

/// Run `text`, snapshotting after `k` decision rounds, resuming through a
/// `to_bytes`/`from_bytes` round trip, and comparing against [`serve`].
fn assert_resume_exact(text: &str, k: usize) {
    let spec = parse_scenario("t", text).unwrap();
    let native = serve(&spec).to_json();

    let mut session = ServeSession::new(&spec);
    for _ in 0..k {
        if !session.step() {
            break;
        }
    }
    let wire = session.snapshot().to_bytes();
    drop(session);

    let snap = ServeSnapshot::from_bytes(&wire).expect("wire round-trip");
    let mut resumed = ServeSession::restore(&spec, snap).expect("restore against own scenario");
    resumed.run();
    assert_eq!(resumed.into_report().to_json(), native, "resume after step {k} diverged");
}

#[test]
fn resume_is_byte_exact_at_every_phase() {
    // Queueing, mid-service, and post-drain boundaries on a contended
    // single core; k far past the end exercises snapshot-at-done.
    let text = "cores = 1\njob = ncf\njob = ncf\njob = ncf\n";
    for k in [0, 1, 2, 3, 50] {
        assert_resume_exact(text, k);
    }
}

#[test]
fn resume_preserves_the_round_robin_cursor() {
    // Bursty arrivals under round-robin: the policy cursor is live state;
    // losing it would re-dispatch onto the wrong cores after restore.
    let text = "cores = 2\nseed = 5\npattern = bursty:2:3000\npolicy = round_robin\n\
                job = ncf\njob = dlrm\njob = ncf\njob = dlrm\n";
    for k in [1, 3, 5] {
        assert_resume_exact(text, k);
    }
}

#[test]
fn resume_with_stats_probe_carries_job_spans() {
    let mut spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").unwrap();
    spec.system.probe = ProbeMode::Stats;
    let native = {
        let mut s = ServeSession::with_probe(&spec, StatsProbe::default());
        s.run();
        s.into_report()
    };

    let mut session = ServeSession::with_probe(&spec, StatsProbe::default());
    session.step();
    session.step();
    let snap = session.snapshot();
    let mut resumed = ServeSession::restore_with_probe(&spec, StatsProbe::default(), snap).unwrap();
    resumed.run();
    let report = resumed.into_report();
    assert_eq!(report.to_json(), native.to_json());
    let stats = report.run.stats.as_ref().expect("stats probe requested");
    assert_eq!(stats.jobs.len(), 2, "both job spans survive the checkpoint");
}

#[test]
fn wrong_scenario_is_rejected() {
    let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").unwrap();
    let mut session = ServeSession::new(&spec);
    session.step();
    let snap = session.snapshot();

    let other = parse_scenario("t", "cores = 1\njob = ncf\njob = dlrm\n").unwrap();
    assert!(matches!(ServeSession::restore(&other, snap), Err(SnapError::ConfigMismatch { .. })));
}

#[test]
fn foreign_version_is_rejected_on_the_wire() {
    let spec = parse_scenario("t", "cores = 1\njob = ncf\n").unwrap();
    let session = ServeSession::new(&spec);
    let mut wire = session.snapshot().to_bytes();
    // Byte 0 is the section tag; bytes 1..5 are the little-endian format
    // version. Bump it and the decoder must refuse.
    wire[1] ^= 0xFF;
    assert!(matches!(ServeSnapshot::from_bytes(&wire), Err(SnapError::VersionMismatch { .. })));
}
