//! The serve loop: admit arrivals, dispatch via the policy, step the
//! engine between scheduler decision points — as a resumable
//! [`ServeSession`] with checkpoint/restore, and the one-shot [`serve`]
//! convenience on top.

use crate::arrival::arrivals;
use crate::policy::Policy;
use crate::report::{JobRecord, ServeReport};
use mnpu_config::ScenarioSpec;
use mnpu_engine::{Advance, Event, NullProbe, Probe, ProbeMode, Simulation, StatsProbe};
use mnpu_model::zoo;
use mnpu_snapshot::{fingerprint, Reader, SimSnapshot, SnapError, Writer, SNAPSHOT_VERSION};
use mnpu_systolic::WorkloadTrace;
use std::collections::{HashMap, VecDeque};

/// Payload discriminator for the scheduler section of a [`ServeSnapshot`].
const SCHED_TAG: u8 = 0xF0;

/// Stable fingerprint of a scenario, embedded in every [`ServeSnapshot`]
/// so a checkpoint can only be restored against the scenario that produced
/// it (same chip, same jobs, same arrival pattern, same policy).
pub fn scenario_fingerprint(spec: &ScenarioSpec) -> u64 {
    // `ScenarioSpec` derives `Debug` structurally, so the render covers
    // every field that affects scheduling — the same idiom as
    // [`mnpu_engine::config_fingerprint`].
    fingerprint(&format!("{spec:?}"))
}

/// Run `spec` to completion and return the serve report.
///
/// The probe is chosen by the scenario's chip configuration exactly as in
/// batch mode ([`ProbeMode::None`] = zero-cost, [`ProbeMode::Stats`] =
/// counters plus job-lifetime spans in [`mnpu_engine::RunReport::stats`]).
///
/// Scheduling is deterministic: arrivals are a pure function of the
/// scenario ([`arrivals`]), ties are broken by declaration order, and the
/// engine itself is the validated deterministic batch engine stepped
/// through [`Simulation::advance`]. Running the same scenario twice yields
/// byte-identical reports.
///
/// # Panics
///
/// Panics if the chip configuration is invalid or a simulation watchdog
/// trips — never on any well-formed scenario.
pub fn serve(spec: &ScenarioSpec) -> ServeReport {
    match spec.system.probe {
        ProbeMode::None => {
            let mut s = ServeSession::with_probe(spec, NullProbe);
            s.run();
            s.into_report()
        }
        ProbeMode::Stats => {
            let mut s = ServeSession::with_probe(spec, StatsProbe::default());
            s.run();
            s.into_report()
        }
        ProbeMode::Flight => {
            let mut s =
                ServeSession::with_probe(spec, mnpu_engine::FlightProbe::<NullProbe>::default());
            s.run();
            s.into_report()
        }
    }
}

/// A serve checkpoint: the engine's [`SimSnapshot`] plus the scheduler's
/// own state (queue, bindings, per-job timestamps, policy cursor), bound
/// to the scenario by fingerprint. Produced by [`ServeSession::snapshot`],
/// consumed by [`ServeSession::restore`]; survives process restarts via
/// [`ServeSnapshot::to_bytes`] / [`ServeSnapshot::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Fingerprint of the scenario this checkpoint belongs to.
    pub scenario_fp: u64,
    /// The engine state at the captured decision point.
    pub sim: SimSnapshot,
    /// The scheduler state (opaque; decoded by [`ServeSession::restore`]).
    pub sched: Vec<u8>,
}

impl ServeSnapshot {
    /// Serialize to the stable binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.tag(SCHED_TAG);
        w.u32(SNAPSHOT_VERSION);
        w.u64(self.scenario_fp);
        let sim = self.sim.to_bytes();
        w.seq(&sim, |w, &b| w.u8(b));
        w.seq(&self.sched, |w, &b| w.u8(b));
        w.finish()
    }

    /// Decode a checkpoint produced by [`ServeSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`SnapError`]: truncation, a foreign tag, or a version from a
    /// different build of the format ([`SnapError::VersionMismatch`] —
    /// checked here *and* again on the embedded engine snapshot).
    pub fn from_bytes(bytes: &[u8]) -> Result<ServeSnapshot, SnapError> {
        let mut r = Reader::new(bytes);
        r.tag(SCHED_TAG)?;
        let found = r.u32()?;
        if found != SNAPSHOT_VERSION {
            return Err(SnapError::VersionMismatch { found, expected: SNAPSHOT_VERSION });
        }
        let scenario_fp = r.u64()?;
        let sim_bytes = r.seq(|r| r.u8())?;
        let sim = SimSnapshot::from_bytes(&sim_bytes)?;
        let sched = r.seq(|r| r.u8())?;
        r.done()?;
        Ok(ServeSnapshot { scenario_fp, sim, sched })
    }
}

/// A resumable serve run: the state of [`serve`]'s loop reified so it can
/// be stepped one scheduler decision at a time, checkpointed between
/// steps, and restored — in the same process or a new one — to finish
/// byte-identically.
///
/// ```
/// use mnpu_config::parse_scenario;
/// use mnpu_sched::ServeSession;
///
/// let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").unwrap();
/// let mut session = ServeSession::new(&spec);
/// session.step(); // first decision round
/// let snap = session.snapshot();
/// // ... process dies; later, possibly elsewhere ...
/// let mut resumed = ServeSession::restore(&spec, snap).unwrap();
/// resumed.run();
/// session.run();
/// assert_eq!(session.into_report().to_json(), resumed.into_report().to_json());
/// ```
pub struct ServeSession<'s, P: Probe = NullProbe> {
    spec: &'s ScenarioSpec,
    sim: Simulation<P>,
    /// Arrival cycle per job (declaration order) — pure from the spec.
    arr: Vec<u64>,
    /// Job indices by admission order (arrival cycle, declaration tiebreak).
    order: Vec<usize>,
    policy: Policy,
    queue: VecDeque<usize>,
    core_job: Vec<Option<usize>>,
    running: Vec<Option<String>>,
    /// Network currently *attached* to each core. Unlike `running`, this
    /// survives job completion (a finished core stays bound until its next
    /// attach), which is exactly what restore needs: it rebuilds the
    /// engine's trace bindings before handing the payload to
    /// [`Simulation::restore`], whose per-core trace fingerprints then
    /// verify the reconstruction.
    bound: Vec<Option<String>>,
    dispatch_at: Vec<u64>,
    complete_at: Vec<u64>,
    job_core: Vec<usize>,
    /// Traces memoized per (network, core): presets are homogeneous, but a
    /// heterogeneous chip compiles the network against the arch of the
    /// core it actually lands on.
    traces: HashMap<(String, usize), WorkloadTrace>,
    next_arr: usize,
    done: usize,
}

impl<'s> ServeSession<'s, NullProbe> {
    /// Start a session with the zero-cost probe (see
    /// [`ServeSession::with_probe`] for the general form).
    pub fn new(spec: &'s ScenarioSpec) -> Self {
        ServeSession::with_probe(spec, NullProbe)
    }

    /// Rebuild a session from a checkpoint, with the zero-cost probe.
    ///
    /// # Errors
    ///
    /// See [`ServeSession::restore_with_probe`].
    pub fn restore(spec: &'s ScenarioSpec, snap: ServeSnapshot) -> Result<Self, SnapError> {
        ServeSession::restore_with_probe(spec, NullProbe, snap)
    }
}

impl<'s, P: Probe> ServeSession<'s, P> {
    /// Start a fresh session for `spec`: idle chip, clock at 0, nothing
    /// admitted yet.
    pub fn with_probe(spec: &'s ScenarioSpec, probe: P) -> Self {
        let n = spec.jobs.len();
        let arr = arrivals(spec);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (arr[i], i));
        ServeSession {
            spec,
            sim: Simulation::with_probe_idle(&spec.system, probe),
            arr,
            order,
            policy: Policy::new(spec),
            queue: VecDeque::new(),
            core_job: vec![None; spec.system.cores],
            running: vec![None; spec.system.cores],
            bound: vec![None; spec.system.cores],
            dispatch_at: vec![0; n],
            complete_at: vec![0; n],
            job_core: vec![0; n],
            traces: HashMap::new(),
            next_arr: 0,
            done: 0,
        }
    }

    /// Whether every job has completed.
    pub fn is_done(&self) -> bool {
        self.done == self.spec.jobs.len()
    }

    /// The current simulated cycle.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    fn trace_for(
        traces: &mut HashMap<(String, usize), WorkloadTrace>,
        spec: &ScenarioSpec,
        name: &str,
        core: usize,
    ) -> WorkloadTrace {
        traces
            .entry((name.to_string(), core))
            .or_insert_with(|| {
                let net = zoo::by_name(name, spec.scale)
                    .expect("scenario parser validated workload names");
                WorkloadTrace::generate(&net, &spec.system.arch[core])
            })
            .clone()
    }

    /// Run one scheduler decision round: admit due arrivals, dispatch
    /// until the policy rests, then advance the engine to the next
    /// decision point. Returns `false` once every job has completed (the
    /// session is then ready for [`ServeSession::into_report`]).
    ///
    /// Between any two `step` calls the session is at a consistent
    /// checkpoint boundary for [`ServeSession::snapshot`].
    pub fn step(&mut self) -> bool {
        if self.is_done() {
            return false;
        }
        let n = self.spec.jobs.len();
        // Admit everything that has arrived by now.
        while self.next_arr < n && self.arr[self.order[self.next_arr]] <= self.sim.now() {
            let j = self.order[self.next_arr];
            self.next_arr += 1;
            self.queue.push_back(j);
            self.sim
                .record_event(Event::JobArrive { job: j as u64, queue_depth: self.queue.len() });
        }
        // Dispatch until the policy has nothing to place.
        loop {
            let free: Vec<usize> =
                (0..self.spec.system.cores).filter(|&c| self.core_job[c].is_none()).collect();
            let Some((pos, core)) =
                self.policy.pick(&self.queue, &self.spec.jobs, &free, &self.running)
            else {
                break;
            };
            let j = self.queue.remove(pos).expect("policy returned a valid queue position");
            let name = self.spec.jobs[j].network.clone();
            let trace = Self::trace_for(&mut self.traces, self.spec, &name, core);
            let now = self.sim.now();
            self.sim.attach(core, &trace, now);
            self.dispatch_at[j] = now;
            self.job_core[j] = core;
            self.core_job[core] = Some(j);
            self.running[core] = Some(name.clone());
            self.bound[core] = Some(name);
            self.sim.record_event(Event::JobDispatch {
                job: j as u64,
                core,
                queue_depth: self.queue.len(),
            });
        }
        // Step the engine to the next scheduler decision point.
        let stop = if self.next_arr < n { self.arr[self.order[self.next_arr]] } else { u64::MAX };
        match self.sim.advance(stop) {
            Advance::CoreFinished { core, at } => {
                let j = self.core_job[core].take().expect("finished core had a job bound");
                self.running[core] = None;
                self.complete_at[j] = at;
                self.done += 1;
                self.sim.record_event(Event::JobComplete { job: j as u64, core });
                // The finished core stays bound until its next attach: a
                // finished core already costs nothing in the event loop,
                // the final report then describes the core's last job, and
                // — decisively — an eager detach would flush the *shared*
                // TLB mid-run and break byte-identity with batch mode.
            }
            // Parked at the next arrival, or drained with arrivals still
            // pending: loop back to admission.
            Advance::Parked => {}
            Advance::Drained => {
                if self.queue.is_empty() && self.next_arr < n {
                    self.sim.skip_to(self.arr[self.order[self.next_arr]]);
                }
                // A non-empty queue with every core drained means the next
                // policy pass must dispatch (all cores are free).
            }
        }
        !self.is_done()
    }

    /// Step until every job has completed.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Capture the full serve state at the current decision boundary.
    pub fn snapshot(&self) -> ServeSnapshot {
        let mut w = Writer::new();
        w.tag(SCHED_TAG);
        w.usize(self.next_arr);
        w.usize(self.done);
        let queue: Vec<usize> = self.queue.iter().copied().collect();
        w.seq(&queue, |w, &j| w.usize(j));
        w.seq(&self.core_job, |w, v| w.opt(v, |w, &j| w.usize(j)));
        w.seq(&self.bound, |w, v| w.opt(v, |w, s| w.str(s)));
        w.seq(&self.dispatch_at, |w, &v| w.u64(v));
        w.seq(&self.complete_at, |w, &v| w.u64(v));
        w.seq(&self.job_core, |w, &v| w.usize(v));
        self.policy.save_state(&mut w);
        ServeSnapshot {
            scenario_fp: scenario_fingerprint(self.spec),
            sim: self.sim.snapshot(),
            sched: w.finish(),
        }
    }

    /// Rebuild a session from a checkpoint taken by
    /// [`ServeSession::snapshot`] against the *same* scenario: build the
    /// chip idle, re-attach the traces that were bound at capture time,
    /// then restore the engine payload on top (whose per-core trace
    /// fingerprints verify the re-attachment).
    ///
    /// # Errors
    ///
    /// [`SnapError::ConfigMismatch`] when `spec` is not the scenario the
    /// checkpoint was captured from; otherwise any decode error from the
    /// scheduler payload or the embedded engine snapshot. On error the
    /// checkpoint is unusable with this scenario — nothing was partially
    /// applied to any live simulation.
    pub fn restore_with_probe(
        spec: &'s ScenarioSpec,
        probe: P,
        snap: ServeSnapshot,
    ) -> Result<Self, SnapError> {
        let expected = scenario_fingerprint(spec);
        if snap.scenario_fp != expected {
            return Err(SnapError::ConfigMismatch { found: snap.scenario_fp, expected });
        }
        let mut s = ServeSession::with_probe(spec, probe);
        let n = spec.jobs.len();
        let cores = spec.system.cores;

        let mut r = Reader::new(&snap.sched);
        r.tag(SCHED_TAG)?;
        s.next_arr = r.usize()?;
        s.done = r.usize()?;
        if s.next_arr > n || s.done > n {
            return Err(SnapError::BadValue("job progress exceeds the job count"));
        }
        s.queue = r.seq(|r| r.usize())?.into();
        if s.queue.iter().any(|&j| j >= n) {
            return Err(SnapError::BadValue("queued job out of range"));
        }
        let core_job = r.seq(|r| r.opt(|r| r.usize()))?;
        let bound = r.seq(|r| r.opt(|r| r.str()))?;
        if core_job.len() != cores || bound.len() != cores {
            return Err(SnapError::BadValue("core binding count mismatch"));
        }
        if core_job.iter().flatten().any(|&j| j >= n) {
            return Err(SnapError::BadValue("bound job out of range"));
        }
        s.core_job = core_job;
        s.dispatch_at = r.seq(|r| r.u64())?;
        s.complete_at = r.seq(|r| r.u64())?;
        let job_core = r.seq(|r| r.usize())?;
        if s.dispatch_at.len() != n || s.complete_at.len() != n || job_core.len() != n {
            return Err(SnapError::BadValue("per-job record count mismatch"));
        }
        if job_core.iter().any(|&c| c >= cores) {
            return Err(SnapError::BadValue("job core out of range"));
        }
        s.job_core = job_core;
        s.policy.load_state(&mut r)?;
        r.done()?;

        // `running` mirrors `core_job` exactly (set on dispatch, cleared
        // on completion), so it is derived rather than serialized.
        for (core, slot) in s.core_job.iter().enumerate() {
            s.running[core] = slot.map(|j| spec.jobs[j].network.clone());
        }
        // Rebind the engine's traces, then lay the captured state on top.
        for (core, name) in bound.iter().enumerate() {
            if let Some(name) = name {
                if zoo::by_name(name, spec.scale).is_none() {
                    return Err(SnapError::BadValue("bound network unknown to the scenario scale"));
                }
                let trace = Self::trace_for(&mut s.traces, spec, name, core);
                s.sim.attach(core, &trace, 0);
            } else if s.core_job[core].is_some() {
                return Err(SnapError::BadValue("running core has no bound network"));
            }
        }
        s.bound = bound;
        s.sim.restore(&snap.sim)?;
        Ok(s)
    }

    /// Consume the completed session and assemble the serve report.
    ///
    /// # Panics
    ///
    /// Panics if jobs are still pending ([`ServeSession::is_done`]).
    pub fn into_report(self) -> ServeReport {
        assert!(self.is_done(), "into_report on an unfinished serve session");
        let records = (0..self.spec.jobs.len())
            .map(|j| JobRecord {
                job: j as u64,
                workload: self.spec.jobs[j].network.clone(),
                core: self.job_core[j],
                arrival: self.arr[j],
                dispatch: self.dispatch_at[j],
                completion: self.complete_at[j],
            })
            .collect();
        ServeReport::new(self.sim.into_report(), records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_config::parse_scenario;

    #[test]
    fn conservation_holds_for_every_job() {
        let spec = parse_scenario(
            "t",
            "cores = 2\npattern = fixed:500\njob = ncf\njob = ncf\njob = ncf\njob = ncf\n",
        )
        .unwrap();
        let r = serve(&spec);
        assert_eq!(r.jobs.len(), 4);
        for j in &r.jobs {
            assert_eq!(j.arrival + j.queueing() + j.service(), j.completion);
            assert!(j.dispatch >= j.arrival);
        }
        assert_eq!(r.makespan, r.jobs.iter().map(|j| j.completion).max().unwrap());
    }

    #[test]
    fn more_jobs_than_cores_queue_up() {
        // Four simultaneous arrivals on one core: strictly serialized, so
        // queueing delay must be nonzero for all but the first job.
        let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\njob = ncf\n").unwrap();
        let r = serve(&spec);
        let mut by_dispatch = r.jobs.clone();
        by_dispatch.sort_by_key(|j| j.dispatch);
        assert_eq!(by_dispatch[0].queueing(), 0);
        for w in by_dispatch.windows(2) {
            assert_eq!(
                w[1].dispatch, w[0].completion,
                "next job must start the cycle its predecessor finished"
            );
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let text = "cores = 2\nseed = 5\npattern = bursty:2:3000\npolicy = round_robin\n\
                    job = ncf\njob = dlrm\njob = ncf\njob = dlrm\n";
        let spec = parse_scenario("t", text).unwrap();
        let a = serve(&spec).to_json();
        let b = serve(&spec).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_probe_records_job_lifecycle() {
        let mut spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").unwrap();
        spec.system.probe = ProbeMode::Stats;
        let r = serve(&spec);
        let stats = r.run.stats.as_ref().expect("stats probe requested");
        assert_eq!(stats.jobs.len(), 2, "one JobSpan per job");
        assert_eq!(stats.sched.arrivals, 2);
        assert_eq!(stats.sched.dispatches, 2);
        assert_eq!(stats.sched.completions, 2);
        for (span, rec) in stats.jobs.iter().zip(&r.jobs) {
            assert_eq!(span.arrival, rec.arrival);
            assert_eq!(span.dispatch, rec.dispatch);
            assert_eq!(span.completion, rec.completion);
        }
    }

    #[test]
    fn late_arrival_finds_an_idle_chip() {
        // One job at 0, one far beyond the first's completion: the chip
        // drains, skips to the second arrival, and serves it immediately.
        let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf @ 100000000\n").unwrap();
        let r = serve(&spec);
        assert!(r.jobs[0].completion < 100_000_000, "first job must finish before the gap");
        assert_eq!(r.jobs[1].arrival, 100_000_000);
        assert_eq!(r.jobs[1].queueing(), 0, "idle chip serves a new arrival at once");
    }
}
