//! The serve loop: admit arrivals, dispatch via the policy, step the
//! engine between scheduler decision points.

use crate::arrival::arrivals;
use crate::policy::Policy;
use crate::report::{JobRecord, ServeReport};
use mnpu_config::ScenarioSpec;
use mnpu_engine::{Advance, Event, NullProbe, Probe, ProbeMode, Simulation, StatsProbe};
use mnpu_model::zoo;
use mnpu_systolic::WorkloadTrace;
use std::collections::{HashMap, VecDeque};

/// Run `spec` to completion and return the serve report.
///
/// The probe is chosen by the scenario's chip configuration exactly as in
/// batch mode ([`ProbeMode::None`] = zero-cost, [`ProbeMode::Stats`] =
/// counters plus job-lifetime spans in [`mnpu_engine::RunReport::stats`]).
///
/// Scheduling is deterministic: arrivals are a pure function of the
/// scenario ([`arrivals`]), ties are broken by declaration order, and the
/// engine itself is the validated deterministic batch engine stepped
/// through [`Simulation::advance`]. Running the same scenario twice yields
/// byte-identical reports.
///
/// # Panics
///
/// Panics if the chip configuration is invalid or a simulation watchdog
/// trips — never on any well-formed scenario.
pub fn serve(spec: &ScenarioSpec) -> ServeReport {
    match spec.system.probe {
        ProbeMode::None => drive(spec, Simulation::with_probe_idle(&spec.system, NullProbe)),
        ProbeMode::Stats => {
            drive(spec, Simulation::with_probe_idle(&spec.system, StatsProbe::default()))
        }
    }
}

fn drive<P: Probe>(spec: &ScenarioSpec, mut sim: Simulation<P>) -> ServeReport {
    let n = spec.jobs.len();
    let arr = arrivals(spec);
    // Admission order: by arrival cycle, declaration order breaking ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (arr[i], i));

    let mut policy = Policy::new(spec);
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut core_job: Vec<Option<usize>> = vec![None; spec.system.cores];
    let mut running: Vec<Option<String>> = vec![None; spec.system.cores];
    let mut dispatch_at = vec![0u64; n];
    let mut complete_at = vec![0u64; n];
    let mut job_core = vec![0usize; n];
    // Traces are memoized per (network, core): presets are homogeneous,
    // but a heterogeneous chip compiles the network against the arch of
    // the core it actually lands on.
    let mut traces: HashMap<(String, usize), WorkloadTrace> = HashMap::new();
    let mut next_arr = 0usize;
    let mut done = 0usize;

    while done < n {
        // Admit everything that has arrived by now.
        while next_arr < n && arr[order[next_arr]] <= sim.now() {
            let j = order[next_arr];
            next_arr += 1;
            queue.push_back(j);
            sim.record_event(Event::JobArrive { job: j as u64, queue_depth: queue.len() });
        }
        // Dispatch until the policy has nothing to place.
        loop {
            let free: Vec<usize> =
                (0..spec.system.cores).filter(|&c| core_job[c].is_none()).collect();
            let Some((pos, core)) = policy.pick(&queue, &spec.jobs, &free, &running) else {
                break;
            };
            let j = queue.remove(pos).expect("policy returned a valid queue position");
            let name = &spec.jobs[j].network;
            let trace = traces.entry((name.clone(), core)).or_insert_with(|| {
                let net = zoo::by_name(name, spec.scale)
                    .expect("scenario parser validated workload names");
                WorkloadTrace::generate(&net, &spec.system.arch[core])
            });
            let now = sim.now();
            sim.attach(core, trace, now);
            dispatch_at[j] = now;
            job_core[j] = core;
            core_job[core] = Some(j);
            running[core] = Some(name.clone());
            sim.record_event(Event::JobDispatch { job: j as u64, core, queue_depth: queue.len() });
        }
        // Step the engine to the next scheduler decision point.
        let stop = if next_arr < n { arr[order[next_arr]] } else { u64::MAX };
        match sim.advance(stop) {
            Advance::CoreFinished { core, at } => {
                let j = core_job[core].take().expect("finished core had a job bound");
                running[core] = None;
                complete_at[j] = at;
                done += 1;
                sim.record_event(Event::JobComplete { job: j as u64, core });
                // The finished core stays bound until its next attach: a
                // finished core already costs nothing in the event loop,
                // the final report then describes the core's last job, and
                // — decisively — an eager detach would flush the *shared*
                // TLB mid-run and break byte-identity with batch mode.
            }
            // Parked at the next arrival, or drained with arrivals still
            // pending: loop back to admission.
            Advance::Parked => {}
            Advance::Drained => {
                if queue.is_empty() && next_arr < n {
                    sim.skip_to(arr[order[next_arr]]);
                }
                // A non-empty queue with every core drained means the next
                // policy pass must dispatch (all cores are free).
            }
        }
    }

    let records = (0..n)
        .map(|j| JobRecord {
            id: j as u64,
            workload: spec.jobs[j].network.clone(),
            core: job_core[j],
            arrival: arr[j],
            dispatch: dispatch_at[j],
            completion: complete_at[j],
        })
        .collect();
    ServeReport::new(sim.into_report(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_config::parse_scenario;

    #[test]
    fn conservation_holds_for_every_job() {
        let spec = parse_scenario(
            "t",
            "cores = 2\npattern = fixed:500\njob = ncf\njob = ncf\njob = ncf\njob = ncf\n",
        )
        .unwrap();
        let r = serve(&spec);
        assert_eq!(r.jobs.len(), 4);
        for j in &r.jobs {
            assert_eq!(j.arrival + j.queueing() + j.service(), j.completion);
            assert!(j.dispatch >= j.arrival);
        }
        assert_eq!(r.makespan, r.jobs.iter().map(|j| j.completion).max().unwrap());
    }

    #[test]
    fn more_jobs_than_cores_queue_up() {
        // Four simultaneous arrivals on one core: strictly serialized, so
        // queueing delay must be nonzero for all but the first job.
        let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\njob = ncf\n").unwrap();
        let r = serve(&spec);
        let mut by_dispatch = r.jobs.clone();
        by_dispatch.sort_by_key(|j| j.dispatch);
        assert_eq!(by_dispatch[0].queueing(), 0);
        for w in by_dispatch.windows(2) {
            assert_eq!(
                w[1].dispatch, w[0].completion,
                "next job must start the cycle its predecessor finished"
            );
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let text = "cores = 2\nseed = 5\npattern = bursty:2:3000\npolicy = round_robin\n\
                    job = ncf\njob = dlrm\njob = ncf\njob = dlrm\n";
        let spec = parse_scenario("t", text).unwrap();
        let a = serve(&spec).to_json();
        let b = serve(&spec).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_probe_records_job_lifecycle() {
        let mut spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").unwrap();
        spec.system.probe = ProbeMode::Stats;
        let r = serve(&spec);
        let stats = r.run.stats.as_ref().expect("stats probe requested");
        assert_eq!(stats.jobs.len(), 2, "one JobSpan per job");
        assert_eq!(stats.sched.arrivals, 2);
        assert_eq!(stats.sched.dispatches, 2);
        assert_eq!(stats.sched.completions, 2);
        for (span, rec) in stats.jobs.iter().zip(&r.jobs) {
            assert_eq!(span.arrival, rec.arrival);
            assert_eq!(span.dispatch, rec.dispatch);
            assert_eq!(span.complete, rec.completion);
        }
    }

    #[test]
    fn late_arrival_finds_an_idle_chip() {
        // One job at 0, one far beyond the first's completion: the chip
        // drains, skips to the second arrival, and serves it immediately.
        let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf @ 100000000\n").unwrap();
        let r = serve(&spec);
        assert!(r.jobs[0].completion < 100_000_000, "first job must finish before the gap");
        assert_eq!(r.jobs[1].arrival, 100_000_000);
        assert_eq!(r.jobs[1].queueing(), 0, "idle chip serves a new arrival at once");
    }
}
