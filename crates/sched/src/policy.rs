//! Core-assignment policies: which queued job goes to which free core.

use mnpu_config::{JobSpec, PolicySpec, ScenarioSpec};
use mnpu_model::zoo;
use mnpu_predict::{SlowdownModel, WorkloadProfile};
use mnpu_snapshot::{Reader, SnapError, Writer};
use std::collections::HashMap;
use std::collections::VecDeque;

/// A stateful core-assignment policy, built from a scenario's
/// [`PolicySpec`] and consulted by the server at every decision point.
#[derive(Debug)]
pub struct Policy {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    FirstFree,
    RoundRobin {
        /// Next core to try, advanced on every dispatch so consecutive
        /// jobs spread across the chip even when lower cores free up
        /// first.
        next: usize,
    },
    Pinned,
    Predictor {
        /// Solo profile per distinct network in the scenario.
        profiles: HashMap<String, WorkloadProfile>,
        model: SlowdownModel,
    },
}

impl Policy {
    /// Build the policy for `spec`. The predictor policy profiles every
    /// distinct network in the job list and trains the slowdown model up
    /// front (deterministically, seeded from the scenario), so `pick`
    /// itself never simulates anything.
    pub fn new(spec: &ScenarioSpec) -> Self {
        let inner = match spec.policy {
            PolicySpec::FirstFree => Inner::FirstFree,
            PolicySpec::RoundRobin => Inner::RoundRobin { next: 0 },
            PolicySpec::Pinned => Inner::Pinned,
            PolicySpec::Predictor => {
                // Profile on the scenario chip; train pairings on its
                // dual-core derivative (the model's features are pairwise).
                let rig = mnpu_engine::SystemConfig::bench(2, spec.system.sharing);
                let mut profiles = HashMap::new();
                for job in &spec.jobs {
                    profiles.entry(job.network.clone()).or_insert_with(|| {
                        let net = zoo::by_name(&job.network, spec.scale)
                            .expect("scenario parser validated workload names");
                        WorkloadProfile::measure(&spec.system, &net)
                    });
                }
                let model = SlowdownModel::train_on_random_networks(&rig, 6, 8, spec.seed);
                Inner::Predictor { profiles, model }
            }
        };
        Policy { inner }
    }

    /// Serialize the policy's mutable state. Only the round-robin cursor
    /// is mutable; the predictor's profiles and model are deterministic
    /// functions of the scenario and are rebuilt by [`Policy::new`] on
    /// restore rather than serialized.
    pub(crate) fn save_state(&self, w: &mut Writer) {
        match &self.inner {
            Inner::FirstFree => w.u8(0),
            Inner::RoundRobin { next } => {
                w.u8(1);
                w.usize(*next);
            }
            Inner::Pinned => w.u8(2),
            Inner::Predictor { .. } => w.u8(3),
        }
    }

    /// Restore state written by [`Policy::save_state`] into a policy
    /// freshly built for the *same* scenario.
    pub(crate) fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let kind = r.u8()?;
        match (&mut self.inner, kind) {
            (Inner::FirstFree, 0) | (Inner::Pinned, 2) | (Inner::Predictor { .. }, 3) => Ok(()),
            (Inner::RoundRobin { next }, 1) => {
                *next = r.usize()?;
                Ok(())
            }
            _ => Err(SnapError::BadValue("policy kind mismatch")),
        }
    }

    /// Choose one dispatch: `Some((queue_position, core))`, or `None` when
    /// nothing can be dispatched (empty queue, no free core, or — under
    /// [`PolicySpec::Pinned`] — every queued job's core is busy).
    ///
    /// `free` lists free cores in ascending order; `running[c]` names the
    /// network currently bound to core `c`. FIFO policies always take the
    /// queue head; the predictor may *reorder* the queue (documented — it
    /// trades FIFO fairness for co-runner compatibility), and pinned jobs
    /// wait for their named core regardless of queue position.
    pub fn pick(
        &mut self,
        queue: &VecDeque<usize>,
        jobs: &[JobSpec],
        free: &[usize],
        running: &[Option<String>],
    ) -> Option<(usize, usize)> {
        if queue.is_empty() || free.is_empty() {
            return None;
        }
        match &mut self.inner {
            Inner::FirstFree => Some((0, free[0])),
            Inner::RoundRobin { next } => {
                let cores = running.len();
                // First free core at or after the rotating pointer.
                let core = (0..cores)
                    .map(|off| (*next + off) % cores)
                    .find(|c| free.contains(c))
                    .expect("free list is non-empty");
                *next = (core + 1) % cores;
                Some((0, core))
            }
            Inner::Pinned => queue.iter().enumerate().find_map(|(pos, &j)| {
                let core = jobs[j].core.expect("scenario parser enforced pins");
                free.contains(&core).then_some((pos, core))
            }),
            Inner::Predictor { profiles, model } => {
                // Cost of a candidate: the worst predicted slowdown, in
                // either direction, against any currently running workload.
                // With an idle chip every cost is the clamped 1.0, so the
                // choice degrades to FIFO order (strict inequality below).
                let cost = |j: &JobSpec| -> f64 {
                    let cand = &profiles[&j.network];
                    running
                        .iter()
                        .flatten()
                        .map(|name| {
                            let run = &profiles[name.as_str()];
                            model.predict_slowdown(cand, run).max(model.predict_slowdown(run, cand))
                        })
                        .fold(1.0_f64, f64::max)
                };
                let mut best = (0, cost(&jobs[queue[0]]));
                for (pos, &j) in queue.iter().enumerate().skip(1) {
                    let c = cost(&jobs[j]);
                    if c < best.1 {
                        best = (pos, c);
                    }
                }
                Some((best.0, free[0]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_config::parse_scenario;

    fn jobs(n: usize) -> Vec<JobSpec> {
        (0..n).map(|_| JobSpec { network: "ncf".into(), arrival: None, core: None }).collect()
    }

    #[test]
    fn first_free_takes_head_and_lowest_core() {
        let spec = parse_scenario("t", "cores = 4\njob = ncf\n").unwrap();
        let mut p = Policy::new(&spec);
        let q: VecDeque<usize> = [5, 6].into();
        let running: Vec<Option<String>> = vec![None; 4];
        assert_eq!(p.pick(&q, &jobs(8), &[1, 3], &running), Some((0, 1)));
    }

    #[test]
    fn round_robin_rotates_across_dispatches() {
        let spec = parse_scenario("t", "cores = 3\npolicy = round_robin\njob = ncf\n").unwrap();
        let mut p = Policy::new(&spec);
        let q: VecDeque<usize> = [0, 1, 2].into();
        let running: Vec<Option<String>> = vec![None, None, None];
        assert_eq!(p.pick(&q, &jobs(3), &[0, 1, 2], &running), Some((0, 0)));
        assert_eq!(p.pick(&q, &jobs(3), &[0, 1, 2], &running), Some((0, 1)));
        assert_eq!(p.pick(&q, &jobs(3), &[0, 2], &running), Some((0, 2)));
        // Pointer wrapped past the end: back to core 0.
        assert_eq!(p.pick(&q, &jobs(3), &[0, 1], &running), Some((0, 0)));
    }

    #[test]
    fn pinned_skips_jobs_whose_core_is_busy() {
        let spec =
            parse_scenario("t", "cores = 2\npolicy = pinned\njob = ncf on 0\njob = ncf on 1\n")
                .unwrap();
        let mut p = Policy::new(&spec);
        let q: VecDeque<usize> = [0, 1].into();
        let running: Vec<Option<String>> = vec![Some("ncf".into()), None];
        // Job 0 is pinned to busy core 0; job 1 (queue position 1) runs.
        assert_eq!(p.pick(&q, &spec.jobs, &[1], &running), Some((1, 1)));
        // Nothing dispatchable when only the busy core's job remains.
        let q: VecDeque<usize> = [0].into();
        assert_eq!(p.pick(&q, &spec.jobs, &[1], &running), None);
    }

    #[test]
    fn empty_queue_or_no_free_core_yields_none() {
        let spec = parse_scenario("t", "cores = 2\njob = ncf\n").unwrap();
        let mut p = Policy::new(&spec);
        let running: Vec<Option<String>> = vec![None, None];
        assert_eq!(p.pick(&VecDeque::new(), &jobs(1), &[0, 1], &running), None);
        let q: VecDeque<usize> = [0].into();
        assert_eq!(p.pick(&q, &jobs(1), &[], &running), None);
    }
}
