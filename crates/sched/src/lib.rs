//! Dynamic multi-tenant scheduling on top of the batch engine.
//!
//! The engine executes a fixed set of workloads, one per core, from cycle 0
//! to completion. This crate lifts that into a *serve* model: jobs arrive
//! over (simulated) time, wait in a FIFO queue, get bound to a free core by
//! a pluggable policy, run, and release the core for the next job — the
//! operating mode of a shared NPU pool, where the paper's contention
//! effects show up as *latency* rather than makespan.
//!
//! The moving parts:
//!
//! * [`arrivals`] expands a scenario's arrival pattern into concrete cycles
//!   — a pure function of the scenario (seeded, no wall-clock), so a given
//!   scenario is exactly reproducible;
//! * [`Policy`] picks which queued job goes to which free core
//!   ([`PolicySpec::FirstFree`], [`PolicySpec::RoundRobin`],
//!   [`PolicySpec::Pinned`], and [`PolicySpec::Predictor`], which reuses
//!   `mnpu-predict`'s slowdown model to avoid destructive co-runner
//!   pairings);
//! * [`serve`] drives [`mnpu_engine::Simulation::advance`] between
//!   scheduler decision points and assembles a [`ServeReport`] with
//!   per-job queueing / service / completion latency and p50/p95/p99
//!   distributions.
//!
//! The key invariant, enforced by a golden fixture: a scenario where every
//! job arrives at cycle 0 pinned to its own core produces a [`RunReport`]
//! byte-identical to batch mode — serve mode is a strict superset, not a
//! fork, of the validated engine.
//!
//! # Example
//!
//! ```
//! use mnpu_config::parse_scenario;
//! use mnpu_sched::serve;
//!
//! let spec = parse_scenario(
//!     "demo",
//!     "cores = 2\npattern = fixed:2000\njob = ncf\njob = ncf\njob = ncf\n",
//! )
//! .unwrap();
//! let report = serve(&spec);
//! assert_eq!(report.jobs.len(), 3);
//! // arrival + queueing + service = completion, exactly, for every job.
//! for j in &report.jobs {
//!     assert_eq!(j.arrival + j.queueing() + j.service(), j.completion);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod policy;
mod report;
mod server;

pub use arrival::arrivals;
pub use policy::Policy;
pub use report::{JobRecord, ServeReport};
pub use server::{scenario_fingerprint, serve, ServeSession, ServeSnapshot};

// Re-export the scenario vocabulary so scheduler callers need only this
// crate and `mnpu-config`'s parser entry points.
pub use mnpu_config::{ArrivalSpec, JobSpec, PolicySpec, ScenarioSpec};
pub use mnpu_engine::RunReport;
