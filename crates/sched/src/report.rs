//! Serve-mode results: per-job timing records and latency distributions.

use mnpu_engine::{Emit, Format, RunReport};
use mnpu_metrics::{throughput_per_mcycle, LatencyStats};
use std::fmt::Write as _;
use std::io;

/// The lifecycle timing of one completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Scenario job index (declaration order) — named like the probe
    /// layer's `JobSpan::job`, and emitted under the same `"job"` key.
    pub job: u64,
    /// Network the job ran.
    pub workload: String,
    /// Core the job ran on.
    pub core: usize,
    /// Cycle the job entered the queue.
    pub arrival: u64,
    /// Cycle the job was bound to its core.
    pub dispatch: u64,
    /// Cycle the job finished.
    pub completion: u64,
}

impl JobRecord {
    /// Cycles spent waiting in the queue: `dispatch - arrival`.
    pub fn queueing(&self) -> u64 {
        self.dispatch - self.arrival
    }

    /// Cycles spent executing: `completion - dispatch`.
    pub fn service(&self) -> u64 {
        self.completion - self.dispatch
    }

    /// End-to-end latency: `completion - arrival`. By construction
    /// `latency() == queueing() + service()` exactly — the conservation
    /// law the validation oracle re-checks on every run.
    pub fn latency(&self) -> u64 {
        self.completion - self.arrival
    }
}

/// Everything a serve run produces: the engine's [`RunReport`] plus the
/// scheduling layer's per-job records and latency distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The underlying engine report (DRAM/MMU/core counters; the cores
    /// describe each core's *last* binding).
    pub run: RunReport,
    /// One record per job, in scenario declaration order.
    pub jobs: Vec<JobRecord>,
    /// Distribution of end-to-end latency over all jobs.
    pub latency: LatencyStats,
    /// Distribution of queueing delay over all jobs.
    pub queueing: LatencyStats,
    /// Distribution of service time over all jobs.
    pub service: LatencyStats,
    /// Cycle the last job completed.
    pub makespan: u64,
    /// Jobs completed per million global cycles.
    pub throughput_per_mcycle: f64,
}

impl ServeReport {
    /// Assemble the derived statistics from per-job records and the
    /// engine report.
    pub(crate) fn new(run: RunReport, jobs: Vec<JobRecord>) -> Self {
        let lat: Vec<u64> = jobs.iter().map(JobRecord::latency).collect();
        let que: Vec<u64> = jobs.iter().map(JobRecord::queueing).collect();
        let srv: Vec<u64> = jobs.iter().map(JobRecord::service).collect();
        let makespan = jobs.iter().map(|j| j.completion).max().unwrap_or(0);
        ServeReport {
            latency: LatencyStats::from_cycles(&lat),
            queueing: LatencyStats::from_cycles(&que),
            service: LatencyStats::from_cycles(&srv),
            makespan,
            throughput_per_mcycle: throughput_per_mcycle(jobs.len(), makespan.max(1)),
            run,
            jobs,
        }
    }

    /// Serialize as one deterministic JSON object, embedding the engine
    /// report verbatim under `"run"` — same hand-rolled, fixed-field-order
    /// style as [`RunReport::to_json`], so byte-equality of two serve
    /// reports implies behavioral equality of the two runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"jobs\":[{}],\"makespan\":{},\"throughput_per_mcycle\":{},",
            self.jobs
                .iter()
                .map(|j| {
                    format!(
                        "{{\"job\":{},\"workload\":\"{}\",\"core\":{},\"arrival\":{},\
                         \"dispatch\":{},\"completion\":{}}}",
                        j.job, j.workload, j.core, j.arrival, j.dispatch, j.completion
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
            self.makespan,
            self.throughput_per_mcycle
        );
        for (key, stats) in
            [("latency", &self.latency), ("queueing", &self.queueing), ("service", &self.service)]
        {
            let _ = write!(
                out,
                "\"{key}\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"max\":{}}},",
                stats.p50, stats.p95, stats.p99, stats.mean, stats.max
            );
        }
        let _ = write!(out, "\"run\":{}}}", self.run.to_json());
        out
    }

    /// Per-job CSV rows plus a `total` row (mirroring the per-core layout
    /// of the engine's CSV): lifecycle cycles for every job, then summed
    /// queueing/service/latency with `completion` = makespan.
    fn emit_csv<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "job,workload,core,arrival,dispatch,completion,queueing,service,latency")?;
        for j in &self.jobs {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                j.job,
                j.workload,
                j.core,
                j.arrival,
                j.dispatch,
                j.completion,
                j.queueing(),
                j.service(),
                j.latency()
            )?;
        }
        let sum = |f: fn(&JobRecord) -> u64| -> u64 { self.jobs.iter().map(f).sum() };
        writeln!(
            out,
            "total,,,,,{},{},{},{}",
            self.makespan,
            sum(JobRecord::queueing),
            sum(JobRecord::service),
            sum(JobRecord::latency)
        )
    }

    /// Chrome trace-event JSON of the job timeline: one complete span per
    /// job on its core's row, dispatch → completion, with arrival and
    /// queueing delay as args — the same event shape the engine emits for
    /// instrumented runs, but built from the scheduler's own records, so
    /// it needs no stats probe.
    fn emit_chrome_trace<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(b"{\"traceEvents\":[")?;
        let mut first = true;
        for ci in 0..self.run.cores.len() {
            if !first {
                out.write_all(b",")?;
            }
            first = false;
            write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{ci},\
                 \"args\":{{\"name\":\"core {ci}\"}}}}"
            )?;
        }
        for j in &self.jobs {
            if !first {
                out.write_all(b",")?;
            }
            first = false;
            write!(
                out,
                "{{\"name\":\"job {}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"workload\":\"{}\",\"arrival\":{},\
                 \"queueing\":{}}}}}",
                j.job,
                j.dispatch,
                j.service().max(1),
                j.core,
                j.workload,
                j.arrival,
                j.queueing()
            )?;
        }
        out.write_all(b"],\"displayTimeUnit\":\"ms\"}")
    }
}

impl Emit for ServeReport {
    fn emit<W: io::Write>(&self, format: Format, out: &mut W) -> io::Result<()> {
        match format {
            Format::Json => out.write_all(self.to_json().as_bytes()),
            Format::Csv => self.emit_csv(out),
            Format::ChromeTrace => self.emit_chrome_trace(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve;
    use mnpu_config::parse_scenario;

    fn report() -> ServeReport {
        let spec = parse_scenario(
            "t",
            "cores = 2\npattern = fixed:500\njob = ncf\njob = ncf\njob = ncf\n",
        )
        .unwrap();
        serve(&spec)
    }

    #[test]
    fn csv_has_header_job_rows_and_total() {
        let r = report();
        let text = r.emit_to_string(Format::Csv);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 3 jobs + total:\n{text}");
        assert!(lines[0].starts_with("job,workload,core"));
        assert!(lines[1].starts_with("0,ncf,"));
        assert!(lines[4].starts_with("total,"));
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
        }
        assert!(lines[4].contains(&r.makespan.to_string()));
    }

    #[test]
    fn chrome_trace_carries_every_job_without_a_probe() {
        // No stats probe configured — the serve trace comes from the
        // scheduler's own records, unlike the engine's span timeline.
        let r = report();
        let text = r.emit_to_string(Format::ChromeTrace);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("\"displayTimeUnit\":\"ms\"}"));
        for j in &r.jobs {
            assert!(text.contains(&format!("\"name\":\"job {}\"", j.job)));
        }
        assert!(text.contains("\"workload\":\"ncf\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn json_format_matches_to_json() {
        let r = report();
        assert_eq!(r.emit_to_string(Format::Json), r.to_json());
        assert!(r.to_json().contains("\"job\":0"), "records serialize under the probe's key name");
    }
}
