//! Serve-mode results: per-job timing records and latency distributions.

use mnpu_engine::RunReport;
use mnpu_metrics::{throughput_per_mcycle, LatencyStats};
use std::fmt::Write as _;

/// The lifecycle timing of one completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Scenario job index (declaration order).
    pub id: u64,
    /// Network the job ran.
    pub workload: String,
    /// Core the job ran on.
    pub core: usize,
    /// Cycle the job entered the queue.
    pub arrival: u64,
    /// Cycle the job was bound to its core.
    pub dispatch: u64,
    /// Cycle the job finished.
    pub completion: u64,
}

impl JobRecord {
    /// Cycles spent waiting in the queue: `dispatch - arrival`.
    pub fn queueing(&self) -> u64 {
        self.dispatch - self.arrival
    }

    /// Cycles spent executing: `completion - dispatch`.
    pub fn service(&self) -> u64 {
        self.completion - self.dispatch
    }

    /// End-to-end latency: `completion - arrival`. By construction
    /// `latency() == queueing() + service()` exactly — the conservation
    /// law the validation oracle re-checks on every run.
    pub fn latency(&self) -> u64 {
        self.completion - self.arrival
    }
}

/// Everything a serve run produces: the engine's [`RunReport`] plus the
/// scheduling layer's per-job records and latency distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The underlying engine report (DRAM/MMU/core counters; the cores
    /// describe each core's *last* binding).
    pub run: RunReport,
    /// One record per job, in scenario declaration order.
    pub jobs: Vec<JobRecord>,
    /// Distribution of end-to-end latency over all jobs.
    pub latency: LatencyStats,
    /// Distribution of queueing delay over all jobs.
    pub queueing: LatencyStats,
    /// Distribution of service time over all jobs.
    pub service: LatencyStats,
    /// Cycle the last job completed.
    pub makespan: u64,
    /// Jobs completed per million global cycles.
    pub throughput_per_mcycle: f64,
}

impl ServeReport {
    /// Assemble the derived statistics from per-job records and the
    /// engine report.
    pub(crate) fn new(run: RunReport, jobs: Vec<JobRecord>) -> Self {
        let lat: Vec<u64> = jobs.iter().map(JobRecord::latency).collect();
        let que: Vec<u64> = jobs.iter().map(JobRecord::queueing).collect();
        let srv: Vec<u64> = jobs.iter().map(JobRecord::service).collect();
        let makespan = jobs.iter().map(|j| j.completion).max().unwrap_or(0);
        ServeReport {
            latency: LatencyStats::from_cycles(&lat),
            queueing: LatencyStats::from_cycles(&que),
            service: LatencyStats::from_cycles(&srv),
            makespan,
            throughput_per_mcycle: throughput_per_mcycle(jobs.len(), makespan.max(1)),
            run,
            jobs,
        }
    }

    /// Serialize as one deterministic JSON object, embedding the engine
    /// report verbatim under `"run"` — same hand-rolled, fixed-field-order
    /// style as [`RunReport::to_json`], so byte-equality of two serve
    /// reports implies behavioral equality of the two runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"jobs\":[{}],\"makespan\":{},\"throughput_per_mcycle\":{},",
            self.jobs
                .iter()
                .map(|j| {
                    format!(
                        "{{\"id\":{},\"workload\":\"{}\",\"core\":{},\"arrival\":{},\
                         \"dispatch\":{},\"completion\":{}}}",
                        j.id, j.workload, j.core, j.arrival, j.dispatch, j.completion
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
            self.makespan,
            self.throughput_per_mcycle
        );
        for (key, stats) in
            [("latency", &self.latency), ("queueing", &self.queueing), ("service", &self.service)]
        {
            let _ = write!(
                out,
                "\"{key}\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"max\":{}}},",
                stats.p50, stats.p95, stats.p99, stats.mean, stats.max
            );
        }
        let _ = write!(out, "\"run\":{}}}", self.run.to_json());
        out
    }
}
