//! Open-loop arrival generation: scenario → concrete arrival cycles.

use mnpu_config::{ArrivalSpec, ScenarioSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The arrival cycle of every job in `spec`, in job-declaration order.
///
/// A pure function of the scenario — the bursty pattern draws its gaps
/// from a generator seeded with [`ScenarioSpec::seed`], never from
/// wall-clock time — so the same scenario always produces the same
/// arrival schedule. Arrivals are open-loop: they do not depend on when
/// earlier jobs finish.
pub fn arrivals(spec: &ScenarioSpec) -> Vec<u64> {
    let n = spec.jobs.len();
    match spec.arrival {
        // `job` lines without an explicit `@ <cycle>` arrive at 0.
        ArrivalSpec::Explicit => spec.jobs.iter().map(|j| j.arrival.unwrap_or(0)).collect(),
        ArrivalSpec::FixedIncrement { increment } => (0..n as u64).map(|i| i * increment).collect(),
        ArrivalSpec::Bursty { burst, mean_gap } => {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let mut now = 0u64;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if i > 0 && i % burst == 0 {
                    // Uniform over [1, 2*mean_gap] — mean ≈ `mean_gap`,
                    // never zero, and cheap to reason about in tests.
                    if mean_gap > 0 {
                        now += rng.random_range(1..=2 * mean_gap);
                    }
                }
                out.push(now);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_config::parse_scenario;

    fn spec(pattern: &str, jobs: usize, seed: u64) -> ScenarioSpec {
        let mut text = format!("cores = 2\nseed = {seed}\npattern = {pattern}\n");
        for _ in 0..jobs {
            text.push_str("job = ncf\n");
        }
        parse_scenario("t", &text).unwrap()
    }

    #[test]
    fn fixed_increment_is_an_arithmetic_series() {
        assert_eq!(arrivals(&spec("fixed:250", 4, 0)), vec![0, 250, 500, 750]);
    }

    #[test]
    fn explicit_defaults_missing_arrivals_to_zero() {
        let s = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf @ 77\n").unwrap();
        assert_eq!(arrivals(&s), vec![0, 77]);
    }

    #[test]
    fn bursty_groups_share_an_arrival_and_gaps_are_bounded() {
        let a = arrivals(&spec("bursty:3:1000", 7, 9));
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        let gap = a[3] - a[2];
        assert!((1..=2000).contains(&gap), "gap {gap} outside [1, 2*mean]");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be sorted");
    }

    #[test]
    fn bursty_is_deterministic_per_seed_and_varies_across_seeds() {
        assert_eq!(arrivals(&spec("bursty:2:500", 8, 3)), arrivals(&spec("bursty:2:500", 8, 3)));
        assert_ne!(arrivals(&spec("bursty:2:500", 8, 3)), arrivals(&spec("bursty:2:500", 8, 4)));
    }
}
