//! On-chip interconnect model — the shared path between NPU cores and the
//! memory-side resources in the paper's Fig. 1.
//!
//! The multi-core NPU's cores reach the (shared) MMU and memory controllers
//! through an on-chip network. The baseline study treats that path as
//! ideal; this crate models it as a crossbar of finite-bandwidth,
//! fixed-latency [`Link`]s so interconnect contention can be studied as a
//! fourth shareable resource (an extension to the paper, disabled by
//! default in the engine).
//!
//! The model is analytical and event-free: each transfer reserves the next
//! free slot on its link (store-and-forward, `bytes / bytes_per_cycle`
//! serialization plus a fixed hop latency), so a [`Link`] is a single
//! `busy_until` register — negligible simulation cost, faithful first-order
//! queuing behavior.
//!
//! # Example
//!
//! ```
//! use mnpu_noc::{Link, NocConfig, Crossbar};
//!
//! let mut xbar = Crossbar::new(&NocConfig { bytes_per_cycle: 32, hop_latency: 4 }, 2);
//! // Two cores inject 64-byte packets at cycle 0: the second one queues.
//! let a = xbar.request_delivery(0, 0, 64);
//! let b = xbar.request_delivery(0, 1, 64);
//! assert_eq!(a, 0 + 2 + 4);  // 64B at 32 B/cycle + 4 hop cycles
//! assert_eq!(b, a);          // separate per-core links: no interference
//! let c = xbar.request_delivery(0, 0, 64);
//! assert!(c > a, "same core's second packet queues behind the first");
//! # let _ = (a, b, c);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Link bandwidth in bytes per cycle (serialization rate).
    pub bytes_per_cycle: u64,
    /// Fixed traversal latency in cycles (router + wire).
    pub hop_latency: u64,
}

impl NocConfig {
    /// A generous on-chip link: 64 B/cycle per core, 4-cycle hop — wide
    /// enough that it only matters under extreme bursts.
    pub const fn wide() -> Self {
        NocConfig { bytes_per_cycle: 64, hop_latency: 4 }
    }

    /// A constrained link: 16 B/cycle per core, 8-cycle hop — makes the
    /// interconnect a visible fourth shared resource.
    pub const fn narrow() -> Self {
        NocConfig { bytes_per_cycle: 16, hop_latency: 8 }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_cycle == 0 {
            return Err("NoC bandwidth must be positive".into());
        }
        Ok(())
    }
}

/// One direction of one core's connection: a busy-until register plus
/// counters.
#[derive(Debug, Clone, Default)]
pub struct Link {
    busy_until: u64,
    bytes: u64,
    transfers: u64,
    queue_cycles: u64,
}

impl Link {
    /// Schedule a transfer injected at `now`; returns its delivery cycle.
    pub fn transfer(&mut self, now: u64, bytes: u64, cfg: &NocConfig) -> u64 {
        let start = now.max(self.busy_until);
        self.queue_cycles += start - now;
        let serialization = bytes.div_ceil(cfg.bytes_per_cycle);
        self.busy_until = start + serialization;
        self.bytes += bytes;
        self.transfers += 1;
        self.busy_until + cfg.hop_latency
    }

    /// Bytes carried so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transfers carried so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles transfers spent waiting for the link.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Serialize the link's full state (it is all mutable).
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.u64(self.busy_until);
        w.u64(self.bytes);
        w.u64(self.transfers);
        w.u64(self.queue_cycles);
    }

    /// Restore state saved by [`Link::save_state`].
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is truncated.
    pub fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        self.busy_until = r.u64()?;
        self.bytes = r.u64()?;
        self.transfers = r.u64()?;
        self.queue_cycles = r.u64()?;
        Ok(())
    }
}

/// Per-core request/response links between cores and the memory system.
///
/// Each core has a private injection (request) link and a private ejection
/// (response) link — a crossbar, the common NPU organization. Contention is
/// therefore per-core serialization, not inter-core blocking; inter-core
/// effects still arise downstream at the shared DRAM/MMU.
#[derive(Debug, Clone)]
pub struct Crossbar {
    cfg: NocConfig,
    requests: Vec<Link>,
    responses: Vec<Link>,
}

impl Crossbar {
    /// Build a crossbar for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `cores` is zero.
    pub fn new(cfg: &NocConfig, cores: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid NoC config: {e}");
        }
        assert!(cores > 0, "at least one core");
        Crossbar {
            cfg: *cfg,
            requests: vec![Link::default(); cores],
            responses: vec![Link::default(); cores],
        }
    }

    /// Deliver a request of `bytes` from `core` to the memory side,
    /// injected at `now`; returns the arrival cycle at the memory system.
    pub fn request_delivery(&mut self, now: u64, core: usize, bytes: u64) -> u64 {
        self.requests[core].transfer(now, bytes, &self.cfg)
    }

    /// Deliver a response of `bytes` back to `core`, injected at `now`;
    /// returns the arrival cycle at the core.
    pub fn response_delivery(&mut self, now: u64, core: usize, bytes: u64) -> u64 {
        self.responses[core].transfer(now, bytes, &self.cfg)
    }

    /// The request-direction link of `core` (for statistics).
    pub fn request_link(&self, core: usize) -> &Link {
        &self.requests[core]
    }

    /// The response-direction link of `core`.
    pub fn response_link(&self, core: usize) -> &Link {
        &self.responses[core]
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Serialize all link state. The configuration and core count are
    /// excluded: restore targets a crossbar built from the same inputs.
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.seq(&self.requests, |w, l| l.save_state(w));
        w.seq(&self.responses, |w, l| l.save_state(w));
    }

    /// Restore state saved by [`Crossbar::save_state`] into a crossbar of
    /// the same shape.
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is malformed or the
    /// core counts disagree.
    pub fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        for dir in [&mut self.requests, &mut self.responses] {
            let n = r.usize()?;
            if n != dir.len() {
                return Err(mnpu_snapshot::SnapError::BadValue("crossbar core count mismatch"));
            }
            for l in dir.iter_mut() {
                l.load_state(r)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_transfer_latency_is_serialization_plus_hop() {
        let cfg = NocConfig { bytes_per_cycle: 16, hop_latency: 10 };
        let mut l = Link::default();
        assert_eq!(l.transfer(100, 64, &cfg), 100 + 4 + 10);
        assert_eq!(l.bytes(), 64);
        assert_eq!(l.queue_cycles(), 0);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let cfg = NocConfig { bytes_per_cycle: 16, hop_latency: 0 };
        let mut l = Link::default();
        let a = l.transfer(0, 64, &cfg);
        let b = l.transfer(0, 64, &cfg);
        assert_eq!(a, 4);
        assert_eq!(b, 8, "second packet serializes behind the first");
        assert_eq!(l.queue_cycles(), 4);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_credit() {
        let cfg = NocConfig { bytes_per_cycle: 64, hop_latency: 1 };
        let mut l = Link::default();
        let _ = l.transfer(0, 64, &cfg);
        // Long idle, then a transfer: starts immediately, no debt or credit.
        let t = l.transfer(1000, 64, &cfg);
        assert_eq!(t, 1001 + 1);
    }

    #[test]
    fn crossbar_isolates_cores() {
        let mut x = Crossbar::new(&NocConfig::narrow(), 4);
        let a = x.request_delivery(0, 0, 1024);
        let b = x.request_delivery(0, 3, 1024);
        assert_eq!(a, b, "different cores' links are independent");
        assert_eq!(x.request_link(0).transfers(), 1);
        assert_eq!(x.request_link(1).transfers(), 0);
    }

    #[test]
    fn request_and_response_directions_are_independent() {
        let mut x = Crossbar::new(&NocConfig::narrow(), 1);
        let req = x.request_delivery(0, 0, 512);
        let resp = x.response_delivery(0, 0, 512);
        assert_eq!(req, resp, "full-duplex: directions do not contend");
    }

    #[test]
    fn presets_validate_and_differ() {
        assert!(NocConfig::wide().validate().is_ok());
        assert!(NocConfig::narrow().validate().is_ok());
        assert!(NocConfig::wide().bytes_per_cycle > NocConfig::narrow().bytes_per_cycle);
        assert!(NocConfig { bytes_per_cycle: 0, hop_latency: 1 }.validate().is_err());
    }

    proptest! {
        #[test]
        fn prop_delivery_after_injection(now in 0u64..1_000_000, bytes in 1u64..4096) {
            let cfg = NocConfig::narrow();
            let mut l = Link::default();
            let t = l.transfer(now, bytes, &cfg);
            prop_assert!(t > now);
        }

        #[test]
        fn prop_deliveries_monotone_per_link(times in proptest::collection::vec(0u64..10_000, 1..50)) {
            let cfg = NocConfig { bytes_per_cycle: 8, hop_latency: 3 };
            let mut sorted = times.clone();
            sorted.sort_unstable();
            let mut l = Link::default();
            let mut last = 0;
            for now in sorted {
                let t = l.transfer(now, 64, &cfg);
                prop_assert!(t >= last, "deliveries in injection order");
                last = t;
            }
        }

        #[test]
        fn prop_bandwidth_bound(n in 1u64..200) {
            // n packets injected at cycle 0 cannot finish faster than the
            // serialization bound.
            let cfg = NocConfig { bytes_per_cycle: 16, hop_latency: 2 };
            let mut l = Link::default();
            let mut last = 0;
            for _ in 0..n {
                last = l.transfer(0, 64, &cfg);
            }
            prop_assert!(last >= n * 4 + 2);
        }
    }
}
