//! The analytical oracle suite must pass on every bundled preset: the
//! oracles are derived from the configuration and trace alone, so a
//! violation on a stock configuration means the engine (or an oracle) is
//! wrong, not the workload.

use mnpu_engine::{
    MemoryModel, ProbeMode, SharingLevel, Simulation, SystemConfig, SystemConfigBuilder,
};
use mnpu_model::{zoo, Network, Scale};
use mnpu_validate::check_run;

fn assert_clean(cfg: &SystemConfig, nets: &[Network]) {
    let report = Simulation::execute_networks(cfg, nets);
    let violations = check_run(cfg, nets, &report);
    assert!(
        violations.is_empty(),
        "oracle violations on a stock configuration:\n{}",
        violations.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
    );
}

fn bench_nets(n: usize) -> Vec<Network> {
    let pool = [
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::yolo_tiny(Scale::Bench),
        zoo::dlrm(Scale::Bench),
    ];
    (0..n).map(|i| pool[i % pool.len()].clone()).collect()
}

#[test]
fn single_core_bench_is_clean() {
    assert_clean(&SystemConfig::bench(1, SharingLevel::PlusDwt), &bench_nets(1));
}

#[test]
fn quad_core_all_sharing_levels_are_clean() {
    for sharing in
        [SharingLevel::Static, SharingLevel::PlusD, SharingLevel::PlusDw, SharingLevel::PlusDwt]
    {
        assert_clean(&SystemConfig::bench(4, sharing), &bench_nets(4));
    }
}

#[test]
fn ddr4_preset_is_clean() {
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    cfg.dram = mnpu_dram::DramConfig::ddr4(4);
    assert_clean(&cfg, &bench_nets(2));
}

#[test]
fn large_page_sizes_are_clean() {
    for pages in [65536u64, 1_048_576] {
        let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt).with_page_size(pages);
        assert_clean(&cfg, &bench_nets(2));
    }
}

#[test]
fn translation_off_is_clean() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusD).without_translation();
    assert_clean(&cfg, &bench_nets(2));
}

#[test]
fn ideal_memory_is_clean() {
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    cfg.memory = MemoryModel::Ideal { latency: 16 };
    assert_clean(&cfg, &bench_nets(2));
}

#[test]
fn probe_stats_cross_checks_are_clean() {
    let cfg = SystemConfigBuilder::from_config(SystemConfig::bench(2, SharingLevel::PlusDwt))
        .probe(ProbeMode::Stats)
        .trace_window(1024)
        .build()
        .unwrap();
    assert_clean(&cfg, &bench_nets(2));
}

#[test]
fn channel_partition_is_clean() {
    let cfg = SystemConfig::bench(2, SharingLevel::Static).with_channel_partition(vec![6, 2]);
    assert_clean(&cfg, &bench_nets(2));
}

#[test]
fn multi_iteration_run_is_clean() {
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    cfg.iterations = 3;
    assert_clean(&cfg, &bench_nets(2));
}

#[test]
fn full_zoo_quad_is_clean() {
    // Every zoo workload, cycled over a shared-everything quad chip.
    let nets = zoo::all(Scale::Bench);
    for chunk in nets.chunks(4) {
        let cfg = SystemConfig::bench(chunk.len(), SharingLevel::PlusDwt);
        assert_clean(&cfg, chunk);
    }
}
