//! Every metamorphic law must hold on a stock configuration it applies
//! to, and the applicability predicate must encode the scope rules the
//! fuzzer established (private DRAM and translation off for the
//! bandwidth-monotonicity laws; see the module doc in
//! `mnpu_validate::metamorphic`).

use mnpu_engine::{SharingLevel, SystemConfig};
use mnpu_model::{zoo, Network, Scale};
use mnpu_validate::Law;

fn nets(n: usize) -> Vec<Network> {
    let pool = [zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench), zoo::yolo_tiny(Scale::Bench)];
    (0..n).map(|i| pool[i % pool.len()].clone()).collect()
}

/// A configuration each law applies to, used by `every_law_holds...`.
fn config_for(law: Law) -> SystemConfig {
    match law {
        Law::SingleCoreSharingIrrelevant => SystemConfig::bench(1, SharingLevel::PlusDwt),
        Law::StaticIsolation => SystemConfig::bench(2, SharingLevel::Static),
        Law::MoreChannelsNeverSlower | Law::FasterDramNeverSlower => {
            SystemConfig::bench(2, SharingLevel::Static).without_translation()
        }
        Law::LargerPagesNeverMoreWalks => SystemConfig::bench(2, SharingLevel::PlusDwt),
        Law::CoRunnerNeverHelps => SystemConfig::bench(2, SharingLevel::PlusDwt),
        Law::ChannelPartitionPreservesTraffic => SystemConfig::bench(2, SharingLevel::Static),
        Law::IdealMemoryIsLowerBound => SystemConfig::bench(2, SharingLevel::PlusDwt),
        Law::TranslationOffRemovesWalks => SystemConfig::bench(2, SharingLevel::PlusDwt),
        // The bench preset's timing (tCCD <= burst) is exactly the regime
        // where the DRAM fast path activates, so this exercises real
        // fast-forwarded runs, not a vacuous comparison.
        Law::FastForwardExact => SystemConfig::bench(2, SharingLevel::PlusDwt),
        // Full sharing puts shared-DRAM, shared-walker and shared-TLB
        // state in the checkpoint — the richest payload to round-trip.
        Law::SnapshotResumeExact => SystemConfig::bench(2, SharingLevel::PlusDwt),
    }
}

#[test]
fn every_law_holds_on_its_stock_configuration() {
    for law in Law::ALL {
        let cfg = config_for(law);
        assert!(law.applicable(&cfg), "{} should apply to its stock config", law.name());
        let violations = law.check(&cfg, &nets(cfg.cores));
        assert!(
            violations.is_empty(),
            "law {} violated on a stock configuration:\n{}",
            law.name(),
            violations.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
        );
    }
}

#[test]
fn bandwidth_laws_refuse_shared_dram() {
    // Under shared DRAM, faster service empties the queues FR-FCFS needs
    // for row locality; monotonicity is false there and must not be
    // claimed (the fuzzer produced a 43 % chip-level regression from a
    // bandwidth doubling).
    let shared = SystemConfig::bench(2, SharingLevel::PlusD).without_translation();
    assert!(!Law::MoreChannelsNeverSlower.applicable(&shared));
    assert!(!Law::FasterDramNeverSlower.applicable(&shared));
    let private = SystemConfig::bench(2, SharingLevel::Static).without_translation();
    assert!(Law::MoreChannelsNeverSlower.applicable(&private));
    assert!(Law::FasterDramNeverSlower.applicable(&private));
}

#[test]
fn bandwidth_laws_refuse_translation() {
    // Translation assigns physical frames; changing DRAM geometry under a
    // different frame layout is not a pointwise-comparable experiment.
    let on = SystemConfig::bench(1, SharingLevel::PlusDwt);
    assert!(on.translation);
    assert!(!Law::MoreChannelsNeverSlower.applicable(&on));
    assert!(!Law::FasterDramNeverSlower.applicable(&on));
    assert!(Law::MoreChannelsNeverSlower.applicable(&on.clone().without_translation()));
}

#[test]
fn static_isolation_requires_static_sharing() {
    for sharing in [SharingLevel::PlusD, SharingLevel::PlusDw, SharingLevel::PlusDwt] {
        assert!(!Law::StaticIsolation.applicable(&SystemConfig::bench(2, sharing)));
    }
    assert!(!Law::StaticIsolation.applicable(&SystemConfig::bench(1, SharingLevel::Static)));
}

#[test]
fn larger_pages_law_stops_at_the_largest_page() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt).with_page_size(1_048_576);
    assert!(!Law::LargerPagesNeverMoreWalks.applicable(&cfg));
    let cfg = cfg.without_translation();
    assert!(!Law::TranslationOffRemovesWalks.applicable(&cfg));
}
