//! Property-based and metamorphic tests of the serve-mode scheduling
//! layer: the conservation oracle over randomized scenarios, and the
//! arrival-delay law on private-resource chips.

use mnpu_config::{ArrivalSpec, JobSpec, PolicySpec, ScenarioSpec};
use mnpu_engine::{SharingLevel, SystemConfig};
use mnpu_sched::serve;
use mnpu_validate::{check_delay_law, check_serve};
use proptest::prelude::*;

/// A small random scenario: 1–2 cores, 2–4 cheap zoo jobs, a random
/// arrival pattern and FIFO policy. Kept tiny so the suite stays in the
/// seconds range; the fuzzer covers the wilder chip configurations.
fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (1usize..3, proptest::collection::vec(0usize..2, 2..5), 0u64..4, 0u64..150_000, 0u32..2)
        .prop_map(|(cores, picks, seed, increment, round_robin)| {
            let round_robin = round_robin == 1;
            let names = ["ncf", "dlrm"];
            let jobs = picks
                .into_iter()
                .map(|p| JobSpec { network: names[p].to_string(), arrival: None, core: None })
                .collect();
            ScenarioSpec {
                system: SystemConfig::bench(cores, SharingLevel::PlusDwt),
                scale: mnpu_model::Scale::Bench,
                seed,
                arrival: if increment % 2 == 0 {
                    ArrivalSpec::FixedIncrement { increment }
                } else {
                    ArrivalSpec::Bursty { burst: 2, mean_gap: increment }
                },
                policy: if round_robin { PolicySpec::RoundRobin } else { PolicySpec::FirstFree },
                jobs,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// `arrival + queueing + service = completion` — and every other serve
    /// oracle — holds exactly on randomized scenarios.
    #[test]
    fn prop_serve_conservation(spec in arb_scenario()) {
        let report = serve(&spec);
        let violations = check_serve(&spec, &report);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        // Spell the keystone law out locally too, independent of the
        // oracle's own arithmetic.
        for j in &report.jobs {
            prop_assert_eq!(j.arrival + j.queueing() + j.service(), j.completion);
        }
    }

    /// Serving the same scenario twice is byte-identical.
    #[test]
    fn prop_serve_determinism(spec in arb_scenario()) {
        prop_assert_eq!(serve(&spec).to_json(), serve(&spec).to_json());
    }
}

/// Delaying one job's arrival never decreases any other job's completion
/// when every job owns its core and resources are statically partitioned.
#[test]
fn delay_law_static_chip_various_delays() {
    let spec = ScenarioSpec {
        system: SystemConfig::bench(2, SharingLevel::Static),
        scale: mnpu_model::Scale::Bench,
        seed: 0,
        arrival: ArrivalSpec::Explicit,
        policy: PolicySpec::Pinned,
        jobs: vec![
            JobSpec { network: "ncf".into(), arrival: Some(0), core: Some(0) },
            JobSpec { network: "dlrm".into(), arrival: Some(0), core: Some(1) },
        ],
    };
    for (delayed, delay) in [(0, 10_000), (0, 1_000_000), (1, 250_000)] {
        let v = check_delay_law(&spec, delayed, delay);
        assert!(v.is_empty(), "delay {delay} of job {delayed}: {v:?}");
    }
}

/// The law also holds with a queue involved: two jobs pinned to the same
/// core plus a bystander on the other — delaying the bystander must not
/// pull the pinned pair earlier.
#[test]
fn delay_law_with_queueing_on_the_other_core() {
    let spec = ScenarioSpec {
        system: SystemConfig::bench(2, SharingLevel::Static),
        scale: mnpu_model::Scale::Bench,
        seed: 0,
        arrival: ArrivalSpec::Explicit,
        policy: PolicySpec::Pinned,
        jobs: vec![
            JobSpec { network: "ncf".into(), arrival: Some(0), core: Some(0) },
            JobSpec { network: "ncf".into(), arrival: Some(0), core: Some(0) },
            JobSpec { network: "dlrm".into(), arrival: Some(0), core: Some(1) },
        ],
    };
    let v = check_delay_law(&spec, 2, 400_000);
    assert!(v.is_empty(), "{v:?}");
}
