//! Fuzzer smoke tests: a short deterministic run must be clean (the CI
//! job runs the long version), and the outcome must be reproducible.

use mnpu_validate::{run_fuzz, FuzzOptions};

#[test]
fn short_fuzz_run_is_clean() {
    let outcome = run_fuzz(&FuzzOptions { iters: 12, seed: 42, ..FuzzOptions::default() });
    assert_eq!(outcome.iterations, 12);
    assert!(
        outcome.clean(),
        "violations: {:?}",
        outcome
            .failures
            .iter()
            .flat_map(|f| f.violations.iter().map(|v| v.to_string()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn fuzz_outcome_is_deterministic() {
    let opts = FuzzOptions { iters: 4, seed: 9, ..FuzzOptions::default() };
    let a = run_fuzz(&opts);
    let b = run_fuzz(&opts);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.failures.len(), b.failures.len());
}
