//! Mutation coverage for the oracle suite: deliberately break a timing
//! constant or tamper with a field of a genuine report, and assert that a
//! specific oracle notices. This is the proof the validation layer has
//! teeth — an oracle suite that accepts everything would also pass the
//! stock-preset tests.

use mnpu_engine::{ProbeMode, SharingLevel, Simulation, SystemConfig, SystemConfigBuilder};
use mnpu_model::{zoo, Network, Scale};
use mnpu_validate::check_run;

fn setup() -> (SystemConfig, Vec<Network>, mnpu_engine::RunReport) {
    let cfg = SystemConfigBuilder::from_config(SystemConfig::bench(2, SharingLevel::PlusDwt))
        .probe(ProbeMode::Stats)
        .build()
        .unwrap();
    let nets = vec![zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench)];
    let report = Simulation::execute_networks(&cfg, &nets);
    (cfg, nets, report)
}

fn oracles_fired(violations: &[mnpu_validate::Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.oracle).collect()
}

/// The ISSUE's acceptance mutation: a broken DRAM timing constant. The
/// report was produced with `burst_cycles = 8`; validating it against a
/// configuration claiming `burst_cycles = 1` must trip the per-channel
/// bandwidth equality (`busy_cycles == transactions x burst`).
#[test]
fn broken_burst_constant_is_caught() {
    let (cfg, nets, report) = setup();
    let mut broken = cfg.clone();
    broken.dram.timing.burst_cycles = 1;
    let fired = oracles_fired(&check_run(&broken, &nets, &report));
    assert!(
        fired.contains(&"dram-bandwidth"),
        "dram-bandwidth oracle missed a broken burst constant; fired: {fired:?}"
    );
}

#[test]
fn impossibly_fast_core_is_caught() {
    let (cfg, nets, mut report) = setup();
    report.cores[0].cycles = report.cores[0].compute_cycles - 1;
    let fired = oracles_fired(&check_run(&cfg, &nets, &report));
    assert!(
        fired.contains(&"compute-roofline"),
        "compute-roofline missed a core beating its own systolic array; fired: {fired:?}"
    );
}

#[test]
fn tampered_walk_bytes_are_caught() {
    let (cfg, nets, mut report) = setup();
    report.cores[0].walk_bytes += 64;
    let fired = oracles_fired(&check_run(&cfg, &nets, &report));
    assert!(
        fired.contains(&"walk-conservation"),
        "walk-conservation missed an extra PTE line; fired: {fired:?}"
    );
}

#[test]
fn tampered_traffic_is_caught() {
    let (cfg, nets, mut report) = setup();
    report.cores[0].traffic_bytes += 64;
    let fired = oracles_fired(&check_run(&cfg, &nets, &report));
    assert!(
        fired.contains(&"traffic-exact"),
        "traffic-exact missed a phantom transaction; fired: {fired:?}"
    );
    assert!(
        fired.contains(&"dram-conservation"),
        "core-vs-DRAM conservation missed a phantom transaction; fired: {fired:?}"
    );
}

#[test]
fn tampered_stall_breakdown_is_caught() {
    let (cfg, nets, mut report) = setup();
    let stats = report.stats.as_mut().expect("probe stats enabled");
    stats.cores[0].stall.compute += 1;
    let fired = oracles_fired(&check_run(&cfg, &nets, &report));
    assert!(
        fired.contains(&"stall-partition"),
        "stall-partition missed a non-partitioning breakdown; fired: {fired:?}"
    );
}

#[test]
fn tampered_channel_fold_is_caught() {
    let (cfg, nets, mut report) = setup();
    report.dram.per_channel[0].row_hits += 1;
    let fired = oracles_fired(&check_run(&cfg, &nets, &report));
    assert!(
        fired.contains(&"dram-conservation"),
        "per-channel fold mismatch not caught; fired: {fired:?}"
    );
}

#[test]
fn dropped_core_report_is_caught() {
    let (cfg, nets, mut report) = setup();
    report.cores.pop();
    let fired = oracles_fired(&check_run(&cfg, &nets, &report));
    assert!(fired.contains(&"report-shape"), "missing core report not caught; fired: {fired:?}");
}
