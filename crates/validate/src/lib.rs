//! Correctness tooling for the simulator: the executable answer to "why
//! should anyone believe these cycle counts?".
//!
//! Golden fixtures pin behavior byte-for-byte, but they only prove the
//! engine still does *what it did yesterday* — not that what it does is
//! physically possible. This crate adds three semantic layers on top:
//!
//! 1. **Analytical oracles** ([`oracle`]): closed-form bounds and
//!    conservation laws every run must respect, derived independently from
//!    the configuration and the workload trace — the compute roofline from
//!    the systolic timing model, the per-channel DRAM bandwidth bound,
//!    walk-byte conservation from the MMU's radix depth, and the
//!    stall-category partition of active cycles. Several are exact
//!    equalities, not just bounds.
//! 2. **Metamorphic invariants** ([`metamorphic`]): directional laws
//!    across *paired* simulations — more bandwidth never slows a chip
//!    down, larger pages never walk more, a co-runner never speeds up its
//!    victim, static partitioning isolates perfectly. No ground truth
//!    needed: the second run is the first run's oracle.
//! 3. **A deterministic fuzzer** ([`fuzz`], `mnpu_fuzz` binary): seeded
//!    generation of random-but-valid configurations and networks, short
//!    simulations under the stats probe, every oracle applied to each, one
//!    metamorphic law sampled per iteration, and greedy shrinking to a
//!    minimized JSON repro artifact on failure. A fraction of cases also
//!    carry a serve-mode scenario, so the scheduling layer is fuzzed with
//!    the same rigor as the engine.
//! 4. **Serve-mode oracles** ([`serve`]): conservation laws for the
//!    dynamic scheduling layer — `arrival + queueing + service =
//!    completion` exactly, core exclusivity, arrival purity — and the
//!    arrival-delay metamorphic law for private-resource scenarios.
//!
//! Every future perf PR runs against this net in CI; a hot-path change
//! that warps a single conservation law is caught even if it produces a
//! plausible-looking report.

pub mod fuzz;
pub mod metamorphic;
pub mod oracle;
pub mod serve;

pub use fuzz::{run_fuzz, FuzzCase, FuzzOptions, FuzzOutcome};
pub use metamorphic::Law;
pub use oracle::{check_run, check_traced, Violation};
pub use serve::{check_delay_law, check_serve};
