//! Metamorphic invariants: directional laws across paired simulations.
//!
//! No analytical model can predict a contended run's exact cycle count,
//! but physics still constrains how the count may *move* when the
//! configuration moves. Each law here runs the simulator twice (or more)
//! on related configurations and checks the relation:
//!
//! * **Exact laws** hold to the bit on counters: a single-core chip
//!   behaves identically at every sharing level (it owns everything
//!   either way), a statically partitioned core moves the same bytes and
//!   walks the same pages regardless of its co-runner, and data traffic
//!   is trace arithmetic regardless of channel splits.
//! * **Directional laws** bound the direction of change: more bandwidth
//!   or channels never slows the chip, larger pages never walk more, a
//!   co-runner never speeds up its victim beyond near-idle co-runners on
//!   the identical chip, ideal memory is a lower bound on real memory.
//!   Directional *cycle* comparisons allow [`cycle_slack`] — FR-FCFS
//!   reordering, refresh alignment and clock-domain rounding can move a
//!   discrete event schedule by a hair even when the physical resource
//!   strictly improved. The slack is far below any real contention
//!   effect (the paper's slowdowns are 1.1–2×).
//!
//! Two scope rules the fuzzer forced on us: the bandwidth-monotonicity
//! laws only bind when each core owns its DRAM channels. Under shared
//! DRAM they are simply false — faster service drains the shared queue,
//! FR-FCFS loses its pool of same-row candidates, and the cores' streams
//! ping-pong the row buffer: the fuzzer produced a chip that finished
//! 43 % *later* after its bandwidth was doubled, with channel row
//! conflicts up 20×. And they only bind with translation off — the page
//! table assigns physical frames, so translation changes the
//! channel/bank/row layout of the same workload.
//!
//! Used three ways: directly by `tests/metamorphic.rs` on the bundled
//! presets, sampled per-iteration by the fuzzer, and as the semantic net
//! that catches broken timing constants (see `tests/mutation.rs`).

use crate::oracle::Violation;
use mnpu_engine::{MemoryModel, RunReport, SharingLevel, Simulation, SystemConfig};
use mnpu_model::Network;
use mnpu_systolic::WorkloadTrace;

/// Slack allowed when comparing cycle counts of two *different* discrete
/// schedules: 5 % relative, plus two refresh cycles (`trfc`) and 64 cycles
/// absolute.
///
/// Calibrated against the fuzzer rather than chosen a priori: changing any
/// resource re-aligns the whole event schedule, and the observed noise
/// floor is a shifted refresh window (up to `trfc` per channel on the
/// critical path) plus a handful of row activations. Short runs make that
/// noise proportionally large, hence the absolute terms. The slack still
/// catches gross regressions — the FR-FCFS starvation defect this suite
/// originally flagged was a 149 % cycle increase, two orders of magnitude
/// above this floor.
pub fn cycle_slack(base: u64, trfc: u64) -> u64 {
    base / 20 + 2 * trfc + 64
}

/// Slack for the static-isolation cycle comparison: 1 % relative plus 32
/// cycles absolute.
///
/// Much tighter than [`cycle_slack`] because nothing physical changes
/// between the two runs — same chip, same victim workload. The only
/// legitimate wiggle is event-granularity: a stalled issue is retried at
/// global event times, so a different co-runner means different retry
/// instants (observed drift: single-digit cycles on runs of thousands).
/// Real cross-core interference under `Static` would be a contention
/// effect orders of magnitude above this bound.
pub fn isolation_slack(base: u64) -> u64 {
    base / 100 + 32
}

/// The metamorphic laws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Law {
    /// A single-core chip reports identically under every sharing level:
    /// with one core there is nothing to share. Exact.
    SingleCoreSharingIrrelevant,
    /// Under `Static` sharing (fully private channels, walkers, TLBs) a
    /// core's work is independent of what its co-runners run: bytes,
    /// walks, misses and compute cycles match exactly. Cycles are only
    /// bounded by [`isolation_slack`]: a stalled issue is retried at
    /// *global* event times, so a co-runner's events add or remove retry
    /// opportunities and can shift the victim's schedule by a handful of
    /// cycles even though no resource is shared. (`tlb_hits` counts those
    /// retry attempts and is excluded for the same reason.)
    StaticIsolation,
    /// Doubling every core's channel count never increases any core's
    /// cycles (slack-bounded). Only claimed where each core owns its
    /// channels (single core, or a sharing level that keeps DRAM
    /// private) and with translation off — see the module doc for why
    /// the fuzzer forced both restrictions.
    MoreChannelsNeverSlower,
    /// Halving `burst_cycles` (doubling per-channel bandwidth) never
    /// increases any core's cycles (slack-bounded). Same scope as
    /// [`Law::MoreChannelsNeverSlower`]: private DRAM, translation off.
    FasterDramNeverSlower,
    /// A larger page size never increases any core's walk count: fewer,
    /// bigger pages cover the same footprint. Exact (counts, not cycles).
    LargerPagesNeverMoreWalks,
    /// Real co-runners can never make a core faster than near-idle ones:
    /// on the *identical* chip, replacing every co-runner's workload with
    /// a trivial one only removes interference (the paper's slowdown >= 1,
    /// §4.1.3, restated so both runs share one address layout — comparing
    /// against a resized solo chip is invalid because channel/TLB geometry
    /// changes the physical mapping itself). Slack-bounded.
    CoRunnerNeverHelps,
    /// Any static channel partition leaves each core's data traffic
    /// exactly as the trace dictates: timing moves, bytes do not. Exact.
    ChannelPartitionPreservesTraffic,
    /// Fixed-latency, infinite-bandwidth memory is a lower bound on the
    /// timing model (slack-bounded).
    IdealMemoryIsLowerBound,
    /// Disabling address translation zeroes every core's walk count and
    /// walk bytes while leaving its data traffic untouched. Exact. (A
    /// *cycle* comparison is deliberately not made: the fuzzer showed
    /// translation can speed a run up — frame assignment changes the
    /// physical layout, and better row/channel locality can outweigh the
    /// walk overhead.)
    TranslationOffRemovesWalks,
    /// The DRAM steady-state fast-forward is a wall-clock optimization and
    /// nothing else: flipping [`mnpu_dram::DramConfig::fastfwd`] must leave
    /// the *entire* [`RunReport`] bit-identical — cycles, stats, energy,
    /// logs. Exact, with zero slack: unlike every directional law above,
    /// the two runs simulate the same machine, so any divergence at all is
    /// a fast-path bug (see the invariants section in DESIGN.md).
    FastForwardExact,
    /// Checkpointing a run mid-flight and resuming the snapshot in a
    /// freshly built simulation must reproduce the uninterrupted run's
    /// *entire* [`RunReport`] bit-identically — cycles, stats, energy,
    /// logs. Exact, with zero slack, like [`Law::FastForwardExact`]: both
    /// runs simulate the same machine, so any divergence at all is a
    /// checkpoint/restore bug — a field the snapshot codec missed, or one
    /// it reinstated wrong.
    SnapshotResumeExact,
}

impl Law {
    /// Every law, in a stable order.
    pub const ALL: [Law; 11] = [
        Law::SingleCoreSharingIrrelevant,
        Law::StaticIsolation,
        Law::MoreChannelsNeverSlower,
        Law::FasterDramNeverSlower,
        Law::LargerPagesNeverMoreWalks,
        Law::CoRunnerNeverHelps,
        Law::ChannelPartitionPreservesTraffic,
        Law::IdealMemoryIsLowerBound,
        Law::TranslationOffRemovesWalks,
        Law::FastForwardExact,
        Law::SnapshotResumeExact,
    ];

    /// Stable identifier used in violations and repro artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Law::SingleCoreSharingIrrelevant => "single-core-sharing-irrelevant",
            Law::StaticIsolation => "static-isolation",
            Law::MoreChannelsNeverSlower => "more-channels-never-slower",
            Law::FasterDramNeverSlower => "faster-dram-never-slower",
            Law::LargerPagesNeverMoreWalks => "larger-pages-never-more-walks",
            Law::CoRunnerNeverHelps => "co-runner-never-helps",
            Law::ChannelPartitionPreservesTraffic => "channel-partition-preserves-traffic",
            Law::IdealMemoryIsLowerBound => "ideal-memory-is-lower-bound",
            Law::TranslationOffRemovesWalks => "translation-off-removes-walks",
            Law::FastForwardExact => "fastfwd-exact",
            Law::SnapshotResumeExact => "snapshot-resume-exact",
        }
    }

    /// Whether this law can be instantiated for `cfg` as given. Laws
    /// mutate the configuration; preconditions keep the mutants valid.
    pub fn applicable(self, cfg: &SystemConfig) -> bool {
        let timing = matches!(cfg.memory, MemoryModel::Timing);
        match self {
            Law::SingleCoreSharingIrrelevant => cfg.cores == 1,
            Law::StaticIsolation => {
                cfg.cores >= 2
                    && cfg.sharing == SharingLevel::Static
                    && cfg.channel_partition.is_none()
                    && cfg.ptw_partition.is_none()
            }
            Law::MoreChannelsNeverSlower => {
                timing && !cfg.translation && dram_private(cfg) && cfg.channel_partition.is_none()
            }
            Law::FasterDramNeverSlower => {
                timing && !cfg.translation && dram_private(cfg) && cfg.dram.timing.burst_cycles >= 2
            }
            Law::LargerPagesNeverMoreWalks => cfg.translation && cfg.mmu.page_bytes < 1_048_576,
            Law::CoRunnerNeverHelps => cfg.cores >= 2 && cfg.start_cycles.is_empty(),
            Law::ChannelPartitionPreservesTraffic => {
                cfg.cores >= 2
                    && !cfg.sharing.shares_dram()
                    && cfg.channel_partition.is_none()
                    && cfg.channels_per_core >= 2
            }
            Law::IdealMemoryIsLowerBound => timing,
            Law::TranslationOffRemovesWalks => cfg.translation,
            // Only the timing model has a scheduler to fast-forward. The
            // flip must go the interesting way, so require it on (the
            // fuzzer generates both settings). Note `MNPU_NO_FASTFWD`
            // forces both runs to the slow path, making the check vacuous
            // rather than wrong.
            Law::FastForwardExact => timing && cfg.dram.fastfwd,
            // Every stateful component implements capture/restore, so the
            // law binds unconditionally — any valid config must survive a
            // mid-run checkpoint.
            Law::SnapshotResumeExact => true,
        }
    }

    /// Run the paired simulations and check the law. `nets` must hold one
    /// network per core of `cfg`. Returns violations (empty = law holds).
    ///
    /// # Panics
    ///
    /// Panics if the law is not [`applicable`](Law::applicable) to `cfg`
    /// or the simulation itself panics (invalid config, watchdog).
    pub fn check(self, cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
        assert!(self.applicable(cfg), "law {} not applicable", self.name());
        match self {
            Law::SingleCoreSharingIrrelevant => single_core_sharing(cfg, nets),
            Law::StaticIsolation => static_isolation(cfg, nets),
            Law::MoreChannelsNeverSlower => more_channels(cfg, nets),
            Law::FasterDramNeverSlower => faster_dram(cfg, nets),
            Law::LargerPagesNeverMoreWalks => larger_pages(cfg, nets),
            Law::CoRunnerNeverHelps => co_runner(cfg, nets),
            Law::ChannelPartitionPreservesTraffic => partition_traffic(cfg, nets),
            Law::IdealMemoryIsLowerBound => ideal_lower_bound(cfg, nets),
            Law::TranslationOffRemovesWalks => translation_off(cfg, nets),
            Law::FastForwardExact => fastfwd_exact(cfg, nets),
            Law::SnapshotResumeExact => snapshot_resume_exact(cfg, nets),
        }
    }
}

fn violation(law: Law, core: Option<usize>, detail: String) -> Violation {
    Violation { oracle: law.name(), core, detail }
}

fn run(cfg: &SystemConfig, nets: &[Network]) -> RunReport {
    Simulation::execute_networks(cfg, nets)
}

/// Compare per-core cycles of `base` (expected >=) against `improved`,
/// allowing [`cycle_slack`] on the faster run.
fn expect_not_slower(
    law: Law,
    label: &str,
    trfc: u64,
    base: &RunReport,
    improved: &RunReport,
    out: &mut Vec<Violation>,
) {
    for (ci, (b, i)) in base.cores.iter().zip(&improved.cores).enumerate() {
        if i.cycles > b.cycles + cycle_slack(b.cycles, trfc) {
            out.push(violation(
                law,
                Some(ci),
                format!(
                    "{label}: cycles went {} -> {} (regression beyond slack)",
                    b.cycles, i.cycles
                ),
            ));
        }
    }
}

/// Whether every core owns its DRAM channels outright — the scope in
/// which the bandwidth-monotonicity laws hold (see the module doc).
fn dram_private(cfg: &SystemConfig) -> bool {
    cfg.cores == 1 || !cfg.sharing.shares_dram()
}

fn single_core_sharing(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::SingleCoreSharingIrrelevant;
    let mut out = Vec::new();
    let base = run(cfg, nets);
    for level in [
        SharingLevel::Ideal,
        SharingLevel::Static,
        SharingLevel::PlusD,
        SharingLevel::PlusDw,
        SharingLevel::PlusDwt,
    ] {
        if level == cfg.sharing {
            continue;
        }
        let mut alt = cfg.clone();
        alt.sharing = level;
        // Partitions/bounds are tied to the original level's sharing
        // properties; a single core owns everything regardless.
        alt.channel_partition = None;
        alt.ptw_partition = None;
        alt.ptw_bounds = None;
        if alt.validate().is_err() {
            continue;
        }
        let r = run(&alt, nets);
        if r != base {
            out.push(violation(
                law,
                None,
                format!(
                    "single-core report changed between {:?} and {level:?} (cycles {} vs {})",
                    cfg.sharing, base.total_cycles, r.total_cycles
                ),
            ));
        }
    }
    out
}

fn fastfwd_exact(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::FastForwardExact;
    let mut out = Vec::new();
    let base = run(cfg, nets);
    let mut alt = cfg.clone();
    alt.dram.fastfwd = false;
    let r = run(&alt, nets);
    // Zero slack: the fast path is a closed-form replay of the exact
    // per-command schedule, so the *entire* report must be bit-identical.
    if r != base {
        out.push(violation(
            law,
            None,
            format!(
                "fast-forward changed the report (cycles {} vs {}, dram txns {} vs {})",
                base.total_cycles,
                r.total_cycles,
                base.dram.total.transactions(),
                r.dram.total.transactions()
            ),
        ));
    }
    out
}

fn snapshot_resume_exact(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::SnapshotResumeExact;
    let mut out = Vec::new();
    let traces: Vec<WorkloadTrace> =
        nets.iter().zip(&cfg.arch).map(|(n, a)| WorkloadTrace::generate(n, a)).collect();
    let base = Simulation::execute(cfg, &traces);
    // Checkpoint halfway through the run — deep enough that every
    // component carries real in-flight state, with the back half left to
    // expose any of it the restore got wrong. (The engine's proptest
    // lockstep suite sweeps the checkpoint point itself; the fuzzer's job
    // here is to sweep the *configuration* space.)
    let at = base.total_cycles / 2;
    let resumed = Simulation::execute_checkpointed(cfg, &traces, at);
    // Zero slack: restore reinstates the same machine mid-schedule, so
    // the entire report must be bit-identical.
    if resumed != base {
        out.push(violation(
            law,
            None,
            format!(
                "resuming from the cycle-{at} checkpoint changed the report \
                 (cycles {} vs {}, dram txns {} vs {})",
                base.total_cycles,
                resumed.total_cycles,
                base.dram.total.transactions(),
                resumed.dram.total.transactions()
            ),
        ));
    }
    out
}

fn static_isolation(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::StaticIsolation;
    let mut out = Vec::new();
    let base = run(cfg, nets);
    // Replace every co-runner of core 0 with a very different workload.
    let alt_net =
        mnpu_model::randnet::generate(&mnpu_model::randnet::RandNetConfig::small(), 0xA17);
    let mut alt_nets = nets.to_vec();
    for n in alt_nets.iter_mut().skip(1) {
        *n = alt_net.clone();
    }
    let swapped = run(cfg, &alt_nets);
    // Counters are exact; cycles (and anything derived from the event
    // schedule: utilization, per-layer splits, retry-attempt counts) only
    // bounded, because stalled issues are retried at global event times
    // and the co-runner's events shift those instants (see the Law doc).
    let (b, s) = (&base.cores[0], &swapped.cores[0]);
    let exact = [
        ("compute_cycles", b.compute_cycles, s.compute_cycles),
        ("traffic_bytes", b.traffic_bytes, s.traffic_bytes),
        ("walk_bytes", b.walk_bytes, s.walk_bytes),
        ("footprint_bytes", b.footprint_bytes, s.footprint_bytes),
        ("walks", b.mmu.walks, s.mmu.walks),
        ("tlb_misses", b.mmu.tlb_misses, s.mmu.tlb_misses),
    ];
    for (field, bv, sv) in exact {
        if bv != sv {
            out.push(violation(
                law,
                Some(0),
                format!("statically partitioned core noticed its co-runner: {field} {bv} vs {sv}"),
            ));
        }
    }
    if b.cycles.abs_diff(s.cycles) > isolation_slack(b.cycles) {
        out.push(violation(
            law,
            Some(0),
            format!(
                "statically partitioned core noticed its co-runner: cycles {} vs {} \
                 (beyond isolation slack {})",
                b.cycles,
                s.cycles,
                isolation_slack(b.cycles)
            ),
        ));
    }
    out
}

fn more_channels(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let mut doubled = cfg.clone();
    doubled.channels_per_core *= 2;
    let base = run(cfg, nets);
    let fast = run(&doubled, nets);
    let mut out = Vec::new();
    expect_not_slower(
        Law::MoreChannelsNeverSlower,
        "2x channels",
        cfg.dram.timing.trfc,
        &base,
        &fast,
        &mut out,
    );
    out
}

fn faster_dram(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let mut faster = cfg.clone();
    faster.dram.timing.burst_cycles /= 2;
    let base = run(cfg, nets);
    let fast = run(&faster, nets);
    let mut out = Vec::new();
    expect_not_slower(
        Law::FasterDramNeverSlower,
        "2x bandwidth",
        cfg.dram.timing.trfc,
        &base,
        &fast,
        &mut out,
    );
    out
}

fn larger_pages(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::LargerPagesNeverMoreWalks;
    let next = if cfg.mmu.page_bytes == 4096 { 65536 } else { 1_048_576 };
    let mut big = cfg.clone();
    big.mmu.page_bytes = next;
    let base = run(cfg, nets);
    let bigger = run(&big, nets);
    let mut out = Vec::new();
    for (ci, (b, g)) in base.cores.iter().zip(&bigger.cores).enumerate() {
        if g.mmu.walks > b.mmu.walks {
            out.push(violation(
                law,
                Some(ci),
                format!(
                    "walks rose {} -> {} going from {}B to {next}B pages",
                    b.mmu.walks, g.mmu.walks, cfg.mmu.page_bytes
                ),
            ));
        }
    }
    out
}

/// A minimal workload for baseline co-runners: one 1×1×1 GEMM, a handful
/// of transactions. Small enough that its interference sits far inside
/// [`cycle_slack`], while keeping the chip — and therefore the victim's
/// address layout — bit-identical to the contended run.
fn idle_net() -> Network {
    Network::new("idle", vec![mnpu_model::Layer::gemm("g", mnpu_model::GemmSpec::new(1, 1, 1))])
}

fn co_runner(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::CoRunnerNeverHelps;
    let mut out = Vec::new();
    let contended = run(cfg, nets);
    for victim in 0..cfg.cores {
        let mut baseline_nets: Vec<Network> = (0..cfg.cores).map(|_| idle_net()).collect();
        baseline_nets[victim] = nets[victim].clone();
        let baseline = run(cfg, &baseline_nets);
        let lower = baseline.cores[victim].cycles;
        let observed = contended.cores[victim].cycles;
        if observed + cycle_slack(lower, cfg.dram.timing.trfc) < lower {
            out.push(violation(
                law,
                Some(victim),
                format!("co-run {observed} cycles beat the near-idle baseline {lower}"),
            ));
        }
    }
    out
}

fn partition_traffic(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::ChannelPartitionPreservesTraffic;
    let mut out = Vec::new();
    let base = run(cfg, nets);
    // Skew the split as far as it goes while keeping every core >= 1.
    let total = cfg.total_channels();
    let mut counts = vec![1usize; cfg.cores];
    counts[0] = total - (cfg.cores - 1);
    let mut skewed = cfg.clone();
    skewed.channel_partition = Some(counts);
    let part = run(&skewed, nets);
    for (ci, (b, p)) in base.cores.iter().zip(&part.cores).enumerate() {
        if b.traffic_bytes != p.traffic_bytes {
            out.push(violation(
                law,
                Some(ci),
                format!(
                    "traffic changed under partitioning: {} vs {} bytes",
                    b.traffic_bytes, p.traffic_bytes
                ),
            ));
        }
        // Walk traffic is deliberately NOT compared: the TLB miss stream
        // and walk coalescing windows depend on transaction completion
        // times, which the partition changes — the fuzzer demonstrated
        // walk-byte drift under repartitioning even with private TLBs.
    }
    out
}

fn ideal_lower_bound(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let mut ideal = cfg.clone();
    ideal.memory = MemoryModel::Ideal { latency: 1 };
    let base = run(cfg, nets);
    let fast = run(&ideal, nets);
    let mut out = Vec::new();
    // Per-core even under shared DRAM: ideal memory serves every request
    // in constant time, so no core's service can be redistributed away.
    expect_not_slower(
        Law::IdealMemoryIsLowerBound,
        "ideal memory",
        cfg.dram.timing.trfc,
        &base,
        &fast,
        &mut out,
    );
    out
}

fn translation_off(cfg: &SystemConfig, nets: &[Network]) -> Vec<Violation> {
    let law = Law::TranslationOffRemovesWalks;
    let mut off_cfg = cfg.clone();
    off_cfg.translation = false;
    let base = run(cfg, nets);
    let off = run(&off_cfg, nets);
    let mut out = Vec::new();
    for (ci, (b, o)) in base.cores.iter().zip(&off.cores).enumerate() {
        if o.mmu.walks != 0 || o.walk_bytes != 0 {
            out.push(violation(
                law,
                Some(ci),
                format!(
                    "translation disabled but {} walks / {} walk bytes reported",
                    o.mmu.walks, o.walk_bytes
                ),
            ));
        }
        if o.traffic_bytes != b.traffic_bytes {
            out.push(violation(
                law,
                Some(ci),
                format!(
                    "data traffic changed when translation was disabled: {} vs {} bytes",
                    b.traffic_bytes, o.traffic_bytes
                ),
            ));
        }
    }
    out
}
