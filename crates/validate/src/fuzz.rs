//! Deterministic configuration/workload fuzzer.
//!
//! Each iteration derives a fresh RNG from `(master_seed, iteration)`,
//! generates a random-but-valid [`SystemConfig`] (through
//! [`SystemConfigBuilder`], so the generator itself is checked against the
//! validator) and one tiny random network per core, runs a short
//! simulation, applies the full [`crate::oracle`] suite, and samples one
//! applicable [`Law`] for a paired metamorphic check. A quarter of the
//! cases additionally checkpoint the run mid-flight and require the
//! resumed report to be bit-identical (the `snapshot-exact` oracle). On
//! failure the case is greedily shrunk and a hand-rolled JSON repro
//! artifact is written.
//!
//! Determinism is load-bearing: `generate_case(seed, i)` is a pure
//! function, so `mnpu_fuzz --seed S --iters N` reproduces byte-identical
//! cases on any machine, and a repro artifact's `(seed, iteration)` pair
//! plus its `shrink_steps` list replays the minimized case exactly.

use crate::metamorphic::Law;
use crate::oracle::{check_run, Violation};
use crate::serve::check_serve;
use mnpu_config::{ArrivalSpec, JobSpec, PolicySpec, ScenarioSpec};
use mnpu_engine::{
    MemoryModel, ProbeMode, SharingLevel, Simulation, SystemConfig, SystemConfigBuilder,
};
use mnpu_model::randnet::{generate, RandNetConfig};
use mnpu_model::{Network, Scale};
use mnpu_sched::serve;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Watchdog for fuzzed runs: generated cases are tiny, so anything this
/// long is a livelock, not a slow workload.
const FUZZ_MAX_CYCLES: u64 = 200_000_000;

/// Fuzzer parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of iterations (cases) to run.
    pub iters: u64,
    /// Master seed; every case is a pure function of `(seed, iteration)`.
    pub seed: u64,
    /// Directory for JSON repro artifacts (`repro-iter<N>.json`); `None`
    /// disables artifact writing.
    pub out_dir: Option<PathBuf>,
    /// Budget of extra simulations the shrinker may spend per failure.
    pub max_shrink_sims: usize,
    /// Print per-iteration progress to stderr.
    pub verbose: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions { iters: 50, seed: 0, out_dir: None, max_shrink_sims: 40, verbose: false }
    }
}

/// One generated case: a valid configuration, one network per core, and
/// the metamorphic law sampled for it (if any is applicable).
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The generated (validated) system configuration.
    pub config: SystemConfig,
    /// One workload per core.
    pub nets: Vec<Network>,
    /// Seeds the networks were generated from (for the artifact).
    pub net_seeds: Vec<u64>,
    /// Metamorphic law sampled for this iteration, if one applies.
    pub law: Option<Law>,
    /// Optional serve-mode scenario on the same chip — arrivals, policy
    /// and job list all pure functions of `(seed, iteration)` — checked
    /// with the [`crate::serve`] conservation oracles.
    pub serve: Option<ScenarioSpec>,
    /// Checkpoint point for the `snapshot-exact` oracle, in permille of
    /// the base run's span (`None` skips the oracle). Drawn *last* in
    /// [`generate_case`] so every earlier draw keeps the byte stream it
    /// had before this field existed — old `(seed, iteration)` repro
    /// pairs still replay the same chip and workloads.
    pub snapshot_at: Option<u64>,
}

/// One failing case, after shrinking.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Iteration index the case came from.
    pub iteration: u64,
    /// Violations of the *minimized* case.
    pub violations: Vec<Violation>,
    /// Names of the shrink steps that were applied, in order. Replaying
    /// them on `generate_case(seed, iteration)` reproduces the minimized
    /// case exactly.
    pub shrink_steps: Vec<&'static str>,
    /// Path of the JSON repro artifact, when one was written.
    pub artifact: Option<PathBuf>,
}

/// Result of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Iterations executed.
    pub iterations: u64,
    /// All failures found (empty = clean run).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzOutcome {
    /// `true` when no iteration produced a violation.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.random_range(0..xs.len())]
}

/// Split `total` into `parts` positive integers, uniformly at random.
fn random_split(rng: &mut StdRng, total: usize, parts: usize) -> Vec<usize> {
    let mut counts = vec![1usize; parts];
    for _ in 0..total - parts {
        counts[rng.random_range(0..parts)] += 1;
    }
    counts
}

/// Generate iteration `iteration` of the run seeded with `master_seed`.
///
/// Pure: the same `(master_seed, iteration)` pair always produces the same
/// case, independent of which other iterations ran.
///
/// # Panics
///
/// Panics if the generated configuration fails validation — by
/// construction it never should, so a panic here is itself a fuzzing
/// finding (the generator and the validator disagree about what is valid).
pub fn generate_case(master_seed: u64, iteration: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(
        master_seed ^ iteration.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x6d4e_5055),
    );

    let cores = rng.random_range(1usize..=3);
    let sharing = if cores == 1 && rng.random_bool(0.3) {
        SharingLevel::Ideal
    } else {
        *pick(&mut rng, &SharingLevel::CO_RUN_LEVELS)
    };

    let mut cfg = SystemConfig::bench(cores, sharing);
    cfg.max_cycles = Some(FUZZ_MAX_CYCLES);

    // DRAM: device template, geometry knobs, scheduling knobs.
    let channels_per_core = rng.random_range(1usize..=4);
    cfg.channels_per_core = channels_per_core;
    cfg.dram = match rng.random_range(0u32..3) {
        0 => mnpu_dram::DramConfig::bench(1),
        1 => mnpu_dram::DramConfig::hbm2(1),
        _ => mnpu_dram::DramConfig::ddr4(1),
    };
    cfg.dram.queue_depth = *pick(&mut rng, &[4usize, 8, 16]);
    cfg.dram.mapping = *pick(
        &mut rng,
        &[mnpu_dram::AddressMapping::BlockInterleaved, mnpu_dram::AddressMapping::RowInterleaved],
    );
    cfg.dram.policy =
        *pick(&mut rng, &[mnpu_dram::SchedPolicy::FrFcfs, mnpu_dram::SchedPolicy::Fcfs]);
    // Fuzz both scheduler paths: most cases keep the steady-state
    // fast-forward on (the production default), a quarter pin the
    // per-command reference. Any oracle that fires on one but not the
    // other is a fast-path exactness bug — the `force-slow-path` shrink
    // step and the `fastfwd-exact` law triangulate those directly.
    cfg.dram.fastfwd = rng.random_bool(0.75);

    // MMU: page size, TLB geometry (entries must stay a multiple of the
    // associativity), walker count.
    cfg.mmu.page_bytes = *pick(&mut rng, &[4096u64, 65536, 1_048_576]);
    cfg.mmu.tlb_assoc = *pick(&mut rng, &[2u64, 4, 8]);
    cfg.mmu.tlb_entries_per_core = cfg.mmu.tlb_assoc * *pick(&mut rng, &[4u64, 16, 64]);
    cfg.mmu.ptws_per_core = rng.random_range(1usize..=4);
    cfg.mmu.coalesce_walks = rng.random_bool(0.8);
    cfg.translation = rng.random_bool(0.85);

    cfg.iterations = rng.random_range(1u64..=2);
    if rng.random_bool(0.2) {
        cfg.memory = MemoryModel::Ideal { latency: rng.random_range(1u64..=64) };
    }

    // Optional report/observability features.
    let mut b = SystemConfigBuilder::from_config(cfg);
    if rng.random_bool(0.8) {
        b = b.probe(ProbeMode::Stats);
    }
    if rng.random_bool(0.25) {
        b = b.trace_window(512);
    }
    if rng.random_bool(0.25) {
        let cap = match rng.random_range(0u32..3) {
            0 => None,
            1 => Some(1),
            _ => Some(100),
        };
        b = b.request_log(cap);
    }
    if rng.random_bool(0.2) {
        b = b.start_cycles((0..cores).map(|_| rng.random_range(0u64..1000)).collect());
    }

    // Optional static partitions / managed bounds, gated on the sharing
    // level so the builder accepts them.
    if cores >= 2 && !sharing.shares_dram() && rng.random_bool(0.3) {
        b = b.channel_partition(random_split(&mut rng, cores * channels_per_core, cores));
    }
    if cores >= 2 && !sharing.shares_ptw() && rng.random_bool(0.3) {
        let walkers = b.peek().mmu.ptws_per_core * cores;
        b = b.ptw_partition(random_split(&mut rng, walkers, cores));
    }
    if cores >= 2 && sharing.shares_ptw() && rng.random_bool(0.2) {
        let total = b.peek().mmu.ptws_per_core * cores;
        let min = vec![0usize; cores];
        let max = vec![rng.random_range(1usize..=total); cores];
        b = b.ptw_bounds(mnpu_mmu::PtwBounds { min, max });
    }

    let config = b.build().unwrap_or_else(|e| {
        panic!("fuzzer generated an invalid config (seed {master_seed}, iter {iteration}): {e}")
    });

    // Tiny networks: a couple of layers keep each simulation in the
    // millisecond range so hundreds of iterations stay cheap.
    let net_cfg = RandNetConfig {
        min_layers: 1,
        max_layers: 4,
        channel_choices: vec![4, 8, 16, 32],
        spatial_range: (8, 24),
        ..RandNetConfig::default()
    };
    let net_seeds: Vec<u64> = (0..cores).map(|_| rng.next_u64()).collect();
    let nets: Vec<Network> = net_seeds.iter().map(|&s| generate(&net_cfg, s)).collect();

    // Sample one applicable metamorphic law for this iteration.
    let applicable: Vec<Law> = Law::ALL.iter().copied().filter(|l| l.applicable(&config)).collect();
    let law = if applicable.is_empty() { None } else { Some(*pick(&mut rng, &applicable)) };

    // ~30% of cases also exercise the scheduling layer: a serve scenario
    // on the same chip, with zoo workloads (the scenario format names
    // networks) and arrivals derived purely from this case's RNG.
    let serve = rng.random_bool(0.3).then(|| {
        let names = ["ncf", "dlrm"];
        let jobs: Vec<JobSpec> = (0..rng.random_range(2usize..=4))
            .map(|_| JobSpec {
                network: (*pick(&mut rng, &names)).to_string(),
                arrival: None,
                core: None,
            })
            .collect();
        let arrival = if rng.random_bool(0.5) {
            ArrivalSpec::FixedIncrement { increment: rng.random_range(0u64..=200_000) }
        } else {
            ArrivalSpec::Bursty {
                burst: rng.random_range(1usize..=3),
                mean_gap: rng.random_range(0u64..=100_000),
            }
        };
        let policy =
            if rng.random_bool(0.5) { PolicySpec::FirstFree } else { PolicySpec::RoundRobin };
        // The predictor policy trains a model per scenario — far too slow
        // for fuzzing; its decisions go through the same dispatch path.
        ScenarioSpec {
            system: config.clone(),
            scale: Scale::Bench,
            seed: rng.next_u64(),
            arrival,
            policy,
            jobs,
        }
    });

    // Drawn last — see the field doc on [`FuzzCase::snapshot_at`].
    let snapshot_at = rng.random_bool(0.25).then(|| rng.random_range(0u64..=1000));

    FuzzCase { config, nets, net_seeds, law, serve, snapshot_at }
}

/// The `snapshot-exact` oracle: checkpoint the case's run at `permille`
/// thousandths of its span, resume the snapshot in a freshly built
/// simulation ([`Simulation::execute_checkpointed`]), and require the
/// resumed [`mnpu_engine::RunReport`] to be bit-identical to `base`.
/// Zero slack, same rationale as [`Law::SnapshotResumeExact`] — but where
/// the law picks the midpoint, the fuzzer sweeps the checkpoint position
/// too (including past the end of the run, where the checkpoint is the
/// finished machine).
fn snapshot_exact(
    cfg: &SystemConfig,
    nets: &[mnpu_model::Network],
    base: &mnpu_engine::RunReport,
    permille: u64,
) -> Vec<Violation> {
    let traces: Vec<mnpu_systolic::WorkloadTrace> = nets
        .iter()
        .zip(&cfg.arch)
        .map(|(n, a)| mnpu_systolic::WorkloadTrace::generate(n, a))
        .collect();
    let at = base.total_cycles.saturating_mul(permille) / 1000;
    let resumed = Simulation::execute_checkpointed(cfg, &traces, at);
    if resumed != *base {
        return vec![Violation {
            oracle: "snapshot-exact",
            core: None,
            detail: format!(
                "resume from the cycle-{at} checkpoint diverged (cycles {} vs {}, \
                 dram txns {} vs {})",
                base.total_cycles,
                resumed.total_cycles,
                base.dram.total.transactions(),
                resumed.dram.total.transactions()
            ),
        }];
    }
    Vec::new()
}

/// Run one case: simulate, apply every oracle, then the sampled law.
/// A panic anywhere (engine assertion, watchdog) becomes a violation.
pub fn check_case(case: &FuzzCase) -> Vec<Violation> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let report = Simulation::execute_networks(&case.config, &case.nets);
        let mut v = check_run(&case.config, &case.nets, &report);
        if let Some(permille) = case.snapshot_at {
            v.extend(snapshot_exact(&case.config, &case.nets, &report, permille));
        }
        if let Some(law) = case.law {
            v.extend(law.check(&case.config, &case.nets));
        }
        if let Some(scenario) = &case.serve {
            v.extend(check_serve(scenario, &serve(scenario)));
        }
        v
    }));
    match result {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            vec![Violation { oracle: "panic", core: None, detail: msg.to_string() }]
        }
    }
}

/// The shrink moves, ordered roughly by how much each simplifies a case.
const SHRINK_STEPS: [&str; 10] = [
    "drop-serve",
    "drop-snapshot",
    "single-iteration",
    "drop-options",
    "drop-partitions",
    "truncate-nets",
    "drop-last-core",
    "fewer-channels",
    "force-slow-path",
    "ideal-memory",
];

/// Apply one named shrink step; returns `None` when the step cannot
/// simplify this case any further.
fn apply_step(case: &FuzzCase, step: &str) -> Option<FuzzCase> {
    let mut c = case.clone();
    match step {
        // Kills a serve failure's repro only if the failure is in the
        // batch path — the shrinker keeps a candidate only when the same
        // oracle still fires, so serve-oracle failures reject this step.
        "drop-serve" => {
            c.serve.take()?;
        }
        // Same shape as drop-serve: a snapshot-exact failure rejects this
        // step (the oracle disappears with the field), every other
        // failure sheds the checkpoint run and shrinks twice as fast.
        "drop-snapshot" => {
            c.snapshot_at.take()?;
        }
        "single-iteration" => {
            if c.config.iterations == 1 {
                return None;
            }
            c.config.iterations = 1;
        }
        "drop-options" => {
            let cfg = &mut c.config;
            if cfg.trace_window.is_none() && !cfg.request_log && cfg.start_cycles.is_empty() {
                return None;
            }
            cfg.trace_window = None;
            cfg.request_log = false;
            cfg.request_log_cap = None;
            cfg.start_cycles = Vec::new();
        }
        "drop-partitions" => {
            let cfg = &mut c.config;
            if cfg.channel_partition.is_none()
                && cfg.ptw_partition.is_none()
                && cfg.ptw_bounds.is_none()
            {
                return None;
            }
            cfg.channel_partition = None;
            cfg.ptw_partition = None;
            cfg.ptw_bounds = None;
        }
        "truncate-nets" => {
            if c.nets.iter().all(|n| n.num_layers() <= 1) {
                return None;
            }
            c.nets = c
                .nets
                .iter()
                .map(|n| {
                    let keep = n.num_layers().div_ceil(2);
                    Network::new(n.name().to_string(), n.layers()[..keep].to_vec())
                })
                .collect();
        }
        "drop-last-core" => {
            if c.config.cores <= 1 {
                return None;
            }
            let cfg = &mut c.config;
            cfg.cores -= 1;
            cfg.arch.truncate(cfg.cores);
            // Partitions, bounds and start cycles are sized per core;
            // rather than re-derive consistent splits, drop them.
            cfg.channel_partition = None;
            cfg.ptw_partition = None;
            cfg.ptw_bounds = None;
            cfg.start_cycles = Vec::new();
            c.nets.truncate(cfg.cores);
            c.net_seeds.truncate(cfg.cores);
        }
        "fewer-channels" => {
            if c.config.channels_per_core <= 1 {
                return None;
            }
            c.config.channels_per_core /= 2;
            c.config.channel_partition = None;
        }
        // If the failure survives on the per-command reference scheduler,
        // the fast-forward is exonerated and the minimized repro is easier
        // to step through; if it does not survive, the *shrinker's
        // rejection of this step* is itself the finding — the case fails
        // only with fastfwd on, i.e. the fast path diverged.
        "force-slow-path" => {
            if !c.config.dram.fastfwd {
                return None;
            }
            c.config.dram.fastfwd = false;
        }
        "ideal-memory" => {
            if !matches!(c.config.memory, MemoryModel::Timing) {
                return None;
            }
            c.config.memory = MemoryModel::Ideal { latency: 1 };
        }
        other => panic!("unknown shrink step {other}"),
    }
    if c.config.validate().is_err() {
        return None;
    }
    // The sampled law may no longer apply to the simplified config.
    if let Some(law) = c.law {
        if !law.applicable(&c.config) {
            c.law = None;
        }
    }
    Some(c)
}

/// Greedily shrink a failing case, keeping any candidate that still fails
/// the *same* oracle. Returns the minimized case and the steps applied.
fn shrink(case: &FuzzCase, oracle: &'static str, budget: usize) -> (FuzzCase, Vec<&'static str>) {
    let mut current = case.clone();
    let mut applied = Vec::new();
    let mut sims = 0usize;
    let mut progress = true;
    while progress && sims < budget {
        progress = false;
        for step in SHRINK_STEPS {
            if sims >= budget {
                break;
            }
            let Some(candidate) = apply_step(&current, step) else { continue };
            sims += 1;
            let vs = check_case(&candidate);
            if vs.iter().any(|v| v.oracle == oracle) {
                current = candidate;
                applied.push(step);
                progress = true;
            }
        }
    }
    (current, applied)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a minimized failure to the repro artifact JSON. Hand-rolled
/// (the workspace carries no serde); the format is documented in
/// EXPERIMENTS.md.
pub fn repro_json(seed: u64, failure: &FuzzFailure, case: &FuzzCase) -> String {
    let cfg = &case.config;
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"iteration\": {},\n", failure.iteration));
    s.push_str("  \"violations\": [\n");
    for (i, v) in failure.violations.iter().enumerate() {
        let comma = if i + 1 < failure.violations.len() { "," } else { "" };
        s.push_str(&format!("    \"{}\"{comma}\n", json_escape(&v.to_string())));
    }
    s.push_str("  ],\n");
    s.push_str("  \"shrink_steps\": [");
    s.push_str(
        &failure.shrink_steps.iter().map(|st| format!("\"{st}\"")).collect::<Vec<_>>().join(", "),
    );
    s.push_str("],\n");
    s.push_str(&format!(
        "  \"law\": {},\n",
        case.law.map_or("null".to_string(), |l| format!("\"{}\"", l.name()))
    ));
    s.push_str(&format!(
        "  \"snapshot_at\": {},\n",
        case.snapshot_at.map_or("null".to_string(), |p| p.to_string())
    ));
    s.push_str(&format!(
        "  \"serve\": {},\n",
        case.serve.as_ref().map_or("null".to_string(), |scn| {
            format!(
                "{{\"jobs\": [{}], \"policy\": \"{:?}\", \"pattern\": \"{:?}\", \"seed\": {}}}",
                scn.jobs
                    .iter()
                    .map(|j| format!("\"{}\"", j.network))
                    .collect::<Vec<_>>()
                    .join(", "),
                scn.policy,
                scn.arrival,
                scn.seed
            )
        })
    ));
    s.push_str("  \"config\": {\n");
    s.push_str(&format!("    \"cores\": {},\n", cfg.cores));
    s.push_str(&format!("    \"sharing\": \"{}\",\n", cfg.sharing.label()));
    s.push_str(&format!("    \"channels_per_core\": {},\n", cfg.channels_per_core));
    s.push_str(&format!("    \"page_bytes\": {},\n", cfg.mmu.page_bytes));
    s.push_str(&format!("    \"tlb_entries_per_core\": {},\n", cfg.mmu.tlb_entries_per_core));
    s.push_str(&format!("    \"tlb_assoc\": {},\n", cfg.mmu.tlb_assoc));
    s.push_str(&format!("    \"ptws_per_core\": {},\n", cfg.mmu.ptws_per_core));
    s.push_str(&format!("    \"coalesce_walks\": {},\n", cfg.mmu.coalesce_walks));
    s.push_str(&format!("    \"translation\": {},\n", cfg.translation));
    s.push_str(&format!("    \"iterations\": {},\n", cfg.iterations));
    s.push_str(&format!("    \"burst_cycles\": {},\n", cfg.dram.timing.burst_cycles));
    s.push_str(&format!("    \"queue_depth\": {},\n", cfg.dram.queue_depth));
    s.push_str(&format!("    \"fastfwd\": {},\n", cfg.dram.fastfwd));
    s.push_str(&format!(
        "    \"memory\": \"{}\"\n",
        match cfg.memory {
            MemoryModel::Timing => "timing".to_string(),
            MemoryModel::Ideal { latency } => format!("ideal({latency})"),
        }
    ));
    s.push_str("  },\n");
    s.push_str("  \"nets\": [\n");
    for (i, (n, sd)) in case.nets.iter().zip(&case.net_seeds).enumerate() {
        let comma = if i + 1 < case.nets.len() { "," } else { "" };
        let sum = n.summary();
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"seed\": {sd}, \"layers\": {}, \"macs\": {}}}{comma}\n",
            json_escape(n.name()),
            n.num_layers(),
            sum.total_macs
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Run the fuzzer.
///
/// Deterministic per [`FuzzOptions::seed`]; failures are shrunk and, when
/// [`FuzzOptions::out_dir`] is set, written as JSON repro artifacts.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzOutcome {
    let mut outcome = FuzzOutcome::default();
    for iteration in 0..opts.iters {
        let case = generate_case(opts.seed, iteration);
        let violations = check_case(&case);
        outcome.iterations += 1;
        if opts.verbose {
            eprintln!(
                "iter {iteration}: cores={} sharing={} law={} -> {}",
                case.config.cores,
                case.config.sharing,
                case.law.map_or("none", |l| l.name()),
                if violations.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} VIOLATIONS", violations.len())
                }
            );
        }
        if violations.is_empty() {
            continue;
        }
        let oracle = violations[0].oracle;
        let (min_case, steps) = shrink(&case, oracle, opts.max_shrink_sims);
        let min_violations = check_case(&min_case);
        let mut failure = FuzzFailure {
            iteration,
            violations: if min_violations.is_empty() { violations } else { min_violations },
            shrink_steps: steps,
            artifact: None,
        };
        if let Some(dir) = &opts.out_dir {
            let path = dir.join(format!("repro-iter{iteration}.json"));
            let body = repro_json(opts.seed, &failure, &min_case);
            if std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)).is_ok() {
                failure.artifact = Some(path);
            }
        }
        outcome.failures.push(failure);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure() {
        let a = generate_case(42, 7);
        let b = generate_case(42, 7);
        assert_eq!(a.config, b.config);
        assert_eq!(a.nets, b.nets);
        assert_eq!(a.law, b.law);
        assert_eq!(a.serve, b.serve);
        assert_eq!(a.snapshot_at, b.snapshot_at);
    }

    #[test]
    fn generated_configs_are_valid_and_varied() {
        let mut core_counts = std::collections::HashSet::new();
        let mut sharings = std::collections::HashSet::new();
        for i in 0..64 {
            let case = generate_case(1, i);
            assert!(case.config.validate().is_ok(), "iter {i}");
            assert_eq!(case.nets.len(), case.config.cores, "iter {i}");
            core_counts.insert(case.config.cores);
            sharings.insert(case.config.sharing.label());
        }
        assert!(core_counts.len() >= 3, "core counts not varied: {core_counts:?}");
        assert!(sharings.len() >= 4, "sharing levels not varied: {sharings:?}");
    }

    #[test]
    fn serve_scenarios_appear_and_are_well_formed() {
        let mut with_serve = 0;
        for i in 0..64 {
            let case = generate_case(2, i);
            if let Some(s) = &case.serve {
                with_serve += 1;
                assert!(!s.jobs.is_empty(), "iter {i}");
                assert_eq!(s.system, case.config, "iter {i}: serve runs the case's chip");
                if let ArrivalSpec::Bursty { burst, .. } = s.arrival {
                    assert!(burst >= 1, "iter {i}");
                }
            }
        }
        // ~30% of 64; wide margins so the test pins presence, not the RNG.
        assert!((8..=40).contains(&with_serve), "serve rate off: {with_serve}/64");
    }

    #[test]
    fn shrink_steps_preserve_validity() {
        for i in 0..16 {
            let case = generate_case(3, i);
            for step in SHRINK_STEPS {
                if let Some(c) = apply_step(&case, step) {
                    assert!(c.config.validate().is_ok(), "iter {i} step {step}");
                    assert_eq!(c.nets.len(), c.config.cores, "iter {i} step {step}");
                }
            }
        }
    }

    #[test]
    fn repro_json_is_balanced() {
        let case = generate_case(5, 0);
        let failure = FuzzFailure {
            iteration: 0,
            violations: vec![Violation {
                oracle: "compute-roofline",
                core: Some(0),
                detail: "say \"quote\"".into(),
            }],
            shrink_steps: vec!["drop-options"],
            artifact: None,
        };
        let j = repro_json(5, &failure, &case);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\\\"quote\\\""));
    }
}
