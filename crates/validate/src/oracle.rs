//! Analytical oracles: closed-form bounds and conservation laws that any
//! [`RunReport`] must respect, derived from the configuration and workload
//! trace alone — never from another simulation.
//!
//! The oracles fall into three strength classes:
//!
//! * **Exact equalities** — quantities the simulator must reproduce to the
//!   unit because they are determined by the trace, not by timing:
//!   `compute_cycles`, `traffic_bytes` (burst expansion is arithmetic),
//!   `walk_bytes == walks × levels × 64` (each radix walk reads exactly
//!   one 64-byte PTE line per level), and every stats-vs-engine
//!   cross-check.
//! * **Rooflines** — lower bounds on time: a core can never finish faster
//!   than its systolic array computes, a channel can never move more than
//!   one burst per `burst_cycles`, a walk can never beat
//!   `levels × (CL + burst)`.
//! * **Conservation** — totals equal the sum of their parts: per-channel
//!   counters fold into the chip total, per-core bytes fold into DRAM
//!   bytes, the four stall categories partition active cycles.
//!
//! A violation means the engine, not the workload, is wrong — by
//! construction the checks are valid for every legal configuration.

use mnpu_engine::{expected_data_transactions, MemoryModel, RunReport, SystemConfig};
use mnpu_model::Network;
use mnpu_systolic::WorkloadTrace;
use std::collections::HashSet;

/// One failed oracle check.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which law failed (stable kebab-case identifier).
    pub oracle: &'static str,
    /// The core the violation concerns, when per-core.
    pub core: Option<usize>,
    /// Human-readable statement of the expected vs observed quantities.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.core {
            Some(c) => write!(f, "[{}] core {}: {}", self.oracle, c, self.detail),
            None => write!(f, "[{}] {}", self.oracle, self.detail),
        }
    }
}

/// Run every oracle against `report`, which must be the result of
/// simulating `nets` under `cfg`. Returns all violations found (empty =
/// the report is consistent with the analytical model).
pub fn check_run(cfg: &SystemConfig, nets: &[Network], report: &RunReport) -> Vec<Violation> {
    let traces: Vec<WorkloadTrace> =
        nets.iter().zip(&cfg.arch).map(|(n, a)| WorkloadTrace::generate(n, a)).collect();
    check_traced(cfg, &traces, report)
}

/// [`check_run`] for callers that already hold the generated traces.
pub fn check_traced(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    report: &RunReport,
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_shape(cfg, report, &mut out);
    if report.cores.len() != cfg.cores || traces.len() != cfg.cores {
        return out; // per-core checks would index out of bounds
    }
    check_compute(cfg, traces, report, &mut out);
    check_traffic(cfg, traces, report, &mut out);
    check_walks(cfg, traces, report, &mut out);
    check_dram(cfg, report, &mut out);
    check_total_cycles(cfg, traces, report, &mut out);
    check_stats(cfg, traces, report, &mut out);
    out
}

fn push(out: &mut Vec<Violation>, oracle: &'static str, core: Option<usize>, detail: String) {
    out.push(Violation { oracle, core, detail });
}

/// Ceiling of `x * num / den` in u128 to match the engine's clock-domain
/// conversion exactly.
fn ceil_mul_div(x: u64, num: u64, den: u64) -> u64 {
    ((x as u128 * num as u128).div_ceil(den as u128)) as u64
}

/// Distinct virtual pages one execution of `trace` touches with data
/// accesses (the pages the MMU must translate at least once each).
fn distinct_pages(trace: &WorkloadTrace, page_bytes: u64) -> u64 {
    let mut pages: HashSet<u64> = HashSet::new();
    for layer in trace.layers() {
        for tile in &layer.tiles {
            for s in tile.loads.iter().chain(&tile.stores) {
                let first = s.addr / page_bytes;
                let last = (s.addr + s.bytes - 1) / page_bytes;
                pages.extend(first..=last);
            }
        }
    }
    pages.len() as u64
}

/// The chip-level DRAM configuration (device template with the chip's
/// total channel count), as the engine derives it.
fn chip_dram(cfg: &SystemConfig) -> mnpu_dram::DramConfig {
    let mut d = cfg.dram.clone();
    d.channels = cfg.total_channels();
    d
}

// --- structural shape ----------------------------------------------------

fn check_shape(cfg: &SystemConfig, report: &RunReport, out: &mut Vec<Violation>) {
    const O: &str = "report-shape";
    if report.cores.len() != cfg.cores {
        push(out, O, None, format!("{} core reports for {} cores", report.cores.len(), cfg.cores));
    }
    if report.total_cycles == 0 {
        push(out, O, None, "total_cycles is zero".into());
    }
    let expect_channels = match cfg.memory {
        MemoryModel::Timing => cfg.total_channels(),
        MemoryModel::Ideal { .. } => 1, // one pseudo-channel carries the totals
    };
    if report.dram.per_channel.len() != expect_channels {
        push(
            out,
            O,
            None,
            format!(
                "{} per-channel entries, expected {expect_channels}",
                report.dram.per_channel.len()
            ),
        );
    }
    if report.dram.per_core_bytes.len() != cfg.cores {
        push(
            out,
            O,
            None,
            format!(
                "{} per_core_bytes entries for {} cores",
                report.dram.per_core_bytes.len(),
                cfg.cores
            ),
        );
    }
}

// --- compute roofline ----------------------------------------------------

fn check_compute(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    report: &RunReport,
    out: &mut Vec<Violation>,
) {
    for (ci, (trace, core)) in traces.iter().zip(&report.cores).enumerate() {
        let expected = trace.total_compute_cycles() * cfg.iterations;
        // The array executes every tile exactly once per iteration, so the
        // accumulated compute time is trace arithmetic, not timing.
        if core.compute_cycles != expected {
            push(
                out,
                "compute-exact",
                Some(ci),
                format!("compute_cycles {} != trace total {expected}", core.compute_cycles),
            );
        }
        // Roofline: with one systolic array, tiles serialize on it; the
        // core clock can never run out faster than its compute alone.
        if core.cycles < expected {
            push(
                out,
                "compute-roofline",
                Some(ci),
                format!("cycles {} beat the compute roofline {expected}", core.cycles),
            );
        }
        let macs = trace.total_macs() * cfg.iterations;
        if macs > 0 && (core.pe_utilization <= 0.0 || core.pe_utilization > 1.0 + 1e-9) {
            push(
                out,
                "pe-utilization",
                Some(ci),
                format!("pe_utilization {} outside (0, 1]", core.pe_utilization),
            );
        }
        if core.footprint_bytes != trace.footprint_bytes() {
            push(
                out,
                "report-shape",
                Some(ci),
                format!(
                    "footprint_bytes {} != trace footprint {}",
                    core.footprint_bytes,
                    trace.footprint_bytes()
                ),
            );
        }
    }
}

// --- exact traffic law ---------------------------------------------------

fn check_traffic(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    report: &RunReport,
    out: &mut Vec<Violation>,
) {
    for (ci, (trace, core)) in traces.iter().zip(&report.cores).enumerate() {
        let expected =
            expected_data_transactions(trace) * mnpu_dram::TRANSACTION_BYTES * cfg.iterations;
        if core.traffic_bytes != expected {
            push(
                out,
                "traffic-exact",
                Some(ci),
                format!("traffic_bytes {} != burst-expanded trace {expected}", core.traffic_bytes),
            );
        }
    }
}

// --- MMU conservation ----------------------------------------------------

fn check_walks(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    report: &RunReport,
    out: &mut Vec<Violation>,
) {
    let levels = cfg.mmu.walk_levels() as u64;
    for (ci, (trace, core)) in traces.iter().zip(&report.cores).enumerate() {
        if !cfg.translation {
            if core.walk_bytes != 0 || core.mmu.walks != 0 {
                push(
                    out,
                    "walk-conservation",
                    Some(ci),
                    format!(
                        "translation disabled but walk_bytes={} walks={}",
                        core.walk_bytes, core.mmu.walks
                    ),
                );
            }
            continue;
        }
        // Each radix walk reads exactly one 64-byte PTE line per level.
        let expected = core.mmu.walks * levels * mnpu_dram::TRANSACTION_BYTES;
        if core.walk_bytes != expected {
            push(
                out,
                "walk-conservation",
                Some(ci),
                format!(
                    "walk_bytes {} != walks {} x {levels} levels x 64",
                    core.walk_bytes, core.mmu.walks
                ),
            );
        }
        // Cold TLB: every distinct page must be walked at least once.
        let pages = distinct_pages(trace, cfg.mmu.page_bytes);
        if core.mmu.walks < pages {
            push(
                out,
                "walk-lower-bound",
                Some(ci),
                format!("walks {} below distinct page count {pages}", core.mmu.walks),
            );
        }
        // Every walk or coalesced join was triggered by at least one miss.
        if core.mmu.walks + core.mmu.coalesced > core.mmu.tlb_misses {
            push(
                out,
                "tlb-accounting",
                Some(ci),
                format!(
                    "walks {} + coalesced {} exceed misses {}",
                    core.mmu.walks, core.mmu.coalesced, core.mmu.tlb_misses
                ),
            );
        }
        // Every data transaction performs at least one TLB lookup.
        let txns = core.traffic_bytes / mnpu_dram::TRANSACTION_BYTES;
        if core.mmu.tlb_hits + core.mmu.tlb_misses < txns {
            push(
                out,
                "tlb-accounting",
                Some(ci),
                format!(
                    "lookups {} below data transaction count {txns}",
                    core.mmu.tlb_hits + core.mmu.tlb_misses
                ),
            );
        }
    }
}

// --- DRAM conservation and bandwidth -------------------------------------

fn check_dram(cfg: &SystemConfig, report: &RunReport, out: &mut Vec<Violation>) {
    const CONS: &str = "dram-conservation";
    let d = &report.dram;

    // The chip total is the per-channel fold.
    let mut folded = mnpu_dram::ChannelStats::default();
    for ch in &d.per_channel {
        folded.merge(ch);
    }
    if folded != d.total {
        push(out, CONS, None, "total != fold(per_channel)".into());
    }
    if d.total.bytes != d.total.transactions() * mnpu_dram::TRANSACTION_BYTES {
        push(
            out,
            CONS,
            None,
            format!("bytes {} != transactions {} x 64", d.total.bytes, d.total.transactions()),
        );
    }
    let core_sum: u64 = d.per_core_bytes.iter().sum();
    if core_sum != d.total.bytes {
        push(out, CONS, None, format!("per-core bytes {core_sum} != total {}", d.total.bytes));
    }
    let report_sum: u64 = report.cores.iter().map(|c| c.traffic_bytes + c.walk_bytes).sum();
    if report_sum != d.total.bytes {
        push(
            out,
            CONS,
            None,
            format!("core reports account {report_sum} bytes, DRAM moved {}", d.total.bytes),
        );
    }
    if let Some(t) = &report.bandwidth_trace {
        let series: u64 = t.total_series().iter().sum();
        if series != d.total.bytes {
            push(
                out,
                CONS,
                None,
                format!("bandwidth trace sums to {series}, DRAM moved {}", d.total.bytes),
            );
        }
    }

    match cfg.memory {
        MemoryModel::Timing => {
            let dram = chip_dram(cfg);
            let burst = dram.timing.burst_cycles;
            // Reads and writes both occupy CAS latency plus the burst.
            let min_latency = dram.timing.cl.min(dram.timing.cwl) + burst;
            for (i, ch) in d.per_channel.iter().enumerate() {
                let txns = ch.transactions();
                if ch.busy_cycles != txns * burst {
                    push(
                        out,
                        "dram-bandwidth",
                        None,
                        format!(
                            "channel {i}: busy {} != {txns} txns x burst {burst}",
                            ch.busy_cycles
                        ),
                    );
                }
                if ch.busy_cycles > report.total_cycles {
                    push(
                        out,
                        "dram-bandwidth",
                        None,
                        format!(
                            "channel {i}: busy {} exceeds run length {}",
                            ch.busy_cycles, report.total_cycles
                        ),
                    );
                }
                if ch.row_hits + ch.row_misses + ch.row_conflicts != txns {
                    push(
                        out,
                        CONS,
                        None,
                        format!("channel {i}: row outcomes do not partition {txns} transactions"),
                    );
                }
                if txns > 0 && ch.latency_max < min_latency {
                    push(
                        out,
                        "dram-latency-floor",
                        None,
                        format!(
                            "channel {i}: latency_max {} beats floor {min_latency}",
                            ch.latency_max
                        ),
                    );
                }
                if ch.latency_sum < txns * min_latency {
                    push(
                        out,
                        "dram-latency-floor",
                        None,
                        format!(
                            "channel {i}: latency_sum {} below {txns} x floor {min_latency}",
                            ch.latency_sum
                        ),
                    );
                }
            }
            // Aggregate-bus roofline: the whole run cannot move the total
            // traffic faster than every channel bursting back to back.
            let floor = (d.total.transactions() * burst).div_ceil(dram.channels.max(1) as u64);
            if report.total_cycles < floor {
                push(
                    out,
                    "dram-bandwidth",
                    None,
                    format!(
                        "total_cycles {} beat the aggregate bandwidth floor {floor}",
                        report.total_cycles
                    ),
                );
            }
        }
        MemoryModel::Ideal { latency } => {
            let lat = latency.max(1);
            let t = &d.total;
            if t.busy_cycles != 0 || t.refreshes != 0 {
                push(out, CONS, None, "ideal memory reported bus/refresh activity".into());
            }
            if t.row_hits + t.row_misses + t.row_conflicts != 0 {
                push(out, CONS, None, "ideal memory reported row outcomes".into());
            }
            if t.latency_sum != t.transactions() * lat {
                push(
                    out,
                    "dram-latency-floor",
                    None,
                    format!(
                        "ideal latency_sum {} != {} txns x latency {lat}",
                        t.latency_sum,
                        t.transactions()
                    ),
                );
            }
        }
    }
}

// --- end-to-end cycle floor ----------------------------------------------

fn check_total_cycles(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    report: &RunReport,
    out: &mut Vec<Violation>,
) {
    let g = cfg.dram.freq_mhz;
    for (ci, trace) in traces.iter().enumerate() {
        let f = cfg.arch[ci].freq_mhz;
        let start = cfg.start_cycles.get(ci).copied().unwrap_or(0);
        // Convert the compute roofline into the global clock the way the
        // engine does (ceiling division), then add the start offset.
        let floor = start + ceil_mul_div(trace.total_compute_cycles() * cfg.iterations, g, f);
        if report.total_cycles < floor {
            push(
                out,
                "total-cycles-floor",
                Some(ci),
                format!("total_cycles {} beat core floor {floor}", report.total_cycles),
            );
        }
    }
}

// --- stats cross-checks ---------------------------------------------------

fn check_stats(
    cfg: &SystemConfig,
    traces: &[WorkloadTrace],
    report: &RunReport,
    out: &mut Vec<Violation>,
) {
    let Some(stats) = &report.stats else { return };
    const O: &str = "stats-consistency";
    if stats.cores.len() != cfg.cores {
        push(out, O, None, format!("{} stats cores for {} cores", stats.cores.len(), cfg.cores));
        return;
    }
    let levels = cfg.mmu.walk_levels() as u64;
    let per_level_floor = match cfg.memory {
        MemoryModel::Timing => cfg.dram.min_read_latency(),
        MemoryModel::Ideal { latency } => latency.max(1),
    };
    for (ci, (c, core)) in stats.cores.iter().zip(&report.cores).enumerate() {
        // The four stall categories partition [start, finish] exactly.
        if c.stall.total() != c.active_cycles {
            push(
                out,
                "stall-partition",
                Some(ci),
                format!("stall categories sum to {}, active {}", c.stall.total(), c.active_cycles),
            );
        }
        // Probe counters mirror the MMU's own.
        if c.tlb_hits != core.mmu.tlb_hits || c.tlb_misses != core.mmu.tlb_misses {
            push(
                out,
                O,
                Some(ci),
                format!(
                    "probe TLB {}/{} vs MMU {}/{}",
                    c.tlb_hits, c.tlb_misses, core.mmu.tlb_hits, core.mmu.tlb_misses
                ),
            );
        }
        if c.walks_started != c.walks_done {
            push(
                out,
                O,
                Some(ci),
                format!("walks started {} != done {}", c.walks_started, c.walks_done),
            );
        }
        if c.walks_done != core.mmu.walks {
            push(
                out,
                O,
                Some(ci),
                format!("probe walks {} vs MMU walks {}", c.walks_done, core.mmu.walks),
            );
        }
        if c.walk_latency.count() != c.walks_done {
            push(
                out,
                O,
                Some(ci),
                format!("{} walk latencies for {} walks", c.walk_latency.count(), c.walks_done),
            );
        }
        // A walk serializes `levels` memory reads; none can beat the floor.
        if c.walk_latency.count() > 0 && c.walk_latency.min() < levels * per_level_floor {
            push(
                out,
                "walk-latency-floor",
                Some(ci),
                format!(
                    "walk latency {} beats {levels} levels x {per_level_floor}",
                    c.walk_latency.min()
                ),
            );
        }
        // A page absent from the TLB was either never loaded (first touch)
        // or evicted since; with coalescing there is no third source of
        // walks, so walks <= distinct pages + evictions.
        if cfg.translation && cfg.mmu.coalesce_walks {
            let pages = distinct_pages(&traces[ci], cfg.mmu.page_bytes);
            // First touch accounts for `pages`; every further walk of an
            // already-touched page requires an eviction of that page.
            let bound = pages + c.tlb_evictions;
            if c.walks_done > bound {
                push(
                    out,
                    "walk-upper-bound",
                    Some(ci),
                    format!(
                        "walks {} exceed distinct pages {pages} + evictions {}",
                        c.walks_done, c.tlb_evictions
                    ),
                );
            }
        }
    }
    // DRAM-side probe counters mirror the device's.
    if matches!(cfg.memory, MemoryModel::Timing) {
        let t = &report.dram.total;
        if stats.dram.issues != t.transactions() {
            push(
                out,
                O,
                None,
                format!(
                    "probe issues {} vs DRAM transactions {}",
                    stats.dram.issues,
                    t.transactions()
                ),
            );
        }
        if stats.dram.row_hits != t.row_hits
            || stats.dram.row_misses != t.row_misses
            || stats.dram.row_conflicts != t.row_conflicts
            || stats.dram.refreshes != t.refreshes
        {
            push(out, O, None, "probe row/refresh counters diverge from DRAM stats".into());
        }
        let outcomes = stats.dram.row_hits + stats.dram.row_misses + stats.dram.row_conflicts;
        if stats.dram.queue_residency.count() != outcomes {
            push(
                out,
                O,
                None,
                format!(
                    "{} queue residencies for {outcomes} serviced commands",
                    stats.dram.queue_residency.count()
                ),
            );
        }
    }
}
