//! Deterministic simulator fuzzer (see `mnpu_validate::fuzz`).
//!
//! ```text
//! mnpu_fuzz --iters 200 --seed 42 [--out target/fuzz-repros] [--verbose]
//! ```
//!
//! Exit status 0 on a clean run, 1 when any iteration produced a
//! violation (after shrinking; repro artifacts are written to `--out`).

use mnpu_validate::{run_fuzz, FuzzOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: mnpu_fuzz [--iters N] [--seed S] [--out DIR] [--shrink-sims N] [--verbose]";

fn parse_args() -> Result<FuzzOptions, String> {
    let mut opts = FuzzOptions {
        out_dir: Some(PathBuf::from("target/fuzz-repros")),
        ..FuzzOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        match arg.as_str() {
            "--iters" => {
                opts.iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => opts.out_dir = Some(PathBuf::from(value("--out")?)),
            "--shrink-sims" => {
                opts.max_shrink_sims =
                    value("--shrink-sims")?.parse().map_err(|e| format!("--shrink-sims: {e}"))?;
            }
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    eprintln!("mnpu_fuzz: {} iterations, seed {}", opts.iters, opts.seed);
    let outcome = run_fuzz(&opts);

    if outcome.clean() {
        println!("fuzz: {} iterations, 0 violations (seed {})", outcome.iterations, opts.seed);
        return ExitCode::SUCCESS;
    }

    println!(
        "fuzz: {} iterations, {} FAILING case(s) (seed {})",
        outcome.iterations,
        outcome.failures.len(),
        opts.seed
    );
    for f in &outcome.failures {
        println!("--- iteration {} (shrunk via {:?})", f.iteration, f.shrink_steps);
        for v in &f.violations {
            println!("    {v}");
        }
        if let Some(p) = &f.artifact {
            println!("    repro: {}", p.display());
        }
        println!(
            "    replay: mnpu_fuzz --seed {} --iters {} # iteration {}",
            opts.seed,
            f.iteration + 1,
            f.iteration
        );
    }
    ExitCode::FAILURE
}
