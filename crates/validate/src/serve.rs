//! Serve-mode oracles: per-job conservation laws and the arrival-delay
//! metamorphic invariant.
//!
//! The scheduling layer adds its own bookkeeping on top of the engine —
//! arrival, dispatch and completion cycles per job — and with it a set of
//! laws that hold for *every* scenario, derivable without knowing anything
//! about the workloads:
//!
//! * **Conservation**: `arrival + queueing + service = completion`,
//!   exactly, with `dispatch ≥ arrival` and `completion ≥ dispatch`;
//! * **Purity**: the recorded arrival of job *i* equals the pure arrival
//!   function [`mnpu_sched::arrivals`] applied to the scenario;
//! * **Core exclusivity**: jobs that ran on the same core never overlap —
//!   each dispatch is at or after the previous job's completion;
//! * **Aggregate consistency**: the makespan is the max completion and the
//!   latency distribution's max matches the worst job.
//!
//! [`check_delay_law`] adds the paired-run invariant: under private
//! resources (jobs pinned to distinct cores, no dynamic sharing), delaying
//! one job's arrival never decreases any *other* job's completion cycle.

use crate::oracle::Violation;
use mnpu_config::{ArrivalSpec, PolicySpec, ScenarioSpec};
use mnpu_sched::{arrivals, serve, ServeReport};

/// Apply every serve-mode conservation oracle to `report`, which must have
/// been produced by running `spec`.
pub fn check_serve(spec: &ScenarioSpec, report: &ServeReport) -> Vec<Violation> {
    let mut v = Vec::new();
    let arr = arrivals(spec);
    if report.jobs.len() != spec.jobs.len() {
        v.push(Violation {
            oracle: "serve-job-count",
            core: None,
            detail: format!(
                "{} jobs reported, scenario has {}",
                report.jobs.len(),
                spec.jobs.len()
            ),
        });
        return v;
    }
    for (i, j) in report.jobs.iter().enumerate() {
        if j.job != i as u64 {
            v.push(Violation {
                oracle: "serve-job-order",
                core: None,
                detail: format!("record {i} carries job id {}", j.job),
            });
        }
        if j.arrival != arr[i] {
            v.push(Violation {
                oracle: "serve-arrival-purity",
                core: None,
                detail: format!(
                    "job {i} arrived at {} but the arrival function says {}",
                    j.arrival, arr[i]
                ),
            });
        }
        if j.core >= spec.system.cores {
            v.push(Violation {
                oracle: "serve-core-range",
                core: Some(j.core),
                detail: format!("job {i} ran on core {} of {}", j.core, spec.system.cores),
            });
            continue;
        }
        if spec.policy == PolicySpec::Pinned && spec.jobs[i].core != Some(j.core) {
            v.push(Violation {
                oracle: "serve-pin-respected",
                core: Some(j.core),
                detail: format!("job {i} pinned to {:?} but ran on {}", spec.jobs[i].core, j.core),
            });
        }
        if j.dispatch < j.arrival || j.completion < j.dispatch {
            v.push(Violation {
                oracle: "serve-causality",
                core: Some(j.core),
                detail: format!(
                    "job {i}: arrival {} dispatch {} completion {}",
                    j.arrival, j.dispatch, j.completion
                ),
            });
            continue;
        }
        // Exact conservation — u64 arithmetic, no tolerance.
        if j.arrival + j.queueing() + j.service() != j.completion {
            v.push(Violation {
                oracle: "serve-conservation",
                core: Some(j.core),
                detail: format!(
                    "job {i}: {} + {} + {} != {}",
                    j.arrival,
                    j.queueing(),
                    j.service(),
                    j.completion
                ),
            });
        }
    }
    // Core exclusivity: order each core's jobs by dispatch and demand
    // back-to-back (or gapped) execution, never overlap.
    for core in 0..spec.system.cores {
        let mut on_core: Vec<_> = report.jobs.iter().filter(|j| j.core == core).collect();
        on_core.sort_by_key(|j| j.dispatch);
        for w in on_core.windows(2) {
            if w[1].dispatch < w[0].completion {
                v.push(Violation {
                    oracle: "serve-core-exclusive",
                    core: Some(core),
                    detail: format!(
                        "job {} dispatched at {} before job {} completed at {}",
                        w[1].job, w[1].dispatch, w[0].job, w[0].completion
                    ),
                });
            }
        }
    }
    let max_completion = report.jobs.iter().map(|j| j.completion).max().unwrap_or(0);
    if report.makespan != max_completion {
        v.push(Violation {
            oracle: "serve-makespan",
            core: None,
            detail: format!("makespan {} != max completion {}", report.makespan, max_completion),
        });
    }
    let max_latency = report.jobs.iter().map(|j| j.latency()).max().unwrap_or(0);
    #[allow(clippy::float_cmp)] // exact: the stats were built from these integers
    if report.latency.max != max_latency as f64 {
        v.push(Violation {
            oracle: "serve-latency-max",
            core: None,
            detail: format!("latency.max {} != worst job {}", report.latency.max, max_latency),
        });
    }
    v
}

/// Event-granularity tolerance for paired serve runs: stalled issues retry
/// at *global* event times, so even fully private resources leak a few
/// cycles of timing jitter between runs with different event sets. Same
/// shape as the batch isolation oracle's slack: 1% + a small constant.
fn isolation_slack(base: u64) -> u64 {
    base / 100 + 32
}

/// Metamorphic law: delaying one job's arrival never *decreases* any other
/// job's completion cycle under private resources.
///
/// `spec` must pin every job to its own distinct core (so the delayed job
/// cannot free a core earlier or later for anyone else) and should use a
/// non-dynamic sharing level ([`mnpu_engine::SharingLevel::Static`] or
/// `Ideal`) so the only coupling between jobs is event-time granularity,
/// covered by the slack. Runs `spec` twice — as given, and with job
/// `delayed`'s arrival pushed back by `delay` — and reports a violation
/// for every other job whose completion moved earlier by more than the
/// slack, plus the delayed job itself if it completed earlier at all.
///
/// # Panics
///
/// Panics if `delayed` is out of range or a job is not pinned.
pub fn check_delay_law(spec: &ScenarioSpec, delayed: usize, delay: u64) -> Vec<Violation> {
    assert!(delayed < spec.jobs.len(), "delayed job out of range");
    assert!(
        spec.jobs.iter().all(|j| j.core.is_some()),
        "delay law requires every job pinned to its own core"
    );
    let arr = arrivals(spec);
    let base = serve(spec);

    let mut shifted = spec.clone();
    // Freeze the base arrivals explicitly, then push one back.
    shifted.arrival = ArrivalSpec::Explicit;
    for (j, a) in shifted.jobs.iter_mut().zip(&arr) {
        j.arrival = Some(*a);
    }
    shifted.jobs[delayed].arrival = Some(arr[delayed] + delay);
    let after = serve(&shifted);

    let mut v = Vec::new();
    for i in 0..spec.jobs.len() {
        let (b, a) = (base.jobs[i].completion, after.jobs[i].completion);
        if i == delayed {
            continue;
        }
        if a + isolation_slack(b) < b {
            v.push(Violation {
                oracle: "serve-delay-monotone",
                core: Some(base.jobs[i].core),
                detail: format!(
                    "delaying job {delayed} by {delay} moved job {i}'s completion \
                     from {b} to {a} (earlier beyond slack)"
                ),
            });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_config::parse_scenario;

    #[test]
    fn clean_scenario_passes_every_oracle() {
        let spec = parse_scenario(
            "t",
            "cores = 2\npattern = fixed:1000\njob = ncf\njob = ncf\njob = ncf\n",
        )
        .unwrap();
        let r = serve(&spec);
        assert_eq!(check_serve(&spec, &r), Vec::new());
    }

    #[test]
    fn tampered_report_is_caught() {
        let spec = parse_scenario("t", "cores = 1\njob = ncf\njob = ncf\n").unwrap();
        let mut r = serve(&spec);
        r.jobs[1].dispatch = r.jobs[1].arrival.wrapping_sub(1);
        let oracles: Vec<&str> = check_serve(&spec, &r).iter().map(|v| v.oracle).collect();
        assert!(oracles.contains(&"serve-causality"), "{oracles:?}");

        let mut r2 = serve(&spec);
        r2.jobs[0].completion += 1; // breaks exclusivity bookkeeping downstream
        let oracles: Vec<&str> = check_serve(&spec, &r2).iter().map(|v| v.oracle).collect();
        assert!(!oracles.is_empty(), "tampering must trip at least one oracle");
    }

    #[test]
    fn delay_law_holds_on_a_private_chip() {
        let spec = parse_scenario(
            "t",
            "cores = 2\nsharing = Static\npolicy = pinned\n\
             job = ncf @ 0 on 0\njob = dlrm @ 0 on 1\n",
        )
        .unwrap();
        assert_eq!(check_delay_law(&spec, 0, 500_000), Vec::new());
    }
}
