//! Tests of the probe-based observability layer: the stall-breakdown
//! exact-sum invariant, NullProbe/StatsProbe behavioral equivalence, probe
//! counter consistency against the engine's own statistics, and the
//! request-log ring buffer.

use mnpu_engine::{ProbeMode, SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, GemmSpec, Layer, Network, Scale};
use proptest::prelude::*;

fn dual_cfg(probe: ProbeMode) -> SystemConfig {
    let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDw);
    cfg.probe = probe;
    cfg
}

fn fig4_nets() -> [Network; 2] {
    [zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench)]
}

/// A small random network, as in the `property.rs` suite.
fn arb_network() -> impl Strategy<Value = Network> {
    proptest::collection::vec((1u64..48, 1u64..256, 1u64..128), 1..4).prop_map(|dims| {
        let layers = dims
            .into_iter()
            .enumerate()
            .map(|(i, (m, k, n))| Layer::gemm(format!("l{i}"), GemmSpec::new(m, k, n)))
            .collect();
        Network::new("prop", layers)
    })
}

#[test]
fn null_and_stats_probes_agree_on_every_number() {
    let nets = fig4_nets();
    let base = Simulation::execute_networks(&dual_cfg(ProbeMode::None), &nets);
    let probed = Simulation::execute_networks(&dual_cfg(ProbeMode::Stats), &nets);

    // The probe observes; it must never perturb. Every simulated quantity
    // is bit-identical between the two runs.
    assert_eq!(base.total_cycles, probed.total_cycles);
    assert_eq!(base.cores, probed.cores);
    assert_eq!(base.dram, probed.dram);

    assert!(base.stats.is_none(), "uninstrumented run must carry no stats");
    assert!(probed.stats.is_some(), "instrumented run must carry stats");

    // And the uninstrumented JSON keeps the historical byte layout.
    assert!(!base.to_json().contains("\"stats\""));
    assert!(probed.to_json().contains("\"stats\""));
}

#[test]
fn stall_breakdown_sums_to_active_cycles_dual_core() {
    let r = Simulation::execute_networks(&dual_cfg(ProbeMode::Stats), &fig4_nets());
    let stats = r.stats.expect("stats probe ran");
    assert_eq!(stats.cores.len(), 2);
    for (ci, c) in stats.cores.iter().enumerate() {
        assert!(c.active_cycles > 0);
        assert_eq!(
            c.stall.total(),
            c.active_cycles,
            "core {ci}: {:?} must sum to active_cycles {}",
            c.stall,
            c.active_cycles
        );
        assert!(c.stall.compute > 0, "core {ci} must spend some time computing");
    }
}

#[test]
fn probe_counters_match_engine_statistics() {
    let r = Simulation::execute_networks(&dual_cfg(ProbeMode::Stats), &fig4_nets());
    let stats = r.stats.as_ref().expect("stats probe ran");

    // DRAM row outcomes observed by the probe are the DRAM model's own.
    assert_eq!(stats.dram.row_hits, r.dram.total.row_hits);
    assert_eq!(stats.dram.row_misses, r.dram.total.row_misses);
    assert_eq!(stats.dram.row_conflicts, r.dram.total.row_conflicts);
    assert_eq!(stats.dram.refreshes, r.dram.total.refreshes);
    assert!(stats.dram.issues > 0);
    let row_outcomes = stats.dram.row_hits + stats.dram.row_misses + stats.dram.row_conflicts;
    assert_eq!(stats.dram.queue_residency.count(), row_outcomes);

    // Per-core TLB traffic matches the MMU's counters, and every started
    // walk finished with a recorded latency.
    for (ci, c) in stats.cores.iter().enumerate() {
        assert_eq!(c.tlb_hits, r.cores[ci].mmu.tlb_hits, "core {ci} tlb hits");
        assert_eq!(c.tlb_misses, r.cores[ci].mmu.tlb_misses, "core {ci} tlb misses");
        assert_eq!(c.tlb_evictions, r.cores[ci].mmu.tlb_evictions, "core {ci} evictions");
        assert_eq!(c.walks_started, c.walks_done, "core {ci} walks must all finish");
        assert_eq!(c.walk_latency.count(), c.walks_done, "core {ci} walk latencies");
        assert!(c.tlb_hit_rate() > 0.0 && c.tlb_hit_rate() <= 1.0);
    }

    // The Fig. 4 acceptance quantities are all present and sane.
    assert!(stats.cores.iter().any(|c| c.walk_latency.count() > 0));
    assert!(stats.dram.row_hit_rate() > 0.0);
    assert!(!stats.spans.is_empty());
    for s in &stats.spans {
        assert!(s.end >= s.start, "span {s:?} must close after it opens");
        assert!(s.core < 2);
    }
}

#[test]
fn request_log_ring_buffer_keeps_newest_entries() {
    let nets = [zoo::ncf(Scale::Bench)];
    let mut cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    cfg.request_log = true;
    let full = Simulation::execute_networks(&cfg, &nets);
    assert!(!full.request_log_truncated);
    assert!(full.request_log.len() > 64, "run must be big enough to truncate");

    cfg.request_log_cap = Some(64);
    let capped = Simulation::execute_networks(&cfg, &nets);
    assert!(capped.request_log_truncated);
    assert_eq!(capped.request_log.len(), 64);
    // The ring drops the *oldest* entries: what remains is the tail.
    assert_eq!(capped.request_log[..], full.request_log[full.request_log.len() - 64..]);
    // The truncation marker reaches the serialized report too.
    assert!(capped.to_json().contains("\"request_log_truncated\":true"));
    assert!(!full.to_json().contains("request_log_truncated"));

    // A cap wide enough never truncates and changes nothing.
    cfg.request_log_cap = Some(full.request_log.len() + 1);
    let wide = Simulation::execute_networks(&cfg, &nets);
    assert!(!wide.request_log_truncated);
    assert_eq!(wide.request_log, full.request_log);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The exact-sum invariant holds for arbitrary workloads, sharing
    /// levels with contention, and staggered starts: per core, the four
    /// stall categories partition `[start_cycle, finished_at]` exactly.
    #[test]
    fn prop_stall_categories_partition_active_cycles(
        net in arb_network(),
        stagger in 0u64..2000,
    ) {
        let mut cfg = dual_cfg(ProbeMode::Stats);
        cfg.start_cycles = vec![0, stagger];
        let r = Simulation::execute_networks(&cfg, &[net.clone(), net]);
        let stats = r.stats.expect("stats probe ran");
        for (ci, c) in stats.cores.iter().enumerate() {
            prop_assert_eq!(
                c.stall.total(),
                c.active_cycles,
                "core {}: {:?} != active {}",
                ci,
                c.stall,
                c.active_cycles
            );
        }
    }

    /// Probing never changes simulated behavior, whatever the workload.
    #[test]
    fn prop_probe_is_behaviorally_invisible(net in arb_network()) {
        let nets = [net];
        let base = Simulation::execute_networks(&dual_cfg(ProbeMode::None).ideal_solo(), &nets);
        let probed = Simulation::execute_networks(&dual_cfg(ProbeMode::Stats).ideal_solo(), &nets);
        prop_assert_eq!(base.total_cycles, probed.total_cycles);
        prop_assert_eq!(&base.cores, &probed.cores);
        prop_assert_eq!(&base.dram, &probed.dram);
    }
}
