//! Integration tests for the NoC *response* delivery path — the
//! `noc_responses` heap in the engine that holds memory completions whose
//! crossbar ejection finishes after the current cycle.
//!
//! The request path is exercised by every NoC run (requests serialize on
//! injection before reaching DRAM); responses only take the heap detour
//! when the ejection link pushes their arrival past `now`. These tests pin
//! that path three ways: a byte-exact golden fixture of a contended
//! crossbar run, directional laws (a response link can only add time, a
//! pure hop delay shifts completions without queueing), and full-report
//! determinism.
//!
//! Regenerate the fixture intentionally with:
//!
//! ```text
//! MNPU_BLESS=1 cargo test -p mnpu-engine --test noc_responses
//! ```

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};
use mnpu_noc::NocConfig;

/// The contended configuration: the quad golden chip plus a narrow
/// crossbar, so 64 B DRAM bursts queue on every 16 B/cycle ejection link
/// and the response heap is hot for the whole run.
fn contended_config() -> SystemConfig {
    let mut cfg = SystemConfig::bench(4, SharingLevel::PlusDwt).with_noc(NocConfig::narrow());
    cfg.trace_window = Some(4096);
    cfg
}

fn quad_report(cfg: &SystemConfig) -> mnpu_engine::RunReport {
    let nets = [
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::yolo_tiny(Scale::Bench),
        zoo::dlrm(Scale::Bench),
    ];
    Simulation::execute_networks(cfg, &nets)
}

/// Compare `json` against the named fixture, or rewrite it when
/// `MNPU_BLESS=1` is set (same protocol as the golden suite).
fn check_fixture(name: &str, json: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let path = format!("{dir}/{name}");
    if std::env::var("MNPU_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(&path, json).unwrap();
        eprintln!("blessed fixture {name}: {} bytes", json.len());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("fixture {name} missing — generate with MNPU_BLESS=1 (see module docs)")
    });
    assert_eq!(json.len(), expected.len(), "{name}: serialized report size changed");
    assert_eq!(json, &expected, "{name}: golden report must be byte-identical");
}

#[test]
fn contended_crossbar_run_matches_golden_fixture() {
    check_fixture("quad_noc_narrow.json", &quad_report(&contended_config()).to_json());
}

#[test]
fn contended_crossbar_full_report_is_deterministic() {
    let cfg = contended_config();
    assert_eq!(quad_report(&cfg).to_json(), quad_report(&cfg).to_json());
}

#[test]
fn response_links_queue_under_contention_and_only_add_time() {
    let base = {
        let mut cfg = SystemConfig::bench(4, SharingLevel::PlusDwt);
        cfg.trace_window = Some(4096);
        quad_report(&cfg)
    };
    let contended = quad_report(&contended_config());
    for (core, (n, b)) in contended.cores.iter().zip(&base.cores).enumerate() {
        assert!(n.noc_queue_cycles > 0, "core {core}: narrow links must queue");
        assert!(
            n.cycles >= b.cycles,
            "core {core}: interconnect delay sped the core up ({} < {})",
            n.cycles,
            b.cycles
        );
        assert_eq!(n.traffic_bytes, b.traffic_bytes, "core {core}: same work either way");
    }
}

/// A crossbar with ample bandwidth isolates the *hop* component: every
/// response arrives `hop_latency` after its (1-cycle) ejection, so each
/// one detours through the response heap, and growing the hop alone must
/// grow end-to-end time — the pure response-path delay, no bandwidth
/// change involved.
#[test]
fn pure_hop_latency_delay_is_visible_end_to_end() {
    let net = [zoo::ncf(Scale::Bench)];
    let ideal = Simulation::execute_networks(&SystemConfig::bench(1, SharingLevel::Ideal), &net);

    let run = |hop_latency: u64| {
        let noc = NocConfig { bytes_per_cycle: 4096, hop_latency };
        let cfg = SystemConfig::bench(1, SharingLevel::Ideal).with_noc(noc);
        Simulation::execute_networks(&cfg, &net)
    };
    let short = run(1);
    let long = run(256);

    assert!(
        long.cores[0].cycles > short.cores[0].cycles,
        "a 256x hop must cost more than a 1-cycle hop ({} <= {})",
        long.cores[0].cycles,
        short.cores[0].cycles
    );
    assert!(long.cores[0].cycles > ideal.cores[0].cycles, "hops only add time over no NoC");
    assert_eq!(long.cores[0].traffic_bytes, ideal.cores[0].traffic_bytes, "same work");
}

/// The narrow crossbar is dominated by the wide one (less bandwidth, more
/// hop latency), so it can never beat the wide one on any core.
#[test]
fn narrower_links_are_monotonically_slower() {
    let wide = quad_report(&{
        let mut cfg = SystemConfig::bench(4, SharingLevel::PlusDwt).with_noc(NocConfig::wide());
        cfg.trace_window = Some(4096);
        cfg
    });
    let narrow = quad_report(&contended_config());
    for (core, (n, w)) in narrow.cores.iter().zip(&wide.cores).enumerate() {
        assert!(
            n.cycles >= w.cycles,
            "core {core}: narrow crossbar beat the wide one ({} < {})",
            n.cycles,
            w.cycles
        );
    }
}
