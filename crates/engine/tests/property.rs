//! Property-based tests of engine invariants over randomized tiny
//! workloads: traffic conservation, determinism, and monotonicity of
//! resource scaling.

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{GemmSpec, Layer, Network};
use mnpu_systolic::WorkloadTrace;
use proptest::prelude::*;

/// A small random network: 1–4 GEMM layers with dimensions that keep debug
/// runs fast but still span one-to-many tiles.
fn arb_network() -> impl Strategy<Value = Network> {
    proptest::collection::vec((1u64..48, 1u64..256, 1u64..128), 1..4).prop_map(|dims| {
        let layers = dims
            .into_iter()
            .enumerate()
            .map(|(i, (m, k, n))| Layer::gemm(format!("l{i}"), GemmSpec::new(m, k, n)))
            .collect();
        Network::new("prop", layers)
    })
}

fn small_cfg(translation: bool) -> SystemConfig {
    let mut cfg = SystemConfig::bench(1, SharingLevel::Ideal);
    if !translation {
        cfg = cfg.without_translation();
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every byte of the trace is moved, rounded up to 64B transactions,
    /// and never more than one extra transaction per span.
    #[test]
    fn prop_traffic_conservation(net in arb_network()) {
        let cfg = small_cfg(false);
        let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);
        let spans: u64 = trace
            .layers()
            .iter()
            .flat_map(|l| &l.tiles)
            .map(|t| (t.loads.len() + t.stores.len()) as u64)
            .sum();
        let r = Simulation::new(&cfg, std::slice::from_ref(&trace)).run();
        prop_assert!(r.cores[0].traffic_bytes >= trace.total_traffic_bytes());
        prop_assert!(r.cores[0].traffic_bytes <= trace.total_traffic_bytes() + spans * 64);
    }

    /// Same inputs, same cycle count — bit-exact determinism.
    #[test]
    fn prop_determinism(net in arb_network()) {
        let cfg = small_cfg(true);
        let a = Simulation::execute_networks(&cfg, std::slice::from_ref(&net));
        let b = Simulation::execute_networks(&cfg, &[net]);
        prop_assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        prop_assert_eq!(a.dram.total.bytes, b.dram.total.bytes);
    }

    /// Execution time is bounded below by compute and above by a generous
    /// serial bound (compute + memory at worst-case single-channel rate).
    #[test]
    fn prop_cycle_bounds(net in arb_network()) {
        let cfg = small_cfg(true);
        let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);
        let r = Simulation::new(&cfg, std::slice::from_ref(&trace)).run();
        prop_assert!(r.cores[0].cycles >= trace.total_compute_cycles());
        // Worst case: everything serialized — compute + every transaction
        // (data + 4-level walks per distinct page, no reuse) at one
        // channel's burst rate plus full latency each.
        let txns = (trace.total_traffic_bytes() / 64 + 1) * 5;
        let bound = trace.total_compute_cycles() + txns * 400 + 100_000;
        prop_assert!(r.cores[0].cycles < bound, "{} !< {}", r.cores[0].cycles, bound);
    }

    /// Removing translation never slows a run down.
    #[test]
    fn prop_translation_only_adds_time(net in arb_network()) {
        let with = Simulation::execute_networks(&small_cfg(true), std::slice::from_ref(&net));
        let without = Simulation::execute_networks(&small_cfg(false), &[net]);
        prop_assert!(without.cores[0].cycles <= with.cores[0].cycles);
    }

    /// Doubling every shareable resource (Ideal of a dual-core chip) never
    /// slows a workload down vs the single-core chip.
    #[test]
    fn prop_more_resources_never_hurt(net in arb_network()) {
        let small = SystemConfig::bench(1, SharingLevel::Ideal);
        let big = SystemConfig::bench(2, SharingLevel::Ideal).ideal_solo();
        let r_small = Simulation::execute_networks(&small, std::slice::from_ref(&net));
        let r_big = Simulation::execute_networks(&big, &[net]);
        // Allow 2% slack: more channels can shift row-buffer luck slightly.
        prop_assert!(
            r_big.cores[0].cycles as f64 <= r_small.cores[0].cycles as f64 * 1.02,
            "{} !<= {}",
            r_big.cores[0].cycles,
            r_small.cores[0].cycles
        );
    }
}
