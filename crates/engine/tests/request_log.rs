//! Request-log ring-buffer boundary behavior and the `truncated` flag's
//! round-trip through [`RunReport::emit`].
//!
//! The cap semantics under test: a log holding *exactly* `cap` events is
//! complete (`truncated == false`); one event more drops the oldest entry
//! and latches the flag. The flag must then survive serialization in both
//! the JSON object and the trailing `request_log_truncated` CSV column.

use mnpu_engine::{
    Emit, Format, RunReport, SharingLevel, Simulation, SystemConfig, SystemConfigBuilder,
};
use mnpu_model::{zoo, Scale};

fn run(cap: Option<usize>) -> RunReport {
    let cfg = SystemConfigBuilder::from_config(SystemConfig::bench(1, SharingLevel::PlusDwt))
        .request_log(cap)
        .build()
        .unwrap();
    Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)])
}

fn emit(report: &RunReport, format: Format) -> String {
    let mut buf = Vec::new();
    report.emit(format, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// The run is deterministic, so an unbounded pass tells us the exact
/// event count to place the cap boundary on.
fn full_log_len() -> usize {
    let report = run(None);
    assert!(!report.request_log.is_empty(), "workload produced no loggable events");
    assert!(!report.request_log_truncated, "unbounded log cannot truncate");
    report.request_log.len()
}

#[test]
fn cap_exactly_at_event_count_keeps_everything() {
    let n = full_log_len();
    let report = run(Some(n));
    assert_eq!(report.request_log.len(), n);
    assert!(!report.request_log_truncated, "a log exactly at cap is complete, not truncated");
}

#[test]
fn cap_one_below_event_count_drops_the_oldest_and_latches_the_flag() {
    let n = full_log_len();
    let full = run(None);
    let report = run(Some(n - 1));
    assert_eq!(report.request_log.len(), n - 1);
    assert!(report.request_log_truncated);
    // The ring drops from the front: what survives is the *last* n-1
    // events of the unbounded log, byte for byte.
    assert_eq!(report.request_log, full.request_log[1..]);
}

#[test]
fn zero_cap_logs_nothing_but_still_reports_truncation() {
    let report = run(Some(0));
    assert!(report.request_log.is_empty());
    assert!(report.request_log_truncated);
}

#[test]
fn truncated_flag_round_trips_through_json() {
    let n = full_log_len();
    let clean = emit(&run(Some(n)), Format::Json);
    assert!(
        !clean.contains("\"request_log_truncated\""),
        "untruncated reports must omit the flag (golden JSON stability)"
    );
    let truncated = emit(&run(Some(n - 1)), Format::Json);
    assert!(truncated.contains("\"request_log_truncated\":true"));
}

#[test]
fn truncated_flag_round_trips_through_csv() {
    let n = full_log_len();
    for (cap, expect) in [(Some(n), false), (Some(n - 1), true)] {
        let text = emit(&run(cap), Format::Csv);
        let lines: Vec<&str> = text.lines().collect();
        let header: Vec<&str> = lines[0].split(',').collect();
        assert_eq!(
            header.last(),
            Some(&"request_log_truncated"),
            "flag column must be the trailing one"
        );
        let total: Vec<&str> = lines.last().unwrap().split(',').collect();
        assert_eq!(total.len(), header.len(), "total row must stay rectangular");
        assert_eq!(total.last(), Some(&if expect { "true" } else { "false" }));
        // Per-core rows carry the run-level flag as an empty cell.
        for row in &lines[1..lines.len() - 1] {
            let cells: Vec<&str> = row.split(',').collect();
            assert_eq!(cells.len(), header.len(), "core row must stay rectangular");
            assert_eq!(cells.last(), Some(&""));
        }
    }
}
