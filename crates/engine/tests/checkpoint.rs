//! Checkpoint/restore fencing: snapshot-at-cycle-k-then-resume must yield a
//! byte-identical report for *arbitrary* k, across probe modes, memory
//! models, NoC on/off, request logging, DRAM fast-forward on/off, and
//! sharing levels — plus the serialization round-trip, the loud failure
//! modes, and the shadow-MMU warm-start equivalence behind prefix sharing.

use mnpu_engine::{
    Advance, SharingLevel, SimSnapshot, Simulation, SnapError, SystemConfig, SNAPSHOT_VERSION,
};
use mnpu_model::{zoo, Network, Scale};
use mnpu_systolic::WorkloadTrace;
use proptest::prelude::*;

fn nets() -> Vec<Network> {
    vec![zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench)]
}

fn traces_for(cfg: &SystemConfig) -> Vec<WorkloadTrace> {
    nets().iter().zip(&cfg.arch).map(|(n, a)| WorkloadTrace::generate(n, a)).collect()
}

/// Step until a scheduler decision point, swallowing finish notifications
/// (which only flip bookkeeping and never change simulated state).
fn drive_to<P: mnpu_engine::Probe>(sim: &mut Simulation<P>, stop: u64) -> Advance {
    loop {
        match sim.advance(stop) {
            Advance::CoreFinished { .. } => continue,
            outcome => return outcome,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole lockstep law at the engine level: for an arbitrary
    /// checkpoint cycle and an arbitrary configuration corner,
    /// `execute_checkpointed` (run to k → snapshot → restore into a fresh
    /// simulation → finish) equals `execute` byte-for-byte.
    #[test]
    fn prop_checkpoint_resume_is_byte_exact(
        k_frac in 0u64..=1000,
        sharing_sel in 0u8..3,
        fastfwd in 0u8..2,
        with_noc in 0u8..2,
        with_log in 0u8..2,
        stats_probe in 0u8..2,
        ideal_mem in 0u8..2,
    ) {
        let sharing = match sharing_sel {
            0 => SharingLevel::PlusDwt,
            1 => SharingLevel::PlusD,
            _ => SharingLevel::Static,
        };
        let mut cfg = SystemConfig::bench(2, sharing);
        cfg.dram.fastfwd = fastfwd == 1;
        if with_noc == 1 {
            cfg = cfg.with_noc(mnpu_noc::NocConfig::narrow());
        }
        if with_log == 1 {
            cfg.request_log = true;
            cfg.request_log_cap = Some(512);
        }
        if stats_probe == 1 {
            cfg.probe = mnpu_engine::ProbeMode::Stats;
        }
        if ideal_mem == 1 {
            cfg = cfg.with_ideal_memory(60);
        }
        let traces = traces_for(&cfg);
        let native = Simulation::execute(&cfg, &traces);
        // Spread checkpoints over the whole run (and a little past it, so
        // snapshot-at-drained is covered too).
        let k = native.total_cycles * k_frac / 900;
        let resumed = Simulation::execute_checkpointed(&cfg, &traces, k);
        prop_assert_eq!(
            native.to_json(),
            resumed.to_json(),
            "checkpoint at cycle {} of {} broke bit-exactness",
            k,
            native.total_cycles
        );
    }
}

#[test]
fn snapshot_survives_binary_and_json_round_trips() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = traces_for(&cfg);
    let mut sim = Simulation::new(&cfg, &traces);
    drive_to(&mut sim, 200_000);
    let snap = sim.snapshot();

    let bytes = snap.to_bytes();
    let from_bytes = SimSnapshot::from_bytes(&bytes).expect("binary round-trip");
    assert_eq!(from_bytes, snap);
    let json = from_bytes.to_json();
    let from_json = SimSnapshot::from_json(&json).expect("JSON round-trip");
    assert_eq!(from_json, snap);
    assert_eq!(from_json.to_bytes(), bytes, "binary → JSON → binary must be byte-stable");

    // The round-tripped snapshot must restore and finish identically.
    let finish = |mut s: Simulation| {
        assert_eq!(drive_to(&mut s, u64::MAX), Advance::Drained);
        s.into_report().to_json()
    };
    let mut a = Simulation::new(&cfg, &traces);
    a.restore(&snap).unwrap();
    let mut b = Simulation::new(&cfg, &traces);
    b.restore(&from_json).unwrap();
    assert_eq!(finish(a), finish(b));
}

#[test]
fn equal_states_produce_byte_equal_snapshots() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = traces_for(&cfg);
    let snap = |()| {
        let mut sim = Simulation::new(&cfg, &traces);
        drive_to(&mut sim, 150_000);
        sim.snapshot().to_bytes()
    };
    assert_eq!(snap(()), snap(()), "snapshot bytes are a determinism oracle");
}

#[test]
fn version_mismatch_fails_loudly() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = traces_for(&cfg);
    let mut sim = Simulation::new(&cfg, &traces);
    drive_to(&mut sim, 10_000);
    let mut snap = sim.snapshot();
    snap.version = SNAPSHOT_VERSION + 1;

    let mut fresh = Simulation::new(&cfg, &traces);
    match fresh.restore(&snap) {
        Err(SnapError::VersionMismatch { found, expected }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // The wire decoders reject it just as loudly.
    assert!(matches!(
        SimSnapshot::from_bytes(&snap.to_bytes()),
        Err(SnapError::VersionMismatch { .. })
    ));
    assert!(matches!(
        SimSnapshot::from_json(&snap.to_json()),
        Err(SnapError::VersionMismatch { .. })
    ));
}

#[test]
fn config_mismatch_is_rejected() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = traces_for(&cfg);
    let mut sim = Simulation::new(&cfg, &traces);
    drive_to(&mut sim, 10_000);
    let snap = sim.snapshot();

    let other_cfg = SystemConfig::bench(2, SharingLevel::PlusD);
    let mut other = Simulation::new(&other_cfg, &traces_for(&other_cfg));
    assert!(matches!(other.restore(&snap), Err(SnapError::ConfigMismatch { .. })));
}

#[test]
fn trace_mismatch_names_the_core() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = traces_for(&cfg);
    let mut sim = Simulation::new(&cfg, &traces);
    drive_to(&mut sim, 10_000);
    let snap = sim.snapshot();

    // Same config, core 1 bound to a different workload.
    let swapped: Vec<WorkloadTrace> = [zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)]
        .iter()
        .zip(&cfg.arch)
        .map(|(n, a)| WorkloadTrace::generate(n, a))
        .collect();
    let mut other = Simulation::new(&cfg, &swapped);
    assert!(matches!(other.restore(&snap), Err(SnapError::TraceMismatch { core: 1 })));
}

#[test]
fn corrupt_payload_fails_not_garbage() {
    let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let traces = traces_for(&cfg);
    let mut sim = Simulation::new(&cfg, &traces);
    drive_to(&mut sim, 10_000);
    let mut snap = sim.snapshot();
    snap.payload.truncate(snap.payload.len() / 2);
    let mut fresh = Simulation::new(&cfg, &traces);
    assert!(fresh.restore(&snap).is_err(), "truncated payload must be rejected");
}

/// The warm-start core of prefix sharing: run one representative (+D) with
/// shadow MMUs for +DW and +DWT, fork each variant from its last
/// in-lockstep checkpoint, finish the forks natively, and require byte
/// identity with each variant's native run. Correctness must not depend on
/// *when* (or whether) a variant diverges.
#[test]
fn shadow_forks_reproduce_native_runs_exactly() {
    let rep_cfg = SystemConfig::bench(2, SharingLevel::PlusD);
    let variants = [
        SystemConfig::bench(2, SharingLevel::PlusDw),
        SystemConfig::bench(2, SharingLevel::PlusDwt),
    ];
    let traces = traces_for(&rep_cfg);

    let mut rep = Simulation::new(&rep_cfg, &traces);
    for v in &variants {
        rep.add_shadow_config(v);
    }
    assert_eq!(rep.shadow_count(), variants.len());

    // Checkpoint cadence: fork every still-converged shadow, keeping the
    // most recent valid fork per variant (the initial state is always one).
    let mut forks: Vec<SimSnapshot> =
        (0..variants.len()).map(|i| rep.fork_snapshot(i).expect("pristine shadows fork")).collect();
    const CHUNK: u64 = 1 << 15;
    let mut stop = CHUNK;
    loop {
        match drive_to(&mut rep, stop) {
            Advance::Drained => break,
            Advance::Parked => {
                for (i, fork) in forks.iter_mut().enumerate() {
                    if let Some(snap) = rep.fork_snapshot(i) {
                        *fork = snap;
                    }
                }
                stop += CHUNK;
            }
            Advance::CoreFinished { .. } => unreachable!("drive_to swallows finishes"),
        }
    }
    // A drained representative can still fork never-diverged shadows.
    for (i, fork) in forks.iter_mut().enumerate() {
        if let Some(snap) = rep.fork_snapshot(i) {
            assert!(rep.shadow_diverged(i).is_none());
            *fork = snap;
        }
    }

    for (i, vcfg) in variants.iter().enumerate() {
        let native = Simulation::execute(vcfg, &traces).to_json();
        let mut resumed = Simulation::new(vcfg, &traces);
        resumed.restore(&forks[i]).unwrap_or_else(|e| panic!("variant {i} fork restore: {e:?}"));
        assert_eq!(drive_to(&mut resumed, u64::MAX), Advance::Drained);
        assert_eq!(
            resumed.into_report().to_json(),
            native,
            "variant {i} (diverged at {:?}) must finish byte-identical to its native run",
            rep.shadow_diverged(i)
        );
    }
}
