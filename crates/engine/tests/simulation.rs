//! End-to-end tests of the multi-core engine: pipeline correctness,
//! sharing-level semantics, clock domains, and determinism.

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, GemmSpec, Layer, Network, Scale};
use mnpu_systolic::WorkloadTrace;

/// A small, fast workload for structural tests.
fn tiny_net(name: &str) -> Network {
    Network::new(
        name,
        vec![
            Layer::gemm("fc1", GemmSpec::new(32, 256, 64)),
            Layer::gemm("fc2", GemmSpec::new(32, 64, 32)),
        ],
    )
}

fn bench_cfg(cores: usize, sharing: SharingLevel) -> SystemConfig {
    SystemConfig::bench(cores, sharing)
}

#[test]
fn single_core_completes_and_accounts_traffic() {
    let net = tiny_net("t");
    let cfg = bench_cfg(1, SharingLevel::Ideal);
    let r = Simulation::execute_networks(&cfg, std::slice::from_ref(&net));
    assert_eq!(r.cores.len(), 1);
    let c = &r.cores[0];
    assert_eq!(c.workload, "t");
    assert!(c.cycles > 0);
    assert!(c.compute_cycles > 0);
    assert!(c.cycles >= c.compute_cycles, "execution covers compute");
    // All trace traffic must be moved, 64B-rounded per span.
    let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);
    assert!(c.traffic_bytes >= trace.total_traffic_bytes());
    assert!(c.traffic_bytes < trace.total_traffic_bytes() * 2);
}

#[test]
fn execution_cycles_lower_bounded_by_compute() {
    for name in ["ncf", "gpt2"] {
        let net = zoo::by_name(name, Scale::Bench).unwrap();
        let cfg = bench_cfg(1, SharingLevel::Ideal);
        let trace = WorkloadTrace::generate(&net, &cfg.arch[0]);
        let r = Simulation::execute_networks(&cfg, &[net]);
        assert!(
            r.cores[0].cycles >= trace.total_compute_cycles(),
            "{name}: memory can only add time"
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let cfg = bench_cfg(2, SharingLevel::PlusDwt);
    let nets = [zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)];
    let a = Simulation::execute_networks(&cfg, &nets);
    let b = Simulation::execute_networks(&cfg, &nets);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.cores[1].cycles, b.cores[1].cycles);
    assert_eq!(a.dram.total.bytes, b.dram.total.bytes);
}

#[test]
fn translation_disabled_is_faster_and_walk_free() {
    let net = zoo::ncf(Scale::Bench);
    let with = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    let without = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal).without_translation(),
        &[net],
    );
    assert_eq!(without.cores[0].walk_bytes, 0);
    assert_eq!(without.cores[0].mmu.walks, 0);
    assert!(without.cores[0].cycles <= with.cores[0].cycles);
    assert!(with.cores[0].walk_bytes > 0);
}

#[test]
fn co_runners_slow_each_other_down() {
    let net = zoo::selfish_rnn(Scale::Bench);
    let solo = Simulation::execute_networks(
        &bench_cfg(2, SharingLevel::PlusDwt).ideal_solo(),
        std::slice::from_ref(&net),
    );
    let duo = Simulation::execute_networks(
        &bench_cfg(2, SharingLevel::PlusDwt),
        &[net.clone(), net.clone()],
    );
    for c in &duo.cores {
        assert!(
            c.cycles >= solo.cores[0].cycles,
            "sharing cannot beat monopolizing: {} vs {}",
            c.cycles,
            solo.cores[0].cycles
        );
    }
}

#[test]
fn identical_corunners_finish_nearly_together() {
    let net = zoo::gpt2(Scale::Bench);
    let r = Simulation::execute_networks(&bench_cfg(2, SharingLevel::PlusDwt), &[net.clone(), net]);
    let (a, b) = (r.cores[0].cycles as f64, r.cores[1].cycles as f64);
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.1, "symmetric mix should be balanced: {a} vs {b}");
}

#[test]
fn sharing_dram_beats_static_for_memory_heavy_mix() {
    // The paper's headline: dynamic sharing outperforms equal static
    // partitioning thanks to bursty access.
    let nets = [zoo::selfish_rnn(Scale::Bench), zoo::dlrm(Scale::Bench)];
    let stat = Simulation::execute_networks(&bench_cfg(2, SharingLevel::Static), &nets);
    let dwt = Simulation::execute_networks(&bench_cfg(2, SharingLevel::PlusDwt), &nets);
    let geo =
        |r: &mnpu_engine::RunReport| (r.cores[0].cycles as f64 * r.cores[1].cycles as f64).sqrt();
    assert!(geo(&dwt) < geo(&stat), "+DWT {} should beat Static {}", geo(&dwt), geo(&stat));
}

#[test]
fn static_partition_isolates_corunners() {
    // Under Static, a core's performance must not depend on its co-runner
    // (private channels, walkers, TLB). The engine retries blocked DMA at
    // global event times, so co-runner events introduce sub-0.5% timing
    // quantization jitter but no resource coupling: all counters must match
    // exactly.
    let a = zoo::ncf(Scale::Bench);
    let r1 = Simulation::execute_networks(
        &bench_cfg(2, SharingLevel::Static),
        &[a.clone(), zoo::dlrm(Scale::Bench)],
    );
    let r2 = Simulation::execute_networks(
        &bench_cfg(2, SharingLevel::Static),
        &[a, zoo::gpt2(Scale::Bench)],
    );
    assert_eq!(r1.cores[0].traffic_bytes, r2.cores[0].traffic_bytes);
    assert_eq!(r1.cores[0].mmu, r2.cores[0].mmu, "no MMU coupling under Static");
    let (c1, c2) = (r1.cores[0].cycles as f64, r2.cores[0].cycles as f64);
    assert!((c1 - c2).abs() / c1 < 0.005, "isolation within quantization: {c1} vs {c2}");
}

#[test]
fn unequal_channel_partition_shifts_performance() {
    let nets = [zoo::selfish_rnn(Scale::Bench), zoo::selfish_rnn(Scale::Bench)];
    let cfg17 = bench_cfg(2, SharingLevel::Static).with_channel_partition(vec![1, 7]);
    let r = Simulation::execute_networks(&cfg17, &nets);
    assert!(
        r.cores[0].cycles > r.cores[1].cycles * 2,
        "1:7 split should starve core 0: {} vs {}",
        r.cores[0].cycles,
        r.cores[1].cycles
    );
}

#[test]
fn unequal_ptw_partition_shifts_performance() {
    let nets = [zoo::dlrm(Scale::Bench), zoo::dlrm(Scale::Bench)];
    let cfg = bench_cfg(2, SharingLevel::PlusD).with_ptw_partition(vec![1, 3]);
    let r = Simulation::execute_networks(&cfg, &nets);
    assert!(
        r.cores[0].cycles > r.cores[1].cycles,
        "walker-starved core must be slower: {} vs {}",
        r.cores[0].cycles,
        r.cores[1].cycles
    );
}

#[test]
fn larger_pages_walk_less_and_run_faster_for_dlrm() {
    let net = zoo::dlrm(Scale::Bench);
    let p4k = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    let p1m = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal).with_page_size(1 << 20),
        &[net],
    );
    assert!(p1m.cores[0].mmu.walks < p4k.cores[0].mmu.walks / 10);
    assert!(p1m.cores[0].cycles < p4k.cores[0].cycles);
}

#[test]
fn iterations_scale_cycles() {
    let net = tiny_net("i");
    let mut cfg = bench_cfg(1, SharingLevel::Ideal);
    let once = Simulation::execute_networks(&cfg, std::slice::from_ref(&net));
    cfg.iterations = 3;
    let thrice = Simulation::execute_networks(&cfg, &[net]);
    let (c1, c3) = (once.cores[0].cycles as f64, thrice.cores[0].cycles as f64);
    assert!(c3 > 2.0 * c1, "3 iterations well above 2x one: {c1} vs {c3}");
    assert!(c3 < 3.5 * c1, "warm TLB keeps later iterations cheaper: {c1} vs {c3}");
}

#[test]
fn start_cycle_offsets_delay_completion() {
    let net = tiny_net("s");
    let mut cfg = bench_cfg(2, SharingLevel::PlusDwt);
    let base = Simulation::execute_networks(&cfg, &[net.clone(), net.clone()]);
    cfg.start_cycles = vec![0, 100_000];
    let offset = Simulation::execute_networks(&cfg, &[net.clone(), net]);
    assert!(offset.total_cycles >= 100_000);
    // Core 1's own execution time is measured from its start, so it is not
    // inflated by the offset itself.
    assert!(offset.cores[1].cycles < base.cores[1].cycles + 100_000);
}

#[test]
fn slower_core_clock_stretches_execution() {
    let net = tiny_net("c");
    let fast = bench_cfg(1, SharingLevel::Ideal);
    let mut slow = fast.clone();
    slow.arch[0].freq_mhz = 500; // half the DRAM clock
    let rf = Simulation::execute_networks(&fast, std::slice::from_ref(&net));
    let rs = Simulation::execute_networks(&slow, &[net]);
    // In *global* cycles the slow core takes longer; its own cycle count is
    // lower per unit time, so compare via total_cycles.
    assert!(rs.total_cycles > rf.total_cycles);
}

#[test]
fn quad_core_mix_completes() {
    let nets = [
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::yolo_tiny(Scale::Bench),
        zoo::dlrm(Scale::Bench),
    ];
    let cfg = bench_cfg(4, SharingLevel::PlusDw);
    let r = Simulation::execute_networks(&cfg, &nets);
    assert_eq!(r.cores.len(), 4);
    for c in &r.cores {
        assert!(c.cycles > 0);
    }
    assert_eq!(r.dram.per_channel.len(), 16);
}

#[test]
fn bandwidth_trace_covers_run() {
    let mut cfg = bench_cfg(1, SharingLevel::Ideal);
    cfg.trace_window = Some(1000);
    let r = Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)]);
    let t = r.bandwidth_trace.expect("trace enabled");
    let total: u64 = t.core_series(0).iter().sum();
    assert_eq!(total, r.dram.total.bytes);
    assert!(t.len() as u64 * 1000 >= r.total_cycles);
}

#[test]
fn pe_utilization_reported_in_unit_interval() {
    for name in ["res", "dlrm"] {
        let net = zoo::by_name(name, Scale::Bench).unwrap();
        let r = Simulation::execute_networks(&bench_cfg(1, SharingLevel::Ideal), &[net]);
        let u = r.cores[0].pe_utilization;
        assert!(u > 0.0 && u <= 1.0, "{name}: {u}");
    }
}

#[test]
fn walk_bytes_proportional_to_levels() {
    let net = zoo::ncf(Scale::Bench);
    let l4 = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    let l3 = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal).with_page_size(65536),
        &[net],
    );
    let w4 = l4.cores[0].walk_bytes as f64 / l4.cores[0].mmu.walks as f64;
    let w3 = l3.cores[0].walk_bytes as f64 / l3.cores[0].mmu.walks as f64;
    assert!((w4 - 256.0).abs() < 1.0, "4 levels x 64B: {w4}");
    assert!((w3 - 192.0).abs() < 1.0, "3 levels x 64B: {w3}");
}

#[test]
#[should_panic(expected = "one workload trace per core")]
fn trace_count_mismatch_panics() {
    let cfg = bench_cfg(2, SharingLevel::PlusDwt);
    let t = WorkloadTrace::generate(&tiny_net("x"), &cfg.arch[0]);
    let _ = Simulation::new(&cfg, &[t]);
}

#[test]
fn heterogeneous_cores_supported() {
    let mut cfg = bench_cfg(2, SharingLevel::PlusDwt);
    cfg.arch[1].rows = 8;
    cfg.arch[1].cols = 8;
    let nets = [tiny_net("big"), tiny_net("small")];
    let r = Simulation::execute_networks(&cfg, &nets);
    // The weaker core needs more cycles for the same work.
    assert!(r.cores[1].cycles > r.cores[0].cycles);
}

#[test]
fn request_log_records_translation_and_dram_events() {
    use mnpu_engine::LogKind;
    let mut cfg = bench_cfg(1, SharingLevel::Ideal);
    cfg.request_log = true;
    let r = Simulation::execute_networks(&cfg, &[tiny_net("log")]);
    assert!(!r.request_log.is_empty());
    let count = |k: LogKind| r.request_log.iter().filter(|e| e.kind == k).count() as u64;
    // Every data transaction produced exactly one TLB lookup and one DRAM
    // completion event.
    let lookups = count(LogKind::TlbHit) + count(LogKind::TlbMiss);
    let drams = count(LogKind::DramReadDone) + count(LogKind::DramWriteDone);
    assert_eq!(lookups, r.cores[0].mmu.tlb_hits + r.cores[0].mmu.tlb_misses);
    assert_eq!(drams * 64, r.cores[0].traffic_bytes);
    // Walk starts match walk completions and the MMU's walk count.
    assert_eq!(count(LogKind::WalkStart), count(LogKind::WalkDone));
    assert_eq!(count(LogKind::WalkStart), r.cores[0].mmu.walks);
    // Cycles are non-decreasing.
    assert!(r.request_log.windows(2).all(|w| w[0].cycle <= w[1].cycle));
}

#[test]
fn request_log_disabled_by_default() {
    let r = Simulation::execute_networks(&bench_cfg(1, SharingLevel::Ideal), &[tiny_net("nolog")]);
    assert!(r.request_log.is_empty());
}

#[test]
fn fcfs_scheduling_is_not_faster_than_frfcfs() {
    use mnpu_dram::SchedPolicy;
    let net = zoo::gpt2(Scale::Bench);
    let fr = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    let mut cfg = bench_cfg(1, SharingLevel::Ideal);
    cfg.dram.policy = SchedPolicy::Fcfs;
    let fc = Simulation::execute_networks(&cfg, &[net]);
    assert!(
        fc.cores[0].cycles as f64 >= fr.cores[0].cycles as f64 * 0.99,
        "FR-FCFS should not lose to FCFS: {} vs {}",
        fr.cores[0].cycles,
        fc.cores[0].cycles
    );
}

#[test]
fn disabling_walk_coalescing_starts_more_walks() {
    let net = zoo::dlrm(Scale::Bench);
    let on = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    let mut cfg = bench_cfg(1, SharingLevel::Ideal);
    cfg.mmu.coalesce_walks = false;
    let off = Simulation::execute_networks(&cfg, &[net]);
    assert!(off.cores[0].mmu.walks > on.cores[0].mmu.walks);
    assert_eq!(off.cores[0].mmu.coalesced, 0);
    assert!(off.cores[0].cycles >= on.cores[0].cycles);
}

#[test]
fn bounded_walker_pool_protects_victim_from_hog() {
    // dlrm floods walkers; a min-reservation for the co-runner under +DW
    // must improve the co-runner vs the unbounded shared pool.
    let nets = [zoo::dlrm(Scale::Bench), zoo::ncf(Scale::Bench)];
    let shared = Simulation::execute_networks(&bench_cfg(2, SharingLevel::PlusDw), &nets);
    let cfg = bench_cfg(2, SharingLevel::PlusDw).with_ptw_bounds(vec![0, 2], vec![4, 4]);
    let bounded = Simulation::execute_networks(&cfg, &nets);
    assert!(
        bounded.cores[1].cycles <= shared.cores[1].cycles,
        "reserved walkers must not hurt the victim: {} vs {}",
        bounded.cores[1].cycles,
        shared.cores[1].cycles
    );
}

#[test]
fn equal_tight_bounds_match_static_partition_semantics() {
    // min == max == per-core share behaves like the static walker split.
    let nets = [zoo::dlrm(Scale::Bench), zoo::dlrm(Scale::Bench)];
    let cfg = bench_cfg(2, SharingLevel::PlusDw).with_ptw_bounds(vec![2, 2], vec![2, 2]);
    let bounded = Simulation::execute_networks(&cfg, &nets);
    let part = Simulation::execute_networks(&bench_cfg(2, SharingLevel::PlusD), &nets);
    for (b, p) in bounded.cores.iter().zip(&part.cores) {
        let ratio = b.cycles as f64 / p.cycles as f64;
        assert!((0.95..1.05).contains(&ratio), "bounded(2,2)≈private(2): {ratio}");
    }
}

#[test]
fn ptw_bounds_require_sharing_level() {
    let cfg = bench_cfg(2, SharingLevel::PlusD).with_ptw_bounds(vec![1, 1], vec![2, 2]);
    assert!(cfg.validate().is_err());
    let cfg = bench_cfg(2, SharingLevel::PlusDw).with_ptw_bounds(vec![1, 1], vec![2, 2]);
    assert!(cfg.validate().is_ok());
}

#[test]
#[should_panic(expected = "max_cycles")]
fn watchdog_fires_on_tiny_budget() {
    let mut cfg = bench_cfg(1, SharingLevel::Ideal);
    cfg.max_cycles = Some(10);
    let _ = Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)]);
}

#[test]
fn energy_report_is_positive_and_decomposes() {
    use mnpu_engine::EnergyModel;
    let cfg = bench_cfg(2, SharingLevel::PlusDwt);
    let nets = [zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)];
    let r = Simulation::execute_networks(&cfg, &nets);
    let e = r.estimate_energy(&cfg, &EnergyModel::default());
    assert_eq!(e.compute_nj.len(), 2);
    assert!(e.compute_nj.iter().all(|&x| x > 0.0));
    assert!(e.spm_nj.iter().all(|&x| x > 0.0));
    assert!(e.dram.total_nj() > 0.0);
    let sum = e.compute_nj.iter().sum::<f64>() + e.spm_nj.iter().sum::<f64>() + e.dram.total_nj();
    assert!((e.total_nj() - sum).abs() < 1e-9);
    // More traffic (gpt2) costs more SPM energy than ncf.
    assert!(e.spm_nj[1] > e.spm_nj[0]);
}

#[test]
fn noc_adds_latency_and_reports_queueing() {
    use mnpu_noc::NocConfig;
    let net = zoo::ncf(Scale::Bench);
    let ideal = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    assert_eq!(ideal.cores[0].noc_queue_cycles, 0, "no NoC, no queueing");

    let narrow = bench_cfg(1, SharingLevel::Ideal).with_noc(NocConfig::narrow());
    let r = Simulation::execute_networks(&narrow, std::slice::from_ref(&net));
    assert!(r.cores[0].cycles >= ideal.cores[0].cycles, "NoC can only add time");
    assert!(r.cores[0].noc_queue_cycles > 0, "16 B/cycle link must queue 64B bursts");
    assert_eq!(r.cores[0].traffic_bytes, ideal.cores[0].traffic_bytes, "same work");

    // A wide NoC should cost much less than a narrow one.
    let wide = bench_cfg(1, SharingLevel::Ideal).with_noc(NocConfig::wide());
    let w = Simulation::execute_networks(&wide, &[net]);
    assert!(w.cores[0].cycles <= r.cores[0].cycles);
}

#[test]
fn noc_runs_are_deterministic_and_complete_for_mixes() {
    use mnpu_noc::NocConfig;
    let cfg = bench_cfg(2, SharingLevel::PlusDwt).with_noc(NocConfig::narrow());
    let nets = [zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)];
    let a = Simulation::execute_networks(&cfg, &nets);
    let b = Simulation::execute_networks(&cfg, &nets);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.cores[1].cycles, b.cores[1].cycles);
    assert!(a.cores.iter().all(|c| c.cycles > 0));
}

#[test]
#[allow(deprecated)] // the retired shim must stay byte-identical to execute_networks
fn fleet_of_chips_is_independent() {
    let cfg = bench_cfg(2, SharingLevel::PlusDwt);
    let a = vec![zoo::ncf(Scale::Bench), zoo::gpt2(Scale::Bench)];
    let b = vec![zoo::gpt2(Scale::Bench), zoo::ncf(Scale::Bench)];
    let fleet = Simulation::run_fleet(&cfg, &[a.clone(), b.clone()]);
    assert_eq!(fleet.len(), 2);
    // Each chip's result equals its standalone simulation.
    let solo_a = Simulation::execute_networks(&cfg, &a);
    assert_eq!(fleet[0].cores[0].cycles, solo_a.cores[0].cycles);
    assert_eq!(fleet[0].cores[1].cycles, solo_a.cores[1].cycles);
    // Swapped placement on chip b actually swaps the roles.
    assert_eq!(fleet[1].cores[1].workload, "ncf");
}

#[test]
fn ideal_solo_clears_all_partitioning() {
    let cfg = bench_cfg(2, SharingLevel::PlusDw).with_ptw_bounds(vec![1, 1], vec![3, 3]);
    let solo = cfg.ideal_solo();
    assert!(solo.ptw_bounds.is_none());
    assert!(solo.channel_partition.is_none());
    assert!(solo.ptw_partition.is_none());
    assert!(solo.validate().is_ok());
}

#[test]
fn weight_stationary_cores_run_end_to_end() {
    use mnpu_systolic::Dataflow;
    let mut cfg = bench_cfg(2, SharingLevel::PlusDwt);
    cfg.arch[1].dataflow = Dataflow::WeightStationary;
    let nets = [zoo::ncf(Scale::Bench), zoo::ncf(Scale::Bench)];
    let r = Simulation::execute_networks(&cfg, &nets);
    assert!(r.cores.iter().all(|c| c.cycles > 0));
    // Same workload, different dataflow: compute schedules differ.
    assert_ne!(r.cores[0].compute_cycles, r.cores[1].compute_cycles);
}

#[test]
fn layer_cycles_cover_the_whole_run() {
    let net = zoo::gpt2(Scale::Bench);
    let r = Simulation::execute_networks(
        &bench_cfg(1, SharingLevel::Ideal),
        std::slice::from_ref(&net),
    );
    let c = &r.cores[0];
    assert_eq!(c.layer_cycles.len(), net.num_layers());
    let sum: u64 = c.layer_cycles.iter().map(|(_, v)| v).sum();
    assert!(sum <= c.cycles + net.num_layers() as u64, "rounding slack only");
    assert!(sum * 10 >= c.cycles * 9, "layers cover ≥90% of execution: {sum} vs {}", c.cycles);
    // Names match the model in order.
    for ((name, _), layer) in c.layer_cycles.iter().zip(net.iter()) {
        assert_eq!(name, layer.name());
    }
}

#[test]
fn simulation_state_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Simulation>();
}

#[test]
fn ideal_memory_backend_runs_and_is_contention_free() {
    let net = tiny_net("t");
    let timing = bench_cfg(2, SharingLevel::PlusDwt);
    let ideal = bench_cfg(2, SharingLevel::PlusDwt).with_ideal_memory(8);
    let nets = [net.clone(), net];
    let rt = Simulation::execute_networks(&timing, &nets);
    let ri = Simulation::execute_networks(&ideal, &nets);
    // Same traffic either way; the ideal backend just never stalls it.
    assert_eq!(ri.cores[0].traffic_bytes, rt.cores[0].traffic_bytes);
    assert!(ri.dram.total.bytes > 0);
    assert!(
        ri.total_cycles <= rt.total_cycles,
        "infinite-bandwidth memory must not be slower: ideal={} timing={}",
        ri.total_cycles,
        rt.total_cycles
    );
}

#[test]
fn ideal_memory_backend_is_deterministic() {
    let net = tiny_net("t");
    let cfg = bench_cfg(2, SharingLevel::PlusDw).with_ideal_memory(16);
    let nets = [net.clone(), net];
    let a = Simulation::execute_networks(&cfg, &nets);
    let b = Simulation::execute_networks(&cfg, &nets);
    let cycles = |r: &mnpu_engine::RunReport| r.cores.iter().map(|c| c.cycles).collect::<Vec<_>>();
    assert_eq!(cycles(&a), cycles(&b));
}
