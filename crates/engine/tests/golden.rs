//! Golden equivalence suite: quad-core mixed-benchmark runs, serialized
//! to JSON, must stay byte-identical across simulator changes.
//!
//! The fixtures under `tests/fixtures/` pin the simulator's visible
//! behavior exactly: any hot-path change (next-event caching, scheduler
//! candidate caches, buffer reuse) that alters even one cycle, one stat
//! counter, or one completion ordering fails these tests. Together with
//! the serial/parallel determinism test in `mnpu-bench`, they are the
//! regression net under every optimization PR.
//!
//! Four variants of the same quad-core mixed workload are pinned:
//! the HBM2-class bench chip (the original fixture), the DDR4 preset
//! (longer CAS, slower clock, deeper refresh — a different event
//! schedule shape), and the 64 KB and 1 MB page sizes (3- and 2-level
//! walks, different TLB reach).
//!
//! Regenerate intentionally (after a *semantic* model change, never for
//! an optimization) with:
//!
//! ```text
//! MNPU_BLESS=1 cargo test -p mnpu-engine --test golden
//! ```
//!
//! which rewrites every fixture in one pass and prints the new sizes.

use mnpu_dram::DramConfig;
use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};

/// The pinned run: four different benchmarks (memory-bound ds2, the two
/// language models, and compute-bound ncf) on a quad-core chip with every
/// resource shared (+DWT) — the configuration that exercises DRAM FR-FCFS
/// scheduling, refresh, TLB sharing, walk coalescing, and the walker pool
/// all at once. Bandwidth tracing is enabled so completion *timing*, not
/// just totals, is captured in the fixture.
fn golden_config() -> SystemConfig {
    let mut cfg = SystemConfig::bench(4, SharingLevel::PlusDwt);
    cfg.trace_window = Some(4096);
    cfg
}

fn golden_report(cfg: &SystemConfig) -> String {
    let nets = [
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::yolo_tiny(Scale::Bench),
        zoo::dlrm(Scale::Bench),
    ];
    Simulation::execute_networks(cfg, &nets).to_json()
}

/// Compare `json` against the named fixture, or rewrite the fixture when
/// `MNPU_BLESS=1` is set.
fn check_fixture(name: &str, json: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let path = format!("{dir}/{name}");
    if std::env::var("MNPU_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(&path, json).unwrap();
        eprintln!("blessed fixture {name}: {} bytes", json.len());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("fixture {name} missing — generate with MNPU_BLESS=1 (see module docs)")
    });
    // Compare lengths first for a readable failure before the full diff.
    assert_eq!(json.len(), expected.len(), "{name}: serialized report size changed");
    assert_eq!(json, &expected, "{name}: golden report must be byte-identical");
}

#[test]
fn quad_mixed_run_matches_golden_fixture() {
    check_fixture("quad_golden.json", &golden_report(&golden_config()));
}

#[test]
fn quad_mixed_ddr4_matches_golden_fixture() {
    let mut cfg = golden_config();
    cfg.dram = DramConfig::ddr4(4);
    check_fixture("quad_golden_ddr4.json", &golden_report(&cfg));
}

#[test]
fn quad_mixed_64k_pages_matches_golden_fixture() {
    let cfg = golden_config().with_page_size(65536);
    check_fixture("quad_golden_64k.json", &golden_report(&cfg));
}

#[test]
fn quad_mixed_1m_pages_matches_golden_fixture() {
    let cfg = golden_config().with_page_size(1_048_576);
    check_fixture("quad_golden_1m.json", &golden_report(&cfg));
}
