//! Golden equivalence test: a quad-core mixed-benchmark run, serialized to
//! JSON, must stay byte-identical across simulator changes.
//!
//! The fixture (`tests/fixtures/quad_golden.json`) was produced by the
//! pre-optimization event loop; any hot-path change (next-event caching,
//! scheduler candidate caches, buffer reuse) that alters even one cycle,
//! one stat counter, or one completion ordering fails this test. Together
//! with the serial/parallel determinism test in `mnpu-bench`, it pins the
//! simulator's visible behavior exactly.
//!
//! Regenerate intentionally (after a *semantic* model change, never for an
//! optimization) with:
//!
//! ```text
//! MNPU_BLESS=1 cargo test -p mnpu-engine --test golden
//! ```

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/quad_golden.json");

/// The pinned run: four different benchmarks (memory-bound ds2, the two
/// language models, and compute-bound ncf) on a quad-core chip with every
/// resource shared (+DWT) — the configuration that exercises DRAM FR-FCFS
/// scheduling, refresh, TLB sharing, walk coalescing, and the walker pool
/// all at once. Bandwidth tracing is enabled so completion *timing*, not
/// just totals, is captured in the fixture.
fn golden_report() -> String {
    let mut cfg = SystemConfig::bench(4, SharingLevel::PlusDwt);
    cfg.trace_window = Some(4096);
    let nets = [
        zoo::ncf(Scale::Bench),
        zoo::gpt2(Scale::Bench),
        zoo::yolo_tiny(Scale::Bench),
        zoo::dlrm(Scale::Bench),
    ];
    Simulation::run_networks(&cfg, &nets).to_json()
}

#[test]
fn quad_mixed_run_matches_golden_fixture() {
    let json = golden_report();
    if std::env::var("MNPU_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).unwrap();
        std::fs::write(FIXTURE, &json).unwrap();
        eprintln!("blessed fixture: {} bytes", json.len());
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — generate with MNPU_BLESS=1 (see module docs)");
    // Compare lengths first for a readable failure before the full diff.
    assert_eq!(json.len(), expected.len(), "serialized report size changed");
    assert_eq!(json, expected, "quad-core golden report must be byte-identical");
}
