//! Every [`ConfigError`] variant of [`SystemConfigBuilder::build`] is
//! constructible from a legal starting preset by exactly one bad edit,
//! and each renders the documented `Display` string. The strings are
//! asserted verbatim: they appear in CLI error output and fuzzer repro
//! artifacts, so changing one is a user-visible change.

use mnpu_engine::{ConfigError, SharingLevel, SystemConfig, SystemConfigBuilder};

fn build(cfg: SystemConfig) -> Result<SystemConfig, ConfigError> {
    SystemConfigBuilder::from_config(cfg).build()
}

fn base(cores: usize, sharing: SharingLevel) -> SystemConfig {
    SystemConfig::bench(cores, sharing)
}

#[test]
fn no_cores() {
    let mut cfg = base(1, SharingLevel::PlusDwt);
    cfg.cores = 0;
    cfg.arch.clear();
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::NoCores);
    assert_eq!(e.to_string(), "at least one core required");
}

#[test]
fn arch_count_mismatch() {
    let mut cfg = base(2, SharingLevel::PlusDwt);
    cfg.arch.pop();
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::ArchCountMismatch { cores: 2, archs: 1 });
    assert_eq!(e.to_string(), "2 cores but 1 ArchConfig entries (need one per core)");
}

#[test]
fn invalid_arch() {
    let mut cfg = base(2, SharingLevel::PlusDwt);
    cfg.arch[1].rows = 0;
    let e = build(cfg).unwrap_err();
    assert_eq!(
        e,
        ConfigError::InvalidArch {
            core: 1,
            reason: "systolic array dimensions must be positive".into()
        }
    );
    assert_eq!(e.to_string(), "core 1: systolic array dimensions must be positive");
}

#[test]
fn no_channels() {
    let mut cfg = base(1, SharingLevel::PlusDwt);
    cfg.channels_per_core = 0;
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::NoChannels);
    assert_eq!(e.to_string(), "at least one channel per core required");
}

#[test]
fn invalid_dram() {
    let mut cfg = base(1, SharingLevel::PlusDwt);
    cfg.dram.queue_depth = 0;
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::InvalidDram("queue_depth must be positive".into()));
    assert_eq!(e.to_string(), "dram: queue_depth must be positive");
}

#[test]
fn invalid_mmu() {
    let mut cfg = base(1, SharingLevel::PlusDwt);
    cfg.mmu.tlb_assoc = 3; // 512 entries is not a multiple of 3
    let e = build(cfg).unwrap_err();
    assert_eq!(
        e,
        ConfigError::InvalidMmu("TLB entries must be a multiple of associativity".into())
    );
    assert_eq!(e.to_string(), "mmu: TLB entries must be a multiple of associativity");
}

#[test]
fn invalid_noc() {
    let mut cfg = base(1, SharingLevel::PlusDwt);
    cfg.noc = Some(mnpu_noc::NocConfig { bytes_per_cycle: 0, hop_latency: 4 });
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::InvalidNoc("NoC bandwidth must be positive".into()));
    assert_eq!(e.to_string(), "noc: NoC bandwidth must be positive");
}

#[test]
fn partition_with_sharing() {
    // +D shares DRAM, so a static channel split contradicts the level.
    let mut cfg = base(2, SharingLevel::PlusD);
    cfg.channel_partition = Some(vec![4, 4]);
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::PartitionWithSharing { resource: "channel" });
    assert_eq!(e.to_string(), "channel partition requires a level that does not share channels");

    // +DW shares walkers likewise.
    let mut cfg = base(2, SharingLevel::PlusDw);
    cfg.ptw_partition = Some(vec![4, 4]);
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::PartitionWithSharing { resource: "ptw" });
    assert_eq!(e.to_string(), "ptw partition requires a level that does not share ptws");
}

#[test]
fn partition_length() {
    let mut cfg = base(2, SharingLevel::Static);
    cfg.channel_partition = Some(vec![8]);
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::PartitionLength { resource: "channel", expected: 2, got: 1 });
    assert_eq!(e.to_string(), "channel partition has 1 entries; need 2 (one per core)");
}

#[test]
fn partition_sum() {
    // A bench dual-core chip has 8 channels; 5 + 2 leaves one unowned.
    let mut cfg = base(2, SharingLevel::Static);
    cfg.channel_partition = Some(vec![5, 2]);
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::PartitionSum { expected: 8, got: 7 });
    assert_eq!(e.to_string(), "channel partition sums to 7; must sum to 8");
}

#[test]
fn partition_zero() {
    let mut cfg = base(2, SharingLevel::Static);
    cfg.channel_partition = Some(vec![8, 0]);
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::PartitionZero);
    assert_eq!(e.to_string(), "every core needs at least one channel");
}

#[test]
fn bounds_without_shared_pool() {
    let mut cfg = base(2, SharingLevel::Static);
    cfg.ptw_bounds = Some(mnpu_mmu::PtwBounds { min: vec![0, 0], max: vec![4, 4] });
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::BoundsWithoutSharedPool);
    assert_eq!(e.to_string(), "PTW bounds manage a shared pool; use a PTW-sharing level");
}

#[test]
fn start_cycles_length() {
    let mut cfg = base(2, SharingLevel::PlusDwt);
    cfg.start_cycles = vec![0, 100, 200];
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::StartCyclesLength { expected: 2, got: 3 });
    assert_eq!(e.to_string(), "start_cycles has 3 entries; must be empty or 2");
}

#[test]
fn zero_iterations() {
    let mut cfg = base(1, SharingLevel::PlusDwt);
    cfg.iterations = 0;
    let e = build(cfg).unwrap_err();
    assert_eq!(e, ConfigError::ZeroIterations);
    assert_eq!(e.to_string(), "iterations must be positive");
}

#[test]
fn presets_build_clean() {
    for cores in [1, 2, 4] {
        for sharing in
            [SharingLevel::Static, SharingLevel::PlusD, SharingLevel::PlusDw, SharingLevel::PlusDwt]
        {
            assert!(build(base(cores, sharing)).is_ok(), "{cores} cores {sharing:?}");
        }
    }
}
