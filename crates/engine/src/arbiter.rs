//! Arbitration between cores for the shared memory path: round-robin DMA
//! issue order, the DRAM-full retry queue, and the freed-walker grant
//! policy for the shared page-table-walker pool.

use crate::report::LogKind;
use crate::sim::{Simulation, META_WALK};
use mnpu_dram::{EnqueueError, TRANSACTION_BYTES};
use mnpu_mmu::WalkStart;
use mnpu_probe::{Event, Probe};
use std::collections::{BTreeMap, VecDeque};

/// A transaction rejected by a full DRAM queue, waiting to be retried:
/// `(core, paddr, is_write, meta)`.
pub(crate) type RetryTxn = (usize, u64, bool, u64);

/// Shared-resource arbitration state: who goes first this round, which
/// transactions bounced off a full DRAM queue, and which page-table walks
/// are parked waiting for a free walker.
#[derive(Debug)]
pub(crate) struct Arbiter {
    /// Rotating start index for round-robin fairness across cores (used by
    /// both DMA issue order and freed-walker grants).
    pub(crate) rr_start: usize,
    /// FCFS queue of transactions rejected with [`EnqueueError::QueueFull`].
    pub(crate) dram_retry: VecDeque<RetryTxn>,
    /// Per-core FCFS order of VPNs waiting for a free walker.
    pub(crate) walker_wait_order: Vec<VecDeque<u64>>,
    /// Transactions parked on each waiting `(core, vpn)`: `(stage, vaddr)`.
    /// A `BTreeMap` so any future iteration is deterministic by
    /// construction (see `Simulation::walk_waiters`).
    pub(crate) walker_waiters: BTreeMap<(usize, u64), Vec<(usize, u64)>>,
    /// Reused per-core "pool exhausted" scratch for `drain_walker_wait`.
    pub(crate) walker_blocked: Vec<bool>,
    /// `true` when a walk finished since the last `drain_walker_wait` —
    /// the only event that can free a walker or make a parked page
    /// resident. While it is `false`, the drain body is a provable no-op
    /// (`Mmu::probe` is `&self`, a failed `try_acquire` mutates nothing)
    /// and `issue_all` skips it, keeping only its round-robin rotation so
    /// the arbitration sequence stays bit-identical.
    pub(crate) walker_event: bool,
    /// Reused scratch for the retry-queue drain in `issue_all`.
    pub(crate) retry_scratch: VecDeque<RetryTxn>,
}

impl Arbiter {
    pub(crate) fn new(cores: usize) -> Self {
        Arbiter {
            rr_start: 0,
            dram_retry: VecDeque::new(),
            walker_wait_order: vec![VecDeque::new(); cores],
            walker_waiters: BTreeMap::new(),
            walker_blocked: vec![false; cores],
            walker_event: true,
            retry_scratch: VecDeque::new(),
        }
    }

    /// Advance the round-robin pointer and return the new starting core.
    pub(crate) fn rotate(&mut self, cores: usize) -> usize {
        self.rr_start = (self.rr_start + 1) % cores;
        self.rr_start
    }

    /// `true` if any core has walks parked waiting for a walker.
    pub(crate) fn has_walker_waiters(&self) -> bool {
        self.walker_wait_order.iter().any(|q| !q.is_empty())
    }
}

impl<P: Probe> Simulation<P> {
    /// Route a memory-bound transaction: across the interconnect when one
    /// is modeled, then into the DRAM queue (or the retry list when full).
    pub(crate) fn enqueue_or_retry(&mut self, core: usize, paddr: u64, is_write: bool, meta: u64) {
        if let Some(noc) = &mut self.noc {
            let arrival = noc.request_delivery(self.now, core, TRANSACTION_BYTES);
            if arrival > self.now {
                self.noc_requests.push(core, (arrival, core, paddr, is_write, meta));
                return;
            }
        }
        self.enqueue_direct(core, paddr, is_write, meta);
    }

    pub(crate) fn enqueue_direct(&mut self, core: usize, paddr: u64, is_write: bool, meta: u64) {
        match self.memory.enqueue(self.now, core, paddr, is_write, meta) {
            Ok(()) => {
                if P::ENABLED {
                    self.probe.record(self.now, Event::DmaGrant { core });
                }
            }
            Err(EnqueueError::QueueFull { .. }) => {
                if P::ENABLED {
                    self.probe.record(self.now, Event::DmaRetry { core });
                }
                self.arbiter.dram_retry.push_back((core, paddr, is_write, meta));
            }
        }
    }

    /// Grant freed walkers to waiting walks, round-robin across cores so a
    /// walk-hungry core cannot head-of-line-block its co-runners at the
    /// shared pool (each per-core queue stays FCFS internally).
    pub(crate) fn drain_walker_wait(&mut self) {
        let ncores = self.cores.len();
        let mut blocked = std::mem::take(&mut self.arbiter.walker_blocked);
        blocked.iter_mut().for_each(|b| *b = false);
        // Rotate the starting core so freed walkers are granted round-robin
        // rather than by fixed core priority.
        let first = self.arbiter.rotate(ncores);
        loop {
            let mut progressed = false;
            for k in 0..ncores {
                let core = (first + k) % ncores;
                if blocked[core] || self.arbiter.walker_wait_order[core].is_empty() {
                    continue;
                }
                let vpn = self.arbiter.walker_wait_order[core][0];
                // The page may have become resident through a walk that
                // finished while this entry waited; never start a redundant
                // walk.
                let resident = self.mmu.as_ref().expect("walker wait without MMU").probe(core, vpn);
                self.mirror_probe(core, vpn, resident);
                if resident {
                    self.arbiter.walker_wait_order[core].pop_front();
                    let mut waiters =
                        self.arbiter.walker_waiters.remove(&(core, vpn)).unwrap_or_default();
                    for (stage_id, vaddr) in waiters.drain(..) {
                        let is_write = self.stages[stage_id].is_store;
                        let paddr = self.page_tables[core].translate(vaddr);
                        self.enqueue_or_retry(core, paddr, is_write, stage_id as u64);
                    }
                    self.recycle_waiters(waiters);
                    progressed = true;
                    continue;
                }
                let started = self.mmu.as_mut().expect("checked above").retry_walk(core, vpn);
                self.mirror_retry_walk(core, vpn, started);
                match started {
                    WalkStart::Started { walk, pt_addr } => {
                        if P::ENABLED {
                            self.probe
                                .record(self.now, Event::WalkStart { core, walk: walk.raw() });
                        }
                        self.log(core, LogKind::WalkStart, pt_addr);
                        self.arbiter.walker_wait_order[core].pop_front();
                        let waiters =
                            self.arbiter.walker_waiters.remove(&(core, vpn)).unwrap_or_default();
                        self.walk_waiters.insert(walk.raw(), waiters);
                        self.enqueue_or_retry(core, pt_addr, false, META_WALK | walk.raw());
                        progressed = true;
                    }
                    WalkStart::Joined(walk) => {
                        self.arbiter.walker_wait_order[core].pop_front();
                        let mut waiters =
                            self.arbiter.walker_waiters.remove(&(core, vpn)).unwrap_or_default();
                        self.walk_waiters.entry(walk.raw()).or_default().append(&mut waiters);
                        self.recycle_waiters(waiters);
                        progressed = true;
                    }
                    WalkStart::NoWalker => {
                        blocked[core] = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        self.arbiter.walker_blocked = blocked;
        // Progress from here on requires another walk completion.
        self.arbiter.walker_event = false;
    }

    /// One arbitration round: drain the retry queue (FCFS), grant freed
    /// walkers, then let each unfinished core issue, starting from the
    /// rotating round-robin index.
    pub(crate) fn issue_all(&mut self) {
        // Retry previously blocked transactions first (FCFS).
        if !self.arbiter.dram_retry.is_empty() {
            let mut remaining = std::mem::take(&mut self.arbiter.retry_scratch);
            debug_assert!(remaining.is_empty());
            while let Some((core, paddr, is_write, meta)) = self.arbiter.dram_retry.pop_front() {
                if self.memory.enqueue(self.now, core, paddr, is_write, meta).is_err() {
                    if P::ENABLED {
                        self.probe.record(self.now, Event::DmaRetry { core });
                    }
                    remaining.push_back((core, paddr, is_write, meta));
                } else if P::ENABLED {
                    self.probe.record(self.now, Event::DmaGrant { core });
                }
            }
            // The drained (now empty) queue becomes next round's scratch.
            std::mem::swap(&mut self.arbiter.dram_retry, &mut remaining);
            self.arbiter.retry_scratch = remaining;
        }
        if self.arbiter.has_walker_waiters() {
            if self.arbiter.walker_event {
                self.drain_walker_wait();
            } else {
                // No walk finished since the last drain, so no walker can
                // have freed and no parked page can have become resident —
                // the drain body would probe every queue and do nothing.
                // Its round-robin rotation is kept so the arbitration
                // sequence (and thus the report) is bit-identical.
                self.arbiter.rotate(self.cores.len());
            }
        }

        // Rotate the starting core so no core gets systematic first pick of
        // DRAM queue slots (FCFS arbitration, not fixed priority).
        let n = self.cores.len();
        let start = self.arbiter.rotate(n);
        for k in 0..n {
            let ci = (start + k) % n;
            if self.cores[ci].finished() || self.cores[ci].start_cycle > self.now {
                continue;
            }
            self.progress_core_if_woken(ci);
            self.issue_core(ci);
        }
    }

    fn issue_core(&mut self, ci: usize) {
        let budget = self.cfg.arch[ci].max_outstanding;
        self.cores[ci].blocked_on_dram = false;
        loop {
            if self.cores[ci].outstanding >= budget || self.cores[ci].blocked_on_dram {
                return;
            }
            // Pick the next transaction: the load stage first (it gates
            // compute), then the oldest store stage.
            let stage_id = {
                let rt = &self.cores[ci];
                let load = rt.load_stage.filter(|&s| self.stages[s].peek().is_some());
                let store =
                    rt.active_stores.iter().copied().find(|&s| self.stages[s].peek().is_some());
                match load.or(store) {
                    Some(s) => s,
                    None => return,
                }
            };
            let vaddr = self.stages[stage_id].peek().expect("peeked above");
            if !self.try_issue_txn(ci, stage_id, vaddr) {
                return;
            }
        }
    }

    /// Issue one transaction; returns `false` when the core must stop
    /// issuing (DRAM queue full).
    fn try_issue_txn(&mut self, ci: usize, stage_id: usize, vaddr: u64) -> bool {
        let is_write = self.stages[stage_id].is_store;
        if self.mmu.is_none() {
            // Translation disabled: direct mapping, no MMU timing.
            let paddr = self.page_tables[ci].translate(vaddr);
            match self.memory.enqueue(self.now, ci, paddr, is_write, stage_id as u64) {
                Ok(()) => {
                    if P::ENABLED {
                        self.probe.record(self.now, Event::DmaGrant { core: ci });
                    }
                    self.stages[stage_id].advance();
                    self.cores[ci].outstanding += 1;
                    true
                }
                Err(EnqueueError::QueueFull { .. }) => {
                    if P::ENABLED {
                        self.probe.record(self.now, Event::DmaRetry { core: ci });
                    }
                    self.cores[ci].blocked_on_dram = true;
                    false
                }
            }
        } else {
            let mmu = self.mmu.as_mut().expect("checked above");
            let vpn = mmu.vpn_of(vaddr);
            let hit = mmu.lookup(ci, vpn);
            self.mirror_lookup(ci, vpn, hit);
            if P::ENABLED {
                let ev = if hit { Event::TlbHit { core: ci } } else { Event::TlbMiss { core: ci } };
                self.probe.record(self.now, ev);
            }
            self.log(ci, if hit { LogKind::TlbHit } else { LogKind::TlbMiss }, vaddr);
            if hit {
                let paddr = self.page_tables[ci].translate(vaddr);
                match self.memory.enqueue(self.now, ci, paddr, is_write, stage_id as u64) {
                    Ok(()) => {
                        if P::ENABLED {
                            self.probe.record(self.now, Event::DmaGrant { core: ci });
                        }
                        self.stages[stage_id].advance();
                        self.cores[ci].outstanding += 1;
                        true
                    }
                    Err(EnqueueError::QueueFull { .. }) => {
                        if P::ENABLED {
                            self.probe.record(self.now, Event::DmaRetry { core: ci });
                        }
                        self.cores[ci].blocked_on_dram = true;
                        false
                    }
                }
            } else {
                // TLB miss: the transaction parks on a walk.
                self.stages[stage_id].advance();
                self.cores[ci].outstanding += 1;
                let started = self.mmu.as_mut().expect("checked above").start_or_join_walk(ci, vpn);
                self.mirror_start_walk(ci, vpn, started);
                match started {
                    WalkStart::Started { walk, pt_addr } => {
                        if P::ENABLED {
                            self.probe
                                .record(self.now, Event::WalkStart { core: ci, walk: walk.raw() });
                        }
                        self.log(ci, LogKind::WalkStart, pt_addr);
                        let mut waiters = self.waiter_pool.pop().unwrap_or_default();
                        waiters.push((stage_id, vaddr));
                        self.walk_waiters.insert(walk.raw(), waiters);
                        self.enqueue_or_retry(ci, pt_addr, false, META_WALK | walk.raw());
                    }
                    WalkStart::Joined(walk) => {
                        self.walk_waiters.entry(walk.raw()).or_default().push((stage_id, vaddr));
                    }
                    WalkStart::NoWalker => {
                        if P::ENABLED {
                            self.probe.record(self.now, Event::WalkerStall { core: ci });
                        }
                        let entry = self.arbiter.walker_waiters.entry((ci, vpn)).or_default();
                        if entry.is_empty() {
                            self.arbiter.walker_wait_order[ci].push_back(vpn);
                        }
                        entry.push((stage_id, vaddr));
                    }
                }
                true
            }
        }
    }
}
