//! Whole-system configuration: cores + MMU + DRAM + sharing level.

use crate::memory::MemoryModel;
use crate::sharing::SharingLevel;
use mnpu_dram::DramConfig;
use mnpu_mmu::MmuConfig;
use mnpu_systolic::ArchConfig;
use std::fmt;

/// Which observability probe a simulation runs with (see [`mnpu_probe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// No instrumentation: every emission site compiles to nothing
    /// ([`mnpu_probe::NullProbe`]); reports carry no stats section.
    #[default]
    None,
    /// Aggregate counters, histograms, stall breakdowns, and phase spans
    /// with [`mnpu_probe::StatsProbe`]; the report gains a `stats` section
    /// exportable as CSV or a Chrome trace.
    Stats,
    /// Feed the flight recorder and live-progress telemetry with
    /// [`mnpu_trace::FlightProbe`]: structural events enter a bounded
    /// ring, dense events become published counters, and the report stays
    /// byte-identical to [`ProbeMode::None`] (telemetry never touches
    /// simulation state).
    Flight,
}

/// Why a [`SystemConfig`] failed validation. Produced by
/// [`SystemConfig::validate`] and [`crate::SystemConfigBuilder::build`];
/// the variants mirror the config surface so callers can match on the
/// precise inconsistency instead of parsing a message.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `cores` is zero.
    NoCores,
    /// `arch.len()` disagrees with `cores`.
    ArchCountMismatch {
        /// Configured core count.
        cores: usize,
        /// Number of `ArchConfig` entries supplied.
        archs: usize,
    },
    /// One core's [`ArchConfig`] is invalid.
    InvalidArch {
        /// Which core.
        core: usize,
        /// The arch validator's message.
        reason: String,
    },
    /// `channels_per_core` is zero.
    NoChannels,
    /// The derived [`DramConfig`] is invalid.
    InvalidDram(String),
    /// The derived [`MmuConfig`] is invalid.
    InvalidMmu(String),
    /// The NoC configuration is invalid.
    InvalidNoc(String),
    /// A static partition was given for a resource the sharing level shares
    /// dynamically.
    PartitionWithSharing {
        /// `"channel"` or `"ptw"`.
        resource: &'static str,
    },
    /// A partition's length disagrees with the core count.
    PartitionLength {
        /// `"channel"` or `"ptw"`.
        resource: &'static str,
        /// Expected length (the core count).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// The channel partition does not sum to the chip's channel count.
    PartitionSum {
        /// Required sum ([`SystemConfig::total_channels`]).
        expected: usize,
        /// Actual sum.
        got: usize,
    },
    /// A partition gives some core zero channels.
    PartitionZero,
    /// PTW bounds were given without a PTW-sharing level.
    BoundsWithoutSharedPool,
    /// `start_cycles` is neither empty nor one entry per core.
    StartCyclesLength {
        /// The core count.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// `iterations` is zero.
    ZeroIterations,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCores => write!(f, "at least one core required"),
            ConfigError::ArchCountMismatch { cores, archs } => {
                write!(f, "{cores} cores but {archs} ArchConfig entries (need one per core)")
            }
            ConfigError::InvalidArch { core, reason } => write!(f, "core {core}: {reason}"),
            ConfigError::NoChannels => write!(f, "at least one channel per core required"),
            ConfigError::InvalidDram(e) => write!(f, "dram: {e}"),
            ConfigError::InvalidMmu(e) => write!(f, "mmu: {e}"),
            ConfigError::InvalidNoc(e) => write!(f, "noc: {e}"),
            ConfigError::PartitionWithSharing { resource } => {
                write!(f, "{resource} partition requires a level that does not share {resource}s")
            }
            ConfigError::PartitionLength { resource, expected, got } => {
                write!(f, "{resource} partition has {got} entries; need {expected} (one per core)")
            }
            ConfigError::PartitionSum { expected, got } => {
                write!(f, "channel partition sums to {got}; must sum to {expected}")
            }
            ConfigError::PartitionZero => write!(f, "every core needs at least one channel"),
            ConfigError::BoundsWithoutSharedPool => {
                write!(f, "PTW bounds manage a shared pool; use a PTW-sharing level")
            }
            ConfigError::StartCyclesLength { expected, got } => {
                write!(f, "start_cycles has {got} entries; must be empty or {expected}")
            }
            ConfigError::ZeroIterations => write!(f, "iterations must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of one simulated multi-core NPU chip.
///
/// Quantities in [`MmuConfig`] and `channels_per_core` are *per core*, as in
/// the paper's Table 2; the builder derives chip totals from the core count
/// and sharing level (e.g. a dual-core `+DW` chip has 16 walkers in one
/// shared pool).
///
/// ```
/// use mnpu_engine::{SystemConfig, SharingLevel};
///
/// let cfg = SystemConfig::cloud(2, SharingLevel::PlusDw);
/// assert_eq!(cfg.cores, 2);
/// assert_eq!(cfg.total_channels(), 8); // 2 x 128 GB/s
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of NPU cores.
    pub cores: usize,
    /// Per-core compute configuration (index = core). All presets are
    /// homogeneous; heterogeneous chips assign different entries.
    pub arch: Vec<ArchConfig>,
    /// Per-core MMU quantities (TLB entries, walkers, page size).
    pub mmu: MmuConfig,
    /// DRAM device template; `channels` is overridden with
    /// [`SystemConfig::total_channels`] when the chip is built.
    pub dram: DramConfig,
    /// DRAM channels owned per core (Table 2: 4 = 128 GB/s of HBM2).
    pub channels_per_core: usize,
    /// Resource-sharing level.
    pub sharing: SharingLevel,
    /// Unequal channel split for the Figs. 9/10 sweeps. Only meaningful when
    /// the sharing level does not share DRAM; counts must sum to
    /// [`SystemConfig::total_channels`].
    pub channel_partition: Option<Vec<usize>>,
    /// Unequal walker split for the Figs. 13/14 sweeps (forwarded to
    /// [`MmuConfig::ptw_partition`]).
    pub ptw_partition: Option<Vec<usize>>,
    /// `false` disables address translation entirely (the paper removes it
    /// to isolate bandwidth effects in §4.3).
    pub translation: bool,
    /// Per-core execution initiation cycle (the `misc_config` start time);
    /// empty = all cores start at cycle 0.
    pub start_cycles: Vec<u64>,
    /// Times each core repeats its network.
    pub iterations: u64,
    /// Enable the windowed bandwidth trace (window in DRAM cycles).
    pub trace_window: Option<u64>,
    /// Record a request log (TLB lookups, walks, DRAM completions) in the
    /// report — the original's `dramsim_output` logs. Bounded by
    /// [`SystemConfig::request_log_cap`]; without a cap, memory grows with
    /// every transaction (intended for small runs and debugging).
    pub request_log: bool,
    /// Ring-buffer capacity of the request log: once full, the oldest
    /// entries are dropped and the report's `request_log_truncated` flag is
    /// set. `None` = unbounded (the historical behavior).
    pub request_log_cap: Option<usize>,
    /// Which observability probe instruments the run (see
    /// [`crate::Simulation::execute`]). [`ProbeMode::None`] is free;
    /// [`ProbeMode::Stats`] adds counters/histograms/stall breakdowns to
    /// the report.
    pub probe: ProbeMode,
    /// Managed walker sharing: per-core (min, max) occupancy bounds on the
    /// shared pool — the original `misc_config`'s PTW bounds. Requires a
    /// PTW-sharing level.
    pub ptw_bounds: Option<mnpu_mmu::PtwBounds>,
    /// Watchdog: panic if the simulation exceeds this many global cycles
    /// (guards sweeps against configuration mistakes). `None` = unlimited.
    pub max_cycles: Option<u64>,
    /// Optional on-chip interconnect between cores and the memory system
    /// (an extension; `None` = ideal interconnect, as the paper assumes).
    pub noc: Option<mnpu_noc::NocConfig>,
    /// Which [`crate::MemorySystem`] backend services memory traffic:
    /// the full DRAM timing model (default) or a fixed-latency ideal
    /// memory.
    pub memory: MemoryModel,
}

impl SystemConfig {
    /// The paper's Table 2 cloud-scale chip: TPUv4-like cores, HBM2 at
    /// 128 GB/s / 2048 TLB entries / 8 walkers per core.
    pub fn cloud(cores: usize, sharing: SharingLevel) -> Self {
        SystemConfig {
            cores,
            arch: vec![ArchConfig::cloud_npu(); cores],
            mmu: MmuConfig::neummu(4096),
            dram: DramConfig::hbm2(4), // channels overridden by total_channels()
            channels_per_core: 4,
            sharing,
            channel_partition: None,
            ptw_partition: None,
            translation: true,
            start_cycles: Vec::new(),
            iterations: 1,
            trace_window: None,
            request_log: false,
            request_log_cap: None,
            probe: ProbeMode::None,
            ptw_bounds: None,
            max_cycles: None,
            noc: None,
            memory: MemoryModel::Timing,
        }
    }

    /// The proportionally shrunk chip used with [`mnpu_model::Scale::Bench`]
    /// workloads: 32×32 cores, 4 narrow (8 GB/s) channels / 512 TLB entries /
    /// 4 walkers per core. The compute : bandwidth : translation balance
    /// tracks the cloud preset so sweep *shapes* are preserved at a fraction
    /// of the simulation cost.
    pub fn bench(cores: usize, sharing: SharingLevel) -> Self {
        SystemConfig {
            arch: vec![ArchConfig::bench_npu(); cores],
            mmu: MmuConfig::bench(4096),
            dram: DramConfig::bench(4),
            channels_per_core: 4,
            ..SystemConfig::cloud(cores, sharing)
        }
    }

    /// Total DRAM channels on the chip.
    pub fn total_channels(&self) -> usize {
        self.cores * self.channels_per_core
    }

    /// Set the page size (4 KB, 64 KB or 1 MB), preserving everything else.
    pub fn with_page_size(mut self, page_bytes: u64) -> Self {
        self.mmu.page_bytes = page_bytes;
        self
    }

    /// Disable address translation (§4.3 bandwidth isolation).
    pub fn without_translation(mut self) -> Self {
        self.translation = false;
        self
    }

    /// Use an unequal static channel split (e.g. `[1, 7]`).
    pub fn with_channel_partition(mut self, counts: Vec<usize>) -> Self {
        self.channel_partition = Some(counts);
        self
    }

    /// Use an unequal static walker split (e.g. `[2, 14]`).
    pub fn with_ptw_partition(mut self, counts: Vec<usize>) -> Self {
        self.ptw_partition = Some(counts);
        self
    }

    /// Bound the shared walker pool: core *c* is always guaranteed `min[c]`
    /// walkers and may hold at most `max[c]` (DWS-style managed sharing;
    /// the original's `misc_config` PTW bounds).
    pub fn with_ptw_bounds(mut self, min: Vec<usize>, max: Vec<usize>) -> Self {
        self.ptw_bounds = Some(mnpu_mmu::PtwBounds { min, max });
        self
    }

    /// Route memory traffic through a modeled on-chip interconnect instead
    /// of an ideal one.
    pub fn with_noc(mut self, noc: mnpu_noc::NocConfig) -> Self {
        self.noc = Some(noc);
        self
    }

    /// Replace the DRAM timing model with a fixed-latency,
    /// infinite-bandwidth [`crate::IdealMemory`] — a contention-free upper
    /// bound that isolates compute and translation effects.
    pub fn with_ideal_memory(mut self, latency: u64) -> Self {
        self.memory = MemoryModel::Ideal { latency };
        self
    }

    /// Derive the `Ideal` baseline configuration for one workload of this
    /// chip: a single core monopolizing *all* the chip's shareable
    /// resources (all channels, all walkers, the whole TLB capacity), as in
    /// the paper's §4.1.3.
    pub fn ideal_solo(&self) -> SystemConfig {
        let mut c = self.clone();
        c.arch = vec![self.arch[0].clone()];
        c.channels_per_core = self.channels_per_core * self.cores;
        c.mmu.tlb_entries_per_core *= self.cores as u64;
        c.mmu.ptws_per_core *= self.cores;
        c.cores = 1;
        c.sharing = SharingLevel::Ideal;
        c.channel_partition = None;
        c.ptw_partition = None;
        c.ptw_bounds = None;
        c.start_cycles = Vec::new();
        c
    }

    /// Physical DRAM bytes owned by each core (capacity is always
    /// partitioned equally, as in Table 2's "capacity per NPU").
    pub fn capacity_per_core(&self) -> u64 {
        let mut dram = self.dram.clone();
        dram.channels = self.total_channels();
        dram.capacity_bytes() / self.cores as u64
    }

    /// Validate the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::NoCores);
        }
        if self.arch.len() != self.cores {
            return Err(ConfigError::ArchCountMismatch {
                cores: self.cores,
                archs: self.arch.len(),
            });
        }
        for (i, a) in self.arch.iter().enumerate() {
            a.validate().map_err(|e| ConfigError::InvalidArch { core: i, reason: e })?;
        }
        if self.channels_per_core == 0 {
            return Err(ConfigError::NoChannels);
        }
        let mut dram = self.dram.clone();
        dram.channels = self.total_channels();
        dram.validate().map_err(ConfigError::InvalidDram)?;
        let mut mmu = self.mmu.clone();
        mmu.ptw_partition = self.ptw_partition.clone();
        mmu.validate(self.cores).map_err(ConfigError::InvalidMmu)?;
        if let Some(p) = &self.channel_partition {
            if self.sharing.shares_dram() {
                return Err(ConfigError::PartitionWithSharing { resource: "channel" });
            }
            if p.len() != self.cores {
                return Err(ConfigError::PartitionLength {
                    resource: "channel",
                    expected: self.cores,
                    got: p.len(),
                });
            }
            if p.iter().sum::<usize>() != self.total_channels() {
                return Err(ConfigError::PartitionSum {
                    expected: self.total_channels(),
                    got: p.iter().sum(),
                });
            }
            if p.contains(&0) {
                return Err(ConfigError::PartitionZero);
            }
        }
        if let Some(p) = &self.ptw_partition {
            if self.sharing.shares_ptw() {
                return Err(ConfigError::PartitionWithSharing { resource: "ptw" });
            }
            if p.len() != self.cores {
                return Err(ConfigError::PartitionLength {
                    resource: "ptw",
                    expected: self.cores,
                    got: p.len(),
                });
            }
        }
        if self.ptw_bounds.is_some() && !self.sharing.shares_ptw() {
            return Err(ConfigError::BoundsWithoutSharedPool);
        }
        if let Some(b) = &self.ptw_bounds {
            let mut m = self.mmu.clone();
            m.ptw_bounds = Some(b.clone());
            m.validate(self.cores).map_err(ConfigError::InvalidMmu)?;
        }
        if !self.start_cycles.is_empty() && self.start_cycles.len() != self.cores {
            return Err(ConfigError::StartCyclesLength {
                expected: self.cores,
                got: self.start_cycles.len(),
            });
        }
        if let Some(n) = &self.noc {
            n.validate().map_err(ConfigError::InvalidNoc)?;
        }
        if self.iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_at_many_core_counts() {
        for cores in [1, 2, 4, 8] {
            for sharing in SharingLevel::CO_RUN_LEVELS {
                assert!(SystemConfig::cloud(cores, sharing).validate().is_ok());
                assert!(SystemConfig::bench(cores, sharing).validate().is_ok());
            }
        }
    }

    #[test]
    fn table2_totals_for_dual_core() {
        let c = SystemConfig::cloud(2, SharingLevel::PlusDwt);
        assert_eq!(c.total_channels(), 8);
        let mut dram = c.dram.clone();
        dram.channels = c.total_channels();
        assert_eq!(dram.peak_gbps(), 256.0);
        assert_eq!(c.mmu.total_walkers(2), 16);
    }

    #[test]
    fn capacity_split_equally() {
        let c = SystemConfig::cloud(2, SharingLevel::PlusDwt);
        let mut dram = c.dram.clone();
        dram.channels = 8;
        assert_eq!(c.capacity_per_core() * 2, dram.capacity_bytes());
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::bench(2, SharingLevel::Static)
            .with_page_size(65536)
            .with_channel_partition(vec![2, 6])
            .without_translation();
        assert_eq!(c.mmu.page_bytes, 65536);
        assert!(!c.translation);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn partition_rejected_when_sharing() {
        let c = SystemConfig::bench(2, SharingLevel::PlusD).with_channel_partition(vec![2, 6]);
        assert!(c.validate().is_err());
        let c = SystemConfig::bench(2, SharingLevel::PlusDw).with_ptw_partition(vec![2, 6]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_partitions_rejected() {
        let c = SystemConfig::bench(2, SharingLevel::Static).with_channel_partition(vec![1, 1]);
        assert!(c.validate().is_err(), "must sum to 8");
        let c = SystemConfig::bench(2, SharingLevel::Static).with_channel_partition(vec![8, 0]);
        assert!(c.validate().is_err(), "zero channels");
        let c = SystemConfig::bench(2, SharingLevel::Static).with_ptw_partition(vec![8]);
        assert!(c.validate().is_err(), "length mismatch");
    }
}
