//! Validating builder for [`SystemConfig`].
//!
//! Historically a chip was configured by mutating the preset's public fields
//! and the first validation happened inside [`crate::Simulation::new`] — as a
//! panic. The builder front-loads that check: every chained setter is
//! infallible and [`SystemConfigBuilder::build`] returns a typed
//! [`ConfigError`] instead of panicking later, so sweep drivers can skip
//! inconsistent points gracefully.
//!
//! ```
//! use mnpu_engine::{ProbeMode, SharingLevel, SystemConfig};
//!
//! let cfg = SystemConfig::cloud(2, SharingLevel::PlusDw)
//!     .trace_window(1000)
//!     .probe_stats()
//!     .build()
//!     .expect("preset-derived config is consistent");
//! assert_eq!(cfg.trace_window, Some(1000));
//! assert_eq!(cfg.probe, ProbeMode::Stats);
//! ```

use crate::system::{ConfigError, ProbeMode, SystemConfig};
use crate::MemoryModel;

/// Chainable, validating constructor for [`SystemConfig`].
///
/// Obtained from a preset via [`SystemConfig::builder`] (or the
/// [`SystemConfig::trace_window`] / [`SystemConfig::probe_stats`]
/// conveniences). Setters never fail; [`SystemConfigBuilder::build`] runs
/// [`SystemConfig::validate`] once at the end.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Wrap an existing configuration (usually a preset) for further tuning.
    pub fn from_config(cfg: SystemConfig) -> Self {
        SystemConfigBuilder { cfg }
    }

    /// Enable the windowed bandwidth trace (window in DRAM cycles).
    #[must_use]
    pub fn trace_window(mut self, window: u64) -> Self {
        self.cfg.trace_window = Some(window);
        self
    }

    /// Instrument the run with the statistics probe
    /// ([`ProbeMode::Stats`]): stall breakdowns, contention counters and
    /// latency histograms in the report.
    #[must_use]
    pub fn probe_stats(mut self) -> Self {
        self.cfg.probe = ProbeMode::Stats;
        self
    }

    /// Enable or disable the DRAM steady-state fast-forward
    /// ([`mnpu_dram::DramConfig::fastfwd`]). The fast path is bit-exact, so
    /// this knob trades wall-clock time only; disabling it (equivalently,
    /// setting `MNPU_NO_FASTFWD=1`, which overrides this setter) is the
    /// one-run bisection switch for any suspected fast-path divergence.
    #[must_use]
    pub fn fastfwd(mut self, enabled: bool) -> Self {
        self.cfg.dram.fastfwd = enabled;
        self
    }

    /// Select the observability probe explicitly.
    #[must_use]
    pub fn probe(mut self, mode: ProbeMode) -> Self {
        self.cfg.probe = mode;
        self
    }

    /// Record the request log, optionally bounded by `cap` entries
    /// (oldest-dropped ring buffer; `None` = unbounded).
    #[must_use]
    pub fn request_log(mut self, cap: Option<usize>) -> Self {
        self.cfg.request_log = true;
        self.cfg.request_log_cap = cap;
        self
    }

    /// Repeat each core's network `iterations` times.
    #[must_use]
    pub fn iterations(mut self, iterations: u64) -> Self {
        self.cfg.iterations = iterations;
        self
    }

    /// Stagger core start cycles (empty = all start at 0).
    #[must_use]
    pub fn start_cycles(mut self, cycles: Vec<u64>) -> Self {
        self.cfg.start_cycles = cycles;
        self
    }

    /// Unequal static channel split (requires a non-DRAM-sharing level).
    #[must_use]
    pub fn channel_partition(mut self, counts: Vec<usize>) -> Self {
        self.cfg.channel_partition = Some(counts);
        self
    }

    /// Unequal static walker split (requires a non-PTW-sharing level).
    #[must_use]
    pub fn ptw_partition(mut self, counts: Vec<usize>) -> Self {
        self.cfg.ptw_partition = Some(counts);
        self
    }

    /// Per-core (min, max) occupancy bounds on the shared walker pool.
    #[must_use]
    pub fn ptw_bounds(mut self, bounds: mnpu_mmu::PtwBounds) -> Self {
        self.cfg.ptw_bounds = Some(bounds);
        self
    }

    /// Set the page size in bytes (4 KB, 64 KB or 1 MB).
    #[must_use]
    pub fn page_size(mut self, page_bytes: u64) -> Self {
        self.cfg.mmu.page_bytes = page_bytes;
        self
    }

    /// Enable or disable address translation (§4.3 bandwidth isolation).
    #[must_use]
    pub fn translation(mut self, enabled: bool) -> Self {
        self.cfg.translation = enabled;
        self
    }

    /// Watchdog limit on global cycles (`None` = unlimited).
    #[must_use]
    pub fn max_cycles(mut self, limit: u64) -> Self {
        self.cfg.max_cycles = Some(limit);
        self
    }

    /// Route traffic through an on-chip interconnect model.
    #[must_use]
    pub fn noc(mut self, noc: mnpu_noc::NocConfig) -> Self {
        self.cfg.noc = Some(noc);
        self
    }

    /// Select the memory backend (timing DRAM or fixed-latency ideal).
    #[must_use]
    pub fn memory(mut self, model: MemoryModel) -> Self {
        self.cfg.memory = model;
        self
    }

    /// Validate and return the finished configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found by [`SystemConfig::validate`].
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Inspect the configuration accumulated so far without validating.
    pub fn peek(&self) -> &SystemConfig {
        &self.cfg
    }
}

impl From<SystemConfig> for SystemConfigBuilder {
    fn from(cfg: SystemConfig) -> Self {
        SystemConfigBuilder::from_config(cfg)
    }
}

impl SystemConfig {
    /// Start a validating builder from this configuration.
    pub fn builder(self) -> SystemConfigBuilder {
        SystemConfigBuilder::from_config(self)
    }

    /// Builder shortcut: enable the windowed bandwidth trace.
    ///
    /// Returns a [`SystemConfigBuilder`]; finish with
    /// [`SystemConfigBuilder::build`]. (The field of the same name holds the
    /// resulting value — direct field mutation still works but skips
    /// validation.)
    #[must_use]
    pub fn trace_window(self, window: u64) -> SystemConfigBuilder {
        self.builder().trace_window(window)
    }

    /// Builder shortcut: instrument the run with the statistics probe.
    #[must_use]
    pub fn probe_stats(self) -> SystemConfigBuilder {
        self.builder().probe_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharingLevel;

    #[test]
    fn issue_example_compiles_and_builds() {
        let cfg = SystemConfig::cloud(2, SharingLevel::PlusDw)
            .trace_window(1000)
            .probe_stats()
            .build()
            .expect("valid");
        assert_eq!(cfg.cores, 2);
        assert_eq!(cfg.trace_window, Some(1000));
        assert_eq!(cfg.probe, ProbeMode::Stats);
    }

    #[test]
    fn build_reports_typed_errors() {
        let err = SystemConfig::cloud(2, SharingLevel::Static)
            .builder()
            .channel_partition(vec![1, 2, 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::PartitionLength { resource: "channel", .. }), "{err}");

        let err = SystemConfig::cloud(2, SharingLevel::Static)
            .builder()
            .channel_partition(vec![1, 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::PartitionSum { expected: 8, got: 4 }), "{err}");

        let err = SystemConfig::cloud(2, SharingLevel::PlusDwt)
            .builder()
            .channel_partition(vec![4, 4])
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::PartitionWithSharing { resource: "channel" }), "{err}");

        let err = SystemConfig::cloud(1, SharingLevel::Static)
            .builder()
            .iterations(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ZeroIterations), "{err}");
    }

    #[test]
    fn request_log_ring_settings_flow_through() {
        let cfg = SystemConfig::bench(1, SharingLevel::Static)
            .builder()
            .request_log(Some(128))
            .build()
            .expect("valid");
        assert!(cfg.request_log);
        assert_eq!(cfg.request_log_cap, Some(128));
    }
}
