//! Shadow MMUs: the divergence detector behind warm-start prefix sharing.
//!
//! Configurations in a sweep often differ only in MMU organization — the
//! paper's `+D` / `+DW` / `+DWT` sharing levels keep DRAM shared and vary
//! only which cores share TLB capacity and page-table walkers. Until the
//! first cycle where that organization changes an MMU *answer* (a hit vs a
//! miss, a walk started vs joined vs stalled), such variants execute
//! byte-identical prefixes: the MMU's method returns are the only channel
//! through which its organization reaches the rest of the engine.
//!
//! A [`ShadowMmus`] rides along on one *representative* simulation and
//! replays every primary MMU call into per-variant shadow MMUs built from
//! the variant configurations. Each return value is compared against the
//! primary's; the first mismatch freezes that shadow and records the
//! divergence cycle. While a shadow is unfrozen, an inductive invariant
//! holds: every mutating MMU call has been mirrored with identical
//! arguments and results, so the shadow's walk-id allocation, TLB
//! residency and walker occupancy track the variant's native run exactly.
//! A frozen shadow is never touched again — its state stays valid as of
//! the divergence cycle, but forks are only taken from checkpoints strictly
//! before it (the executor's job).
//!
//! [`Simulation::fork_snapshot`] then emits a [`SimSnapshot`] in which the
//! MMU section and config fingerprint are the *shadow's*: restoring it into
//! a freshly built simulation of the variant configuration resumes the
//! variant's native run from the shared prefix. Correctness never depends
//! on divergence being rare — a variant that diverges immediately just
//! falls back to (almost) a full native run.

use crate::sim::{build_mmu, Simulation};
use crate::snapshot::config_fingerprint;
use crate::system::SystemConfig;
use mnpu_mmu::{Mmu, WalkId, WalkStart, WalkStep};
use mnpu_probe::Probe;

/// Per-variant shadow MMUs attached to a representative simulation.
#[derive(Debug)]
pub(crate) struct ShadowMmus {
    /// One MMU per registered variant, built from that variant's config.
    pub(crate) mmus: Vec<Mmu>,
    /// The variant's config fingerprint, stamped into forked snapshots.
    pub(crate) fps: Vec<u64>,
    /// `Some(cycle)` once the variant's MMU answered differently from the
    /// primary; the shadow is frozen from that cycle on.
    pub(crate) diverged: Vec<Option<u64>>,
}

impl<P: Probe> Simulation<P> {
    /// Register `cfg` as a shadow variant of this simulation, returning its
    /// shadow index for [`Simulation::shadow_diverged`] /
    /// [`Simulation::fork_snapshot`].
    ///
    /// The caller owns the eligibility argument: `cfg` must describe the
    /// *same machine* as this simulation's config everywhere the engine can
    /// observe outside MMU method returns (cores, clocks, DRAM geometry and
    /// partitioning, NoC, memory model, probe mode, workload bindings) and
    /// differ only in MMU organization — in practice, only in
    /// [`SystemConfig::sharing`] among the DRAM-sharing levels. The sweep
    /// executor's prefix-share gate enforces this; the engine checks what
    /// it cheaply can.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already run (shadows must start from
    /// the same pristine state as the primary), if either config disables
    /// translation, or if the core counts disagree.
    pub fn add_shadow_config(&mut self, cfg: &SystemConfig) -> usize {
        assert_eq!(self.now, 0, "shadows must be registered before the first cycle");
        assert!(self.mmu.is_some(), "prefix sharing requires translation on the primary");
        assert!(cfg.translation, "prefix sharing requires translation on the variant");
        assert_eq!(cfg.cores, self.cfg.cores, "shadow config must match the core count");
        let mmu = build_mmu(cfg, &self.page_tables).expect("translation checked above");
        let sh = self.shadows.get_or_insert_with(|| ShadowMmus {
            mmus: Vec::new(),
            fps: Vec::new(),
            diverged: Vec::new(),
        });
        sh.mmus.push(mmu);
        sh.fps.push(config_fingerprint(cfg));
        sh.diverged.push(None);
        sh.mmus.len() - 1
    }

    /// Number of registered shadow variants.
    pub fn shadow_count(&self) -> usize {
        self.shadows.as_ref().map_or(0, |s| s.mmus.len())
    }

    /// The cycle at which shadow `i` diverged from the primary, or `None`
    /// while it is still in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a registered shadow index.
    pub fn shadow_diverged(&self, i: usize) -> Option<u64> {
        self.shadows.as_ref().expect("no shadows registered").diverged[i]
    }

    /// Snapshot the current state *as variant `i`*: identical to
    /// [`Simulation::snapshot`] except the MMU section holds the shadow's
    /// state and the config fingerprint is the variant's, so the result
    /// restores into a simulation built from the variant configuration.
    /// Returns `None` once the shadow has diverged — from then on only
    /// checkpoints taken strictly before the divergence cycle are valid
    /// fork points.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a registered shadow index.
    pub fn fork_snapshot(&self, i: usize) -> Option<mnpu_snapshot::SimSnapshot> {
        let sh = self.shadows.as_ref().expect("no shadows registered");
        if sh.diverged[i].is_some() {
            return None;
        }
        Some(self.snapshot_as(Some(&sh.mmus[i]), sh.fps[i]))
    }

    /// Replay one primary MMU call into every unfrozen shadow, freezing any
    /// whose return value differs from the primary's.
    fn mirror<T: PartialEq>(&mut self, expect: T, mut call: impl FnMut(&mut Mmu) -> T) {
        let now = self.now;
        let Some(sh) = self.shadows.as_mut() else { return };
        for i in 0..sh.mmus.len() {
            if sh.diverged[i].is_some() {
                continue;
            }
            if call(&mut sh.mmus[i]) != expect {
                sh.diverged[i] = Some(now);
            }
        }
    }

    pub(crate) fn mirror_lookup(&mut self, core: usize, vpn: u64, expect: bool) {
        self.mirror(expect, |m| m.lookup(core, vpn));
    }

    pub(crate) fn mirror_probe(&mut self, core: usize, vpn: u64, expect: bool) {
        self.mirror(expect, |m| m.probe(core, vpn));
    }

    pub(crate) fn mirror_start_walk(&mut self, core: usize, vpn: u64, expect: WalkStart) {
        self.mirror(expect, |m| m.start_or_join_walk(core, vpn));
    }

    pub(crate) fn mirror_retry_walk(&mut self, core: usize, vpn: u64, expect: WalkStart) {
        self.mirror(expect, |m| m.retry_walk(core, vpn));
    }

    pub(crate) fn mirror_advance_walk(&mut self, walk: WalkId, expect: WalkStep) {
        self.mirror(expect, |m| m.advance_walk(walk));
    }

    pub(crate) fn mirror_take_eviction(&mut self, expect: Option<(u16, u64)>) {
        self.mirror(expect, Mmu::take_last_eviction);
    }

    /// Flushes have no return value to compare; mirror them verbatim.
    pub(crate) fn mirror_flush_core(&mut self, core: usize) {
        let Some(sh) = self.shadows.as_mut() else { return };
        for i in 0..sh.mmus.len() {
            if sh.diverged[i].is_none() {
                sh.mmus[i].flush_core(core);
            }
        }
    }
}
