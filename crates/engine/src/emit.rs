//! Unified report emission: one sink-agnostic entry point for every
//! serialization the toolchain knows — [`Format::Json`] (the golden-stable
//! deterministic object), [`Format::Csv`] (per-core counter rows for
//! spreadsheets and CI artifacts) and [`Format::ChromeTrace`] (a
//! `chrome://tracing` / Perfetto-loadable timeline of tile phases).
//!
//! The [`Emit`] trait is the shared surface: every report type in the
//! workspace ([`RunReport`] here, `ServeReport` in `mnpu-sched`) implements
//! it against the *same* [`Format`] enum, so tools that write reports
//! (`--csv` flags, CI artifact steps) are generic over what they ran.

use crate::report::RunReport;
use mnpu_probe::CoreStats;
use std::io;

/// Serialization formats understood by every [`Emit`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The report's deterministic JSON object (e.g.
    /// [`RunReport::to_json`]): fixed field order, byte-stable, suitable
    /// for golden fixtures.
    Json,
    /// Counter rows plus a `total` row — per core for [`RunReport`], per
    /// job for `ServeReport`. Columns a run was not instrumented for are
    /// left empty.
    Csv,
    /// Chrome trace-event JSON (`chrome://tracing`, Perfetto): one complete
    /// (`"ph":"X"`) event per span, `tid` = core. One global cycle is
    /// mapped to one microsecond. [`RunReport`] needs a run instrumented
    /// with [`crate::ProbeMode::Stats`] (otherwise the timeline is empty);
    /// `ServeReport` always has its job spans.
    ChromeTrace,
}

/// Sink-agnostic report serialization, shared by every report type.
pub trait Emit {
    /// Serialize `self` in `format` into `out`.
    ///
    /// # Errors
    ///
    /// Propagates write errors from `out`; the formatting itself is
    /// infallible.
    fn emit<W: io::Write>(&self, format: Format, out: &mut W) -> io::Result<()>;

    /// [`emit`](Emit::emit) into an in-memory string.
    fn emit_to_string(&self, format: Format) -> String {
        let mut buf = Vec::new();
        self.emit(format, &mut buf).expect("Vec sink never fails");
        String::from_utf8(buf).expect("emitters produce UTF-8")
    }
}

/// CSV cell for a stats-derived column: empty when uninstrumented.
fn cell(stats: Option<&CoreStats>, f: impl Fn(&CoreStats) -> u64) -> String {
    stats.map(|c| f(c).to_string()).unwrap_or_default()
}

impl Emit for RunReport {
    fn emit<W: io::Write>(&self, format: Format, out: &mut W) -> io::Result<()> {
        match format {
            Format::Json => out.write_all(self.to_json().as_bytes()),
            Format::Csv => self.emit_csv(out),
            Format::ChromeTrace => self.emit_chrome_trace(out),
        }
    }
}

impl RunReport {
    fn emit_csv<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(
            out,
            "core,workload,cycles,compute_cycles,pe_utilization,traffic_bytes,walk_bytes,\
             tlb_hits,tlb_misses,active_cycles,stall_compute,stall_wait_translation,\
             stall_wait_load,stall_wait_store,tlb_evictions,walks_started,walks_done,\
             walker_stalls,dma_grants,dma_retries,row_hits,row_misses,row_conflicts,\
             walk_latency_mean,walk_latency_max,request_log_truncated"
        )?;
        for (ci, c) in self.cores.iter().enumerate() {
            let s = self.stats.as_ref().and_then(|s| s.cores.get(ci));
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},",
                ci,
                c.workload,
                c.cycles,
                c.compute_cycles,
                c.pe_utilization,
                c.traffic_bytes,
                c.walk_bytes,
                c.mmu.tlb_hits,
                c.mmu.tlb_misses,
                cell(s, |c| c.active_cycles),
                cell(s, |c| c.stall.compute),
                cell(s, |c| c.stall.wait_translation),
                cell(s, |c| c.stall.wait_load),
                cell(s, |c| c.stall.wait_store),
                cell(s, |c| c.tlb_evictions),
                cell(s, |c| c.walks_started),
                cell(s, |c| c.walks_done),
                cell(s, |c| c.walker_stalls),
                cell(s, |c| c.dma_grants),
                cell(s, |c| c.dma_retries),
                cell(s, |c| c.row_hits),
                cell(s, |c| c.row_misses),
                cell(s, |c| c.row_conflicts),
                s.map(|c| c.walk_latency.mean().to_string()).unwrap_or_default(),
                cell(s, |c| c.walk_latency.max()),
            )?;
        }
        let sum = |f: fn(&crate::CoreReport) -> u64| -> u64 { self.cores.iter().map(f).sum() };
        let ssum = |f: fn(&CoreStats) -> u64| -> String {
            self.stats
                .as_ref()
                .map(|s| s.cores.iter().map(f).sum::<u64>().to_string())
                .unwrap_or_default()
        };
        writeln!(
            out,
            "total,,{},{},,{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},,,{}",
            self.total_cycles,
            sum(|c| c.compute_cycles),
            sum(|c| c.traffic_bytes),
            sum(|c| c.walk_bytes),
            sum(|c| c.mmu.tlb_hits),
            sum(|c| c.mmu.tlb_misses),
            ssum(|c| c.active_cycles),
            ssum(|c| c.stall.compute),
            ssum(|c| c.stall.wait_translation),
            ssum(|c| c.stall.wait_load),
            ssum(|c| c.stall.wait_store),
            ssum(|c| c.tlb_evictions),
            ssum(|c| c.walks_started),
            ssum(|c| c.walks_done),
            ssum(|c| c.walker_stalls),
            ssum(|c| c.dma_grants),
            ssum(|c| c.dma_retries),
            ssum(|c| c.row_hits),
            ssum(|c| c.row_misses),
            ssum(|c| c.row_conflicts),
            self.request_log_truncated,
        )
    }

    fn emit_chrome_trace<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(b"{\"traceEvents\":[")?;
        let mut first = true;
        for ci in 0..self.cores.len() {
            if !first {
                out.write_all(b",")?;
            }
            first = false;
            write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{ci},\
                 \"args\":{{\"name\":\"core {ci}\"}}}}"
            )?;
        }
        if let Some(stats) = &self.stats {
            for sp in &stats.spans {
                if !first {
                    out.write_all(b",")?;
                }
                first = false;
                write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"tile\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"tile\":{}}}}}",
                    sp.phase.name(),
                    sp.start,
                    sp.end.saturating_sub(sp.start).max(1),
                    sp.core,
                    sp.id
                )?;
            }
            // Serve-mode job lifetimes: one span per job on its core's row,
            // from dispatch to completion, with arrival and queueing delay
            // as args so the Perfetto tooltip tells the whole story.
            for j in &stats.jobs {
                if !first {
                    out.write_all(b",")?;
                }
                first = false;
                write!(
                    out,
                    "{{\"name\":\"job {}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"arrival\":{},\"queueing\":{}}}}}",
                    j.job,
                    j.dispatch,
                    j.completion.saturating_sub(j.dispatch).max(1),
                    j.core,
                    j.arrival,
                    j.dispatch.saturating_sub(j.arrival)
                )?;
            }
        }
        out.write_all(b"],\"displayTimeUnit\":\"ms\"}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProbeMode, SharingLevel, Simulation, SystemConfig};
    use mnpu_model::{zoo, Scale};

    fn report(probe: ProbeMode) -> RunReport {
        let mut cfg = SystemConfig::bench(2, SharingLevel::PlusDw);
        cfg.probe = probe;
        let nets = [zoo::ncf(Scale::Bench), zoo::dlrm(Scale::Bench)];
        Simulation::execute_networks(&cfg, &nets)
    }

    #[test]
    fn csv_has_header_core_rows_and_total() {
        let r = report(ProbeMode::Stats);
        let mut buf = Vec::new();
        r.emit(Format::Csv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 cores + total:\n{text}");
        assert!(lines[0].starts_with("core,workload,cycles"));
        assert!(lines[1].starts_with("0,"));
        assert!(lines[3].starts_with("total,"));
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
        }
    }

    #[test]
    fn csv_without_stats_leaves_probe_columns_empty() {
        let r = report(ProbeMode::None);
        let mut buf = Vec::new();
        r.emit(Format::Csv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row1: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row1[9], "", "active_cycles column must be empty without stats");
    }

    #[test]
    fn chrome_trace_is_json_with_phase_events() {
        let r = report(ProbeMode::Stats);
        let mut buf = Vec::new();
        r.emit(Format::ChromeTrace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"compute\""));
        assert!(text.contains("\"tid\":1"), "second core must appear");
        // Balanced braces — cheap structural sanity without a JSON parser.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_format_matches_to_json() {
        let r = report(ProbeMode::Stats);
        let mut buf = Vec::new();
        r.emit(Format::Json, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), r.to_json());
    }
}
