//! Multi-core NPU execution engine — the *HW simulator* half of mNPUsim.
//!
//! The engine replays per-core [`mnpu_systolic::WorkloadTrace`]s against a
//! shared memory system built from [`mnpu_dram`] and [`mnpu_mmu`],
//! modeling:
//!
//! * the double-buffered tile pipeline (load *i+1* overlaps compute *i*,
//!   store *i* overlaps compute *i+1*, layer barrier for cross-layer RAW);
//! * per-transaction address translation (TLB lookup, page-table walks whose
//!   per-level reads consume real DRAM bandwidth, walk coalescing);
//! * dynamic contention on the three shareable resources — DRAM bandwidth,
//!   page-table walkers, TLB capacity — under the paper's sharing levels
//!   [`SharingLevel::Static`], [`SharingLevel::PlusD`],
//!   [`SharingLevel::PlusDw`], [`SharingLevel::PlusDwt`], plus the
//!   monopolized [`SharingLevel::Ideal`] baseline;
//! * arbitrary static partitions of channels and walkers for the paper's
//!   Figs. 9/10/13/14 sweeps;
//! * per-core clock domains (core-local compute cycles are converted to the
//!   global DRAM clock).
//!
//! The loop is event-driven: between events the clock jumps, so compute-bound
//! phases and idle memory cost nothing.
//!
//! # Example
//!
//! ```
//! use mnpu_engine::{SystemConfig, SharingLevel, Simulation};
//! use mnpu_model::{zoo, Scale};
//!
//! // Run the ncf+ncf dual-core mix with everything shared (+DWT).
//! let cfg = SystemConfig::bench(2, SharingLevel::PlusDwt);
//! let nets = [zoo::ncf(Scale::Bench), zoo::ncf(Scale::Bench)];
//! let report = Simulation::execute_networks(&cfg, &nets);
//! assert_eq!(report.cores.len(), 2);
//! assert!(report.cores[0].cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod builder;
mod core_rt;
mod emit;
mod json;
mod memmap;
mod memory;
mod report;
mod shadow;
mod sharing;
mod sim;
mod snapshot;
mod stage;
mod system;

pub use builder::SystemConfigBuilder;
pub use emit::{Emit, Format};
pub use memmap::PageTable;
pub use memory::{DramMemory, IdealMemory, MemoryModel, MemorySystem};
pub use report::{ChipEnergy, CoreReport, EnergyModel, LogEvent, LogKind, RunReport};
pub use sharing::SharingLevel;
pub use sim::{Advance, Simulation};
pub use snapshot::{config_fingerprint, trace_fingerprint};
pub use stage::expected_data_transactions;
pub use system::{ConfigError, ProbeMode, SystemConfig};

// Re-exported so snapshot consumers (sweep executors, schedulers, external
// tools) need no direct `mnpu_snapshot` dependency for the common flow.
pub use mnpu_snapshot::{SimSnapshot, SnapError, SNAPSHOT_VERSION};

// The observability vocabulary is part of the engine's public API surface:
// callers matching on probe events or reading [`RunReport::stats`] should
// not need a separate `mnpu_probe` dependency.
pub use mnpu_probe::{
    CoreState, CoreStats, DramContention, Event, Histogram, JobSpan, NullProbe, Phase, Probe,
    SchedStats, Span, StallBreakdown, StatsProbe, StatsReport,
};

// Likewise for the runtime-observability vocabulary behind
// [`ProbeMode::Flight`]: drivers install a [`TraceHandle`] and dispatch
// over [`FlightProbe`] without a direct `mnpu_trace` dependency.
pub use mnpu_trace::{FlightProbe, TraceHandle};
