//! Bit-exact checkpoint/restore of a whole [`Simulation`].
//!
//! [`Simulation::snapshot`] serializes every piece of mutable state the
//! event loop can observe — per-core pipeline state, DMA stages, walk
//! parking lots, arbitration pointers, page tables, MMU, NoC links and
//! in-flight queues, the request log, the memory backend (including its
//! probe and fast-forward caches) and the engine's own probe — into a
//! versioned [`SimSnapshot`]. [`Simulation::restore`] reinstates it into a
//! *freshly built* simulation of the same configuration and workloads;
//! resuming from the restored state then yields a byte-identical
//! [`crate::RunReport`], the property the validation suite's lockstep laws
//! fence.
//!
//! What is deliberately *not* serialized:
//!
//! * structural state derivable from the configuration and traces (trace
//!   contents, `flat_tiles`, `layer_store_total`, channel partitions) —
//!   the snapshot instead carries fingerprints that restore validates;
//! * performance caches with no observable effect (`waiter_pool`,
//!   `retry_scratch`, the arbiter's `walker_blocked` scratch) — restore
//!   resets them empty;
//! * `completion_buf`, which is provably empty between pump passes.
//!
//! Maps are serialized in sorted key order so equal states produce equal
//! bytes, making snapshot equality a usable determinism oracle.

use crate::arbiter::{Arbiter, RetryTxn};
use crate::core_rt::CoreRt;
use crate::report::{LogEvent, LogKind};
use crate::sim::{NocRequest, RequestLog, Simulation};
use crate::stage::Stage;
use crate::system::SystemConfig;
use mnpu_dram::MonotonicQueue;
use mnpu_mmu::Mmu;
use mnpu_probe::Probe;
use mnpu_snapshot::{fingerprint, fingerprint_u64, Reader, SimSnapshot, SnapError, Writer};
use mnpu_systolic::WorkloadTrace;
use std::collections::VecDeque;

/// Section tag for the engine's own state.
const ENGINE_TAG: u8 = 0xC0;

/// Fingerprint of a system configuration — the compatibility key stamped
/// into every snapshot. Derived from the `Debug` rendering of the full
/// config, which covers every field deterministically.
pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    fingerprint(&format!("{cfg:?}"))
}

/// Structural fingerprint of a workload trace: name, layer count, tile
/// count, total compute cycles, footprint and total traffic. Restoring a
/// snapshot validates each core's bound trace against this, catching the
/// overwhelmingly likely mismatches (different workload, different scale,
/// different tiling) without serializing whole traces.
pub fn trace_fingerprint(trace: &WorkloadTrace) -> u64 {
    let mut h = fingerprint(trace.name());
    h = fingerprint_u64(h, trace.layers().len() as u64);
    h = fingerprint_u64(h, trace.total_tiles() as u64);
    h = fingerprint_u64(h, trace.total_compute_cycles());
    h = fingerprint_u64(h, trace.footprint_bytes());
    h = fingerprint_u64(h, trace.total_traffic_bytes());
    h
}

fn log_kind_code(k: LogKind) -> u8 {
    match k {
        LogKind::TlbHit => 0,
        LogKind::TlbMiss => 1,
        LogKind::WalkStart => 2,
        LogKind::WalkDone => 3,
        LogKind::DramReadDone => 4,
        LogKind::DramWriteDone => 5,
    }
}

fn log_kind_from(code: u8) -> Result<LogKind, SnapError> {
    Ok(match code {
        0 => LogKind::TlbHit,
        1 => LogKind::TlbMiss,
        2 => LogKind::WalkStart,
        3 => LogKind::WalkDone,
        4 => LogKind::DramReadDone,
        5 => LogKind::DramWriteDone,
        _ => return Err(SnapError::BadValue("unknown log kind")),
    })
}

fn save_core(w: &mut Writer, rt: &CoreRt) {
    w.u64(trace_fingerprint(&rt.trace));
    w.seq(&rt.layer_store_remaining, |w, &v| w.u64(v));
    w.seq(&rt.layer_finish, |w, &v| w.u64(v));
    w.seq(&rt.tile_loaded, |w, &b| w.bool(b));
    w.usize(rt.next_load);
    w.usize(rt.next_compute);
    w.usize(rt.computed);
    w.opt(&rt.load_stage, |w, &s| w.usize(s));
    w.seq(&rt.active_stores, |w, &s| w.usize(s));
    w.opt(&rt.computing, |w, &(flat, at)| {
        w.usize(flat);
        w.u64(at);
    });
    w.usize(rt.outstanding);
    w.u64(rt.iter);
    w.u64(rt.start_cycle);
    w.opt(&rt.finished_at, |w, &v| w.u64(v));
    w.u64(rt.compute_cycles_total);
    w.u64(rt.data_txns);
    w.u64(rt.walk_txns);
    w.bool(rt.blocked_on_dram);
    w.bool(rt.needs_progress);
}

/// Restore one core's mutable state in place. The trace (and everything
/// derived from it) stays as built; the fingerprint check ties the
/// serialized state to it.
fn load_core(r: &mut Reader<'_>, core: usize, rt: &mut CoreRt) -> Result<(), SnapError> {
    if r.u64()? != trace_fingerprint(&rt.trace) {
        return Err(SnapError::TraceMismatch { core });
    }
    let layer_store_remaining = r.seq(|r| r.u64())?;
    let layer_finish = r.seq(|r| r.u64())?;
    let tile_loaded = r.seq(|r| r.bool())?;
    if layer_store_remaining.len() != rt.layer_store_total.len()
        || layer_finish.len() != rt.layer_finish.len()
        || tile_loaded.len() != rt.flat_tiles.len()
    {
        return Err(SnapError::BadValue("core pipeline shape mismatch"));
    }
    rt.layer_store_remaining = layer_store_remaining;
    rt.layer_finish = layer_finish;
    rt.tile_loaded = tile_loaded;
    rt.next_load = r.usize()?;
    rt.next_compute = r.usize()?;
    rt.computed = r.usize()?;
    rt.load_stage = r.opt(|r| r.usize())?;
    rt.active_stores = r.seq(|r| r.usize())?;
    rt.computing = r.opt(|r| Ok((r.usize()?, r.u64()?)))?;
    rt.outstanding = r.usize()?;
    rt.iter = r.u64()?;
    rt.start_cycle = r.u64()?;
    rt.finished_at = r.opt(|r| r.u64())?;
    rt.compute_cycles_total = r.u64()?;
    rt.data_txns = r.u64()?;
    rt.walk_txns = r.u64()?;
    rt.blocked_on_dram = r.bool()?;
    rt.needs_progress = r.bool()?;
    Ok(())
}

fn save_arbiter(w: &mut Writer, a: &Arbiter) {
    w.usize(a.rr_start);
    let retry: Vec<RetryTxn> = a.dram_retry.iter().copied().collect();
    w.seq(&retry, |w, &(core, paddr, is_write, meta)| {
        w.usize(core);
        w.u64(paddr);
        w.bool(is_write);
        w.u64(meta);
    });
    w.seq(&a.walker_wait_order, |w, q| {
        let vpns: Vec<u64> = q.iter().copied().collect();
        w.seq(&vpns, |w, &v| w.u64(v));
    });
    type WaiterEntry<'a> = (&'a (usize, u64), &'a Vec<(usize, u64)>);
    let waiters: Vec<WaiterEntry<'_>> = a.walker_waiters.iter().collect();
    w.seq(&waiters, |w, &(&(core, vpn), parked)| {
        w.usize(core);
        w.u64(vpn);
        w.seq(parked, |w, &(stage, vaddr)| {
            w.usize(stage);
            w.u64(vaddr);
        });
    });
    w.bool(a.walker_event);
}

fn load_arbiter(r: &mut Reader<'_>, a: &mut Arbiter, cores: usize) -> Result<(), SnapError> {
    a.rr_start = r.usize()?;
    if a.rr_start >= cores {
        return Err(SnapError::BadValue("round-robin pointer out of range"));
    }
    a.dram_retry = r
        .seq(|r| Ok((r.usize()?, r.u64()?, r.bool()?, r.u64()?)))?
        .into_iter()
        .collect::<VecDeque<RetryTxn>>();
    let wait_order = r.seq(|r| Ok(r.seq(|r| r.u64())?.into_iter().collect::<VecDeque<u64>>()))?;
    if wait_order.len() != cores {
        return Err(SnapError::BadValue("walker wait queue core count mismatch"));
    }
    a.walker_wait_order = wait_order;
    let waiters = r.seq(|r| {
        let key = (r.usize()?, r.u64()?);
        let parked = r.seq(|r| Ok((r.usize()?, r.u64()?)))?;
        Ok((key, parked))
    })?;
    a.walker_waiters = waiters.into_iter().collect();
    a.walker_event = r.bool()?;
    // Pure scratch: rebuilt empty/false, matching what a native run holds
    // outside `drain_walker_wait` / `issue_all`.
    a.walker_blocked = vec![false; cores];
    a.retry_scratch = VecDeque::new();
    Ok(())
}

fn save_request_log(w: &mut Writer, log: &RequestLog) {
    let events: Vec<LogEvent> = log.events.iter().cloned().collect();
    w.seq(&events, |w, e| {
        w.u64(e.cycle);
        w.usize(e.core);
        w.u8(log_kind_code(e.kind));
        w.u64(e.addr);
    });
    w.bool(log.truncated);
}

fn load_request_log(r: &mut Reader<'_>, log: &mut RequestLog) -> Result<(), SnapError> {
    let events = r.seq(|r| {
        Ok(LogEvent {
            cycle: r.u64()?,
            core: r.usize()?,
            kind: log_kind_from(r.u8()?)?,
            addr: r.u64()?,
        })
    })?;
    if let Some(cap) = log.cap {
        if events.len() > cap {
            return Err(SnapError::BadValue("request log exceeds its cap"));
        }
    }
    log.events = events.into_iter().collect();
    log.truncated = r.bool()?;
    Ok(())
}

impl<P: Probe> Simulation<P> {
    /// Capture the complete mutable state of this simulation as a
    /// [`SimSnapshot`] — the restore target is a freshly built simulation
    /// of the same configuration and workload bindings (see
    /// [`Simulation::restore`]). The snapshot is self-contained and
    /// versioned; [`SimSnapshot::to_bytes`] / [`SimSnapshot::to_json`]
    /// serialize it across process restarts.
    ///
    /// Snapshots of equal states are byte-equal: all internal maps are
    /// written in sorted key order and heaps as their sorted key multisets.
    pub fn snapshot(&self) -> SimSnapshot {
        self.snapshot_as(self.mmu.as_ref(), config_fingerprint(&self.cfg))
    }

    /// [`Simulation::snapshot`] with the MMU section and config
    /// fingerprint substituted — the fork primitive behind shadow-variant
    /// prefix sharing ([`Simulation::fork_snapshot`]).
    pub(crate) fn snapshot_as(&self, mmu: Option<&Mmu>, config_fp: u64) -> SimSnapshot {
        debug_assert!(
            self.completion_buf.is_empty(),
            "snapshot taken mid-pump: completion buffer not drained"
        );
        let mut w = Writer::new();
        w.tag(ENGINE_TAG);
        w.u64(self.now);
        w.bool(self.pumped);
        w.seq(&self.finish_reported, |w, &b| w.bool(b));
        w.seq(&self.cores, save_core);
        w.seq(&self.stages, |w, s| s.save(w));
        let parked: Vec<(&u64, &Vec<(usize, u64)>)> = self.walk_waiters.iter().collect();
        w.seq(&parked, |w, &(&walk, waiters)| {
            w.u64(walk);
            w.seq(waiters, |w, &(stage, vaddr)| {
                w.usize(stage);
                w.u64(vaddr);
            });
        });
        save_arbiter(&mut w, &self.arbiter);
        w.seq(&self.page_tables, |w, pt| pt.save_state(w));
        w.opt(&mmu, |w, m| m.save_state(w));
        w.opt(&self.noc, |w, n| n.save_state(w));
        w.seq(&self.noc_requests.snapshot_items(), |w, &(t, core, paddr, is_write, meta)| {
            w.u64(t);
            w.usize(core);
            w.u64(paddr);
            w.bool(is_write);
            w.u64(meta);
        });
        w.seq(&self.noc_responses.snapshot_items(), |w, &(t, meta, core)| {
            w.u64(t);
            w.u64(meta);
            w.usize(core);
        });
        w.opt(&self.log, save_request_log);
        self.memory.save_state(&mut w);
        self.probe.save_state(&mut w);
        SimSnapshot::new(config_fp, w.finish())
    }

    /// Restore a snapshot taken by [`Simulation::snapshot`] (or forked by
    /// [`Simulation::fork_snapshot`]) into this simulation, which must be
    /// freshly built from the same configuration and workload bindings.
    /// Afterwards, driving this simulation is byte-equivalent to driving
    /// the one the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// * [`SnapError::VersionMismatch`] — snapshot from an incompatible
    ///   format version;
    /// * [`SnapError::ConfigMismatch`] — snapshot of a different system
    ///   configuration;
    /// * [`SnapError::TraceMismatch`] — a core's bound workload differs
    ///   from the one the snapshot expects;
    /// * any other [`SnapError`] — malformed or corrupt payload.
    ///
    /// On error the simulation is left in an unspecified (possibly
    /// partially restored) state and must be discarded — restore into a
    /// freshly built instance, not one you need to keep.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), SnapError> {
        if snap.version != mnpu_snapshot::SNAPSHOT_VERSION {
            return Err(SnapError::VersionMismatch {
                found: snap.version,
                expected: mnpu_snapshot::SNAPSHOT_VERSION,
            });
        }
        let expected = config_fingerprint(&self.cfg);
        if snap.config_fp != expected {
            return Err(SnapError::ConfigMismatch { found: snap.config_fp, expected });
        }
        let mut r = Reader::new(&snap.payload);
        r.tag(ENGINE_TAG)?;
        self.now = r.u64()?;
        self.pumped = r.bool()?;
        let finish_reported = r.seq(|r| r.bool())?;
        if finish_reported.len() != self.cores.len() {
            return Err(SnapError::BadValue("core count mismatch"));
        }
        self.finish_reported = finish_reported;
        let ncores = self.cores.len();
        {
            let mut idx = 0usize;
            let n = r.usize()?;
            if n != ncores {
                return Err(SnapError::BadValue("core count mismatch"));
            }
            while idx < n {
                load_core(&mut r, idx, &mut self.cores[idx])?;
                idx += 1;
            }
        }
        self.stages = r.seq(Stage::load)?;
        let parked = r.seq(|r| {
            let walk = r.u64()?;
            let waiters = r.seq(|r| Ok((r.usize()?, r.u64()?)))?;
            Ok((walk, waiters))
        })?;
        self.walk_waiters = parked.into_iter().collect();
        load_arbiter(&mut r, &mut self.arbiter, ncores)?;
        {
            let n = r.usize()?;
            if n != self.page_tables.len() {
                return Err(SnapError::BadValue("page table count mismatch"));
            }
            for pt in &mut self.page_tables {
                pt.load_state(&mut r)?;
            }
        }
        let has_mmu = r.bool()?;
        if has_mmu != self.mmu.is_some() {
            return Err(SnapError::BadValue("translation enablement mismatch"));
        }
        if let Some(mmu) = &mut self.mmu {
            mmu.load_state(&mut r)?;
        }
        let has_noc = r.bool()?;
        if has_noc != self.noc.is_some() {
            return Err(SnapError::BadValue("NoC enablement mismatch"));
        }
        if let Some(noc) = &mut self.noc {
            noc.load_state(&mut r)?;
        }
        // Rebuild the monotone queues by pushing the sorted multisets into
        // lane 0: pop order is a pure function of the contents, so this is
        // observationally exact (see `MonotonicQueue::snapshot_items`).
        let requests = r.seq(|r| Ok((r.u64()?, r.usize()?, r.u64()?, r.bool()?, r.u64()?)))?;
        let mut noc_requests = MonotonicQueue::<NocRequest>::new(ncores);
        for item in requests {
            noc_requests.push(0, item);
        }
        self.noc_requests = noc_requests;
        let responses = r.seq(|r| Ok((r.u64()?, r.u64()?, r.usize()?)))?;
        let mut noc_responses = MonotonicQueue::new(ncores);
        for item in responses {
            noc_responses.push(0, item);
        }
        self.noc_responses = noc_responses;
        let has_log = r.bool()?;
        if has_log != self.log.is_some() {
            return Err(SnapError::BadValue("request log enablement mismatch"));
        }
        if let Some(log) = &mut self.log {
            load_request_log(&mut r, log)?;
        }
        self.memory.load_state(&mut r)?;
        self.probe.load_state(&mut r)?;
        r.done()?;
        // Performance caches carry no observable state; start them fresh.
        self.completion_buf = Vec::new();
        self.waiter_pool = Vec::new();
        self.shadows = None;
        Ok(())
    }
}
