//! DMA stages: burst expansion of tile load/store span lists into 64-byte
//! DRAM transactions.

use mnpu_dram::TRANSACTION_BYTES;
use mnpu_systolic::{MemSpan, SpanKind};

/// Number of 64-byte transactions needed to cover `s`, counting the partial
/// transactions at both unaligned ends.
pub(crate) fn span_txns(s: &MemSpan) -> u64 {
    (s.addr + s.bytes - 1) / TRANSACTION_BYTES - s.addr / TRANSACTION_BYTES + 1
}

/// Exact number of 64-byte DRAM data transactions one execution of `trace`
/// issues: the sum of every tile's load and store spans after burst
/// expansion (walk traffic is separate). This is the same arithmetic the
/// DMA stages use, exported so external validators can hold
/// [`crate::CoreReport::traffic_bytes`] to an equality, not just a bound:
/// `traffic_bytes == expected_data_transactions(trace) * 64 * iterations`.
pub fn expected_data_transactions(trace: &mnpu_systolic::WorkloadTrace) -> u64 {
    trace
        .layers()
        .iter()
        .flat_map(|l| &l.tiles)
        .map(|t| {
            t.loads.iter().map(span_txns).sum::<u64>() + t.stores.iter().map(span_txns).sum::<u64>()
        })
        .sum()
}

/// A DMA stage: the load or store burst of one tile, expanded into 64-byte
/// transactions on demand.
#[derive(Debug)]
pub(crate) struct Stage {
    pub(crate) core: usize,
    pub(crate) layer: usize,
    pub(crate) flat_tile: usize,
    pub(crate) is_store: bool,
    pub(crate) spans: Vec<MemSpan>,
    pub(crate) span_idx: usize,
    pub(crate) cursor: u64,
    pub(crate) total: u64,
    pub(crate) consumed: u64,
    pub(crate) completed: u64,
}

impl Stage {
    pub(crate) fn new(
        core: usize,
        layer: usize,
        flat_tile: usize,
        is_store: bool,
        spans: Vec<MemSpan>,
    ) -> Self {
        let total = spans.iter().map(span_txns).sum();
        let cursor = spans.first().map_or(0, |s| s.addr / TRANSACTION_BYTES * TRANSACTION_BYTES);
        Stage {
            core,
            layer,
            flat_tile,
            is_store,
            spans,
            span_idx: 0,
            cursor,
            total,
            consumed: 0,
            completed: 0,
        }
    }

    /// Virtual address of the next transaction, if any remain unissued.
    pub(crate) fn peek(&self) -> Option<u64> {
        (self.consumed < self.total).then_some(self.cursor)
    }

    pub(crate) fn advance(&mut self) {
        debug_assert!(self.consumed < self.total);
        self.consumed += 1;
        let span = &self.spans[self.span_idx];
        let end = span.addr + span.bytes;
        self.cursor += TRANSACTION_BYTES;
        if self.cursor >= end {
            self.span_idx += 1;
            if let Some(next) = self.spans.get(self.span_idx) {
                self.cursor = next.addr / TRANSACTION_BYTES * TRANSACTION_BYTES;
            }
        }
    }

    pub(crate) fn done(&self) -> bool {
        self.completed == self.total
    }

    /// Serialize the stage verbatim, span list included — a completed
    /// stage's released (empty) span list round-trips as empty.
    pub(crate) fn save(&self, w: &mut mnpu_snapshot::Writer) {
        w.usize(self.core);
        w.usize(self.layer);
        w.usize(self.flat_tile);
        w.bool(self.is_store);
        w.seq(&self.spans, |w, s| {
            w.u64(s.addr);
            w.u64(s.bytes);
            w.u8(match s.kind {
                SpanKind::Load => 0,
                SpanKind::Store => 1,
            });
        });
        w.usize(self.span_idx);
        w.u64(self.cursor);
        w.u64(self.total);
        w.u64(self.consumed);
        w.u64(self.completed);
    }

    pub(crate) fn load(
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<Stage, mnpu_snapshot::SnapError> {
        Ok(Stage {
            core: r.usize()?,
            layer: r.usize()?,
            flat_tile: r.usize()?,
            is_store: r.bool()?,
            spans: r.seq(|r| {
                Ok(MemSpan {
                    addr: r.u64()?,
                    bytes: r.u64()?,
                    kind: match r.u8()? {
                        0 => SpanKind::Load,
                        1 => SpanKind::Store,
                        _ => return Err(mnpu_snapshot::SnapError::BadValue("unknown span kind")),
                    },
                })
            })?,
            span_idx: r.usize()?,
            cursor: r.u64()?,
            total: r.u64()?,
            consumed: r.u64()?,
            completed: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drain a stage through the same peek/advance protocol the issue loop
    /// uses, returning every transaction address in order.
    fn drain(spans: Vec<MemSpan>) -> Vec<u64> {
        let mut stage = Stage::new(0, 0, 0, false, spans);
        let mut addrs = Vec::new();
        while let Some(a) = stage.peek() {
            addrs.push(a);
            stage.advance();
        }
        addrs
    }

    proptest! {
        /// For arbitrary (unaligned) span lists, the stage issues exactly
        /// `span_txns` transactions per span, every address is 64-byte
        /// aligned, and no transaction falls outside its span's bounds
        /// rounded to transaction granularity.
        #[test]
        fn prop_burst_expansion(raw in proptest::collection::vec((0u64..(1 << 40), 1u64..8192), 1..6)) {
            let spans: Vec<MemSpan> = raw
                .iter()
                .map(|&(addr, bytes)| MemSpan { addr, bytes, kind: SpanKind::Load })
                .collect();
            let expected: u64 = spans.iter().map(span_txns).sum();
            let addrs = drain(spans.clone());
            prop_assert_eq!(addrs.len() as u64, expected);

            let mut it = addrs.iter().copied();
            for s in &spans {
                let first = s.addr / TRANSACTION_BYTES * TRANSACTION_BYTES;
                let last = (s.addr + s.bytes - 1) / TRANSACTION_BYTES * TRANSACTION_BYTES;
                for k in 0..span_txns(s) {
                    let a = it.next().expect("count checked above");
                    prop_assert_eq!(a % TRANSACTION_BYTES, 0);
                    prop_assert!(a >= first && a <= last, "txn 0x{:x} outside [0x{:x}, 0x{:x}]", a, first, last);
                    prop_assert_eq!(a, first + k * TRANSACTION_BYTES);
                }
            }
            prop_assert!(it.next().is_none());
        }

        /// `done()` flips only once every issued transaction has completed.
        #[test]
        fn prop_done_requires_all_completions(addr in 0u64..(1 << 30), bytes in 1u64..4096) {
            let span = MemSpan { addr, bytes, kind: SpanKind::Store };
            let mut stage = Stage::new(0, 0, 0, true, vec![span]);
            let total = stage.total;
            while stage.peek().is_some() {
                stage.advance();
            }
            for _ in 0..total {
                prop_assert!(!stage.done());
                stage.completed += 1;
            }
            prop_assert!(stage.done());
        }
    }

    #[test]
    fn zero_span_stage_is_empty() {
        let addrs = drain(Vec::new());
        assert!(addrs.is_empty());
    }
}
