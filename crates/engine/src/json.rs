//! Deterministic JSON serialization of [`RunReport`].
//!
//! Hand-rolled (the workspace deliberately carries no serde): field order is
//! fixed by the code below, integers print exactly, and floats use Rust's
//! shortest-roundtrip `Display`, so two byte-identical reports serialize to
//! byte-identical JSON. The golden equivalence test pins a fixture produced
//! by this writer to prove hot-path changes are behaviorally invisible.

use crate::report::{LogKind, RunReport};
use mnpu_dram::ChannelStats;
use mnpu_probe::{CoreStats, Histogram, StatsReport};
use std::fmt::Write as _;

fn push_str_field(out: &mut String, key: &str, val: &str) {
    // Workload/layer names are plain identifiers; escape the two JSON
    // metacharacters they could ever contain, for strictness.
    let escaped: String = val.chars().flat_map(char::escape_default).collect();
    let _ = write!(out, "\"{key}\":\"{escaped}\"");
}

fn push_channel_stats(out: &mut String, s: &ChannelStats) {
    let _ = write!(
        out,
        "{{\"reads\":{},\"writes\":{},\"row_hits\":{},\"row_misses\":{},\
         \"row_conflicts\":{},\"busy_cycles\":{},\"bytes\":{},\"latency_sum\":{},\
         \"latency_max\":{},\"refreshes\":{}}}",
        s.reads,
        s.writes,
        s.row_hits,
        s.row_misses,
        s.row_conflicts,
        s.busy_cycles,
        s.bytes,
        s.latency_sum,
        s.latency_max,
        s.refreshes
    );
}

fn push_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn push_hist(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":",
        h.count(),
        h.sum(),
        h.max()
    );
    push_u64_array(out, h.bucket_counts());
    out.push('}');
}

fn push_core_stats(out: &mut String, c: &CoreStats) {
    let _ = write!(
        out,
        "{{\"active_cycles\":{},\"stall\":{{\"compute\":{},\"wait_translation\":{},\
         \"wait_load\":{},\"wait_store\":{}}},\"tlb_hits\":{},\"tlb_misses\":{},\
         \"tlb_evictions\":{},\"walks_started\":{},\"walks_done\":{},\"walker_stalls\":{},\
         \"dma_grants\":{},\"dma_retries\":{},\"row_hits\":{},\"row_misses\":{},\
         \"row_conflicts\":{},\"walk_latency\":",
        c.active_cycles,
        c.stall.compute,
        c.stall.wait_translation,
        c.stall.wait_load,
        c.stall.wait_store,
        c.tlb_hits,
        c.tlb_misses,
        c.tlb_evictions,
        c.walks_started,
        c.walks_done,
        c.walker_stalls,
        c.dma_grants,
        c.dma_retries,
        c.row_hits,
        c.row_misses,
        c.row_conflicts
    );
    push_hist(out, &c.walk_latency);
    out.push_str(",\"epoch_dram_txns\":");
    push_u64_array(out, &c.epoch_dram_txns);
    out.push_str(",\"epoch_tlb_misses\":");
    push_u64_array(out, &c.epoch_tlb_misses);
    out.push('}');
}

fn push_stats(out: &mut String, s: &StatsReport) {
    let _ = write!(out, "{{\"epoch_cycles\":{},\"cores\":[", s.epoch_cycles);
    for (i, c) in s.cores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_core_stats(out, c);
    }
    let _ = write!(
        out,
        "],\"dram\":{{\"row_hits\":{},\"row_misses\":{},\"row_conflicts\":{},\
         \"refreshes\":{},\"issues\":{},\"queue_residency\":",
        s.dram.row_hits, s.dram.row_misses, s.dram.row_conflicts, s.dram.refreshes, s.dram.issues
    );
    push_hist(out, &s.dram.queue_residency);
    out.push_str(",\"queue_depth\":");
    push_hist(out, &s.dram.queue_depth);
    out.push_str("},\"spans\":[");
    for (i, sp) in s.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"start\":{},\"end\":{},\"core\":{},\"phase\":\"{}\",\"id\":{}}}",
            sp.start,
            sp.end,
            sp.core,
            sp.phase.name(),
            sp.id
        );
    }
    out.push(']');
    // Scheduler fields exist only for serve-mode runs; batch reports keep
    // the exact historical byte layout (same idiom as
    // `request_log_truncated` above).
    if !s.jobs.is_empty() {
        out.push_str(",\"jobs\":[");
        for (i, j) in s.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"job\":{},\"core\":{},\"arrival\":{},\"dispatch\":{},\"completion\":{}}}",
                j.job, j.core, j.arrival, j.dispatch, j.completion
            );
        }
        out.push(']');
    }
    if s.sched.arrivals > 0 {
        let _ = write!(
            out,
            ",\"sched\":{{\"arrivals\":{},\"dispatches\":{},\"completions\":{},\"queue_depth\":",
            s.sched.arrivals, s.sched.dispatches, s.sched.completions
        );
        push_hist(out, &s.sched.queue_depth);
        out.push('}');
    }
    out.push('}');
}

fn log_kind_name(k: LogKind) -> &'static str {
    match k {
        LogKind::TlbHit => "tlb_hit",
        LogKind::TlbMiss => "tlb_miss",
        LogKind::WalkStart => "walk_start",
        LogKind::WalkDone => "walk_done",
        LogKind::DramReadDone => "dram_read_done",
        LogKind::DramWriteDone => "dram_write_done",
    }
}

impl RunReport {
    /// Serialize the full report as a single deterministic JSON object.
    ///
    /// Every field of the report is included — per-core results (with MMU
    /// counters and layer cycles), DRAM statistics down to the per-channel
    /// counters, the bandwidth trace when enabled, and the request log —
    /// so byte-equality of two serializations implies behavioral equality
    /// of the two runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"cores\":[");
        for (i, c) in self.cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "workload", &c.workload);
            let _ = write!(
                out,
                ",\"cycles\":{},\"compute_cycles\":{},\"pe_utilization\":{},\
                 \"traffic_bytes\":{},\"walk_bytes\":{},",
                c.cycles, c.compute_cycles, c.pe_utilization, c.traffic_bytes, c.walk_bytes
            );
            let _ = write!(
                out,
                "\"mmu\":{{\"tlb_hits\":{},\"tlb_misses\":{},\"walks\":{},\
                 \"coalesced\":{},\"walker_stalls\":{}}},",
                c.mmu.tlb_hits, c.mmu.tlb_misses, c.mmu.walks, c.mmu.coalesced, c.mmu.walker_stalls
            );
            out.push_str("\"layer_cycles\":[");
            for (j, (name, cycles)) in c.layer_cycles.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                push_str_field(&mut out, "name", name);
                let _ = write!(out, ",\"cycles\":{cycles}]");
            }
            let _ = write!(
                out,
                "],\"footprint_bytes\":{},\"noc_queue_cycles\":{}}}",
                c.footprint_bytes, c.noc_queue_cycles
            );
        }
        let _ = write!(out, "],\"total_cycles\":{},", self.total_cycles);

        out.push_str("\"dram\":{\"total\":");
        push_channel_stats(&mut out, &self.dram.total);
        out.push_str(",\"per_channel\":[");
        for (i, ch) in self.dram.per_channel.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_channel_stats(&mut out, ch);
        }
        out.push_str("],\"per_core_bytes\":[");
        for (i, b) in self.dram.per_core_bytes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]},");

        out.push_str("\"bandwidth_trace\":");
        match &self.bandwidth_trace {
            None => out.push_str("null"),
            Some(t) => {
                let _ = write!(out, "{{\"window\":{},\"total_series\":[", t.window());
                for (i, b) in t.total_series().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push_str("]}");
            }
        }

        out.push_str(",\"request_log\":[");
        for (i, e) in self.request_log.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cycle\":{},\"core\":{},\"kind\":\"{}\",\"addr\":{}}}",
                e.cycle,
                e.core,
                log_kind_name(e.kind),
                e.addr
            );
        }
        out.push(']');
        // Observability fields are emitted only when present, so reports of
        // uninstrumented runs — including the golden fixtures — keep the
        // exact historical byte layout.
        if self.request_log_truncated {
            out.push_str(",\"request_log_truncated\":true");
        }
        if let Some(s) = &self.stats {
            out.push_str(",\"stats\":");
            push_stats(&mut out, s);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{SharingLevel, Simulation, SystemConfig};
    use mnpu_model::{zoo, Scale};

    #[test]
    fn json_is_deterministic_and_structured() {
        let cfg = SystemConfig::bench(1, SharingLevel::Ideal);
        let nets = [zoo::ncf(Scale::Bench)];
        let a = Simulation::execute_networks(&cfg, &nets).to_json();
        let b = Simulation::execute_networks(&cfg, &nets).to_json();
        assert_eq!(a, b, "same run must serialize byte-identically");
        assert!(a.starts_with("{\"cores\":["));
        assert!(a.contains("\"total_cycles\":"));
        assert!(a.contains("\"per_channel\":["));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn json_includes_request_log_events() {
        let mut cfg = SystemConfig::bench(1, SharingLevel::Ideal);
        cfg.request_log = true;
        let r = Simulation::execute_networks(&cfg, &[zoo::ncf(Scale::Bench)]);
        let j = r.to_json();
        assert!(j.contains("\"kind\":\"tlb_"));
        assert!(j.contains("\"kind\":\"dram_read_done\""));
    }
}
