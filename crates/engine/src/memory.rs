//! The pluggable memory-system boundary.
//!
//! The simulation loop talks to DRAM only through [`MemorySystem`], so the
//! timing model behind the chip's memory controller can be swapped without
//! touching the pipeline, translation, or arbitration logic. Two backends
//! ship with the engine:
//!
//! * [`DramMemory`] — the full FR-FCFS banked-DRAM model from [`mnpu_dram`]
//!   (the paper's configuration), including channel partitioning for
//!   non-DRAM-sharing levels and windowed bandwidth tracing;
//! * [`IdealMemory`] — a fixed-latency, infinite-bandwidth memory, useful
//!   as a contention-free upper bound and for isolating compute effects.

use crate::sharing::partition_channels;
use crate::system::SystemConfig;
use mnpu_dram::{BandwidthTrace, Completion, Dram, DramStats, EnqueueError, TRANSACTION_BYTES};
use mnpu_probe::{NullProbe, Probe};
use mnpu_snapshot::{Reader, SnapError, Writer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Section tag for the memory backend's snapshot payload.
const MEMORY_TAG: u8 = 0xB0;

/// An in-flight ideal-memory transaction:
/// `(done_at, seq, core, addr, is_write, meta)`.
type InFlightTxn = (u64, u64, usize, u64, bool, u64);

/// Which [`MemorySystem`] backend a [`SystemConfig`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryModel {
    /// The full banked-DRAM timing model (default; the paper's setup).
    Timing,
    /// Fixed-latency, infinite-bandwidth memory: every transaction
    /// completes exactly `latency` DRAM cycles after it is enqueued and
    /// nothing ever queues. An upper bound with all memory contention
    /// removed.
    Ideal {
        /// Service latency in DRAM cycles (clamped to at least 1).
        latency: u64,
    },
}

/// The memory system behind the cores' DMA engines and page-table walkers.
///
/// The contract mirrors how the event loop drives memory:
///
/// 1. [`enqueue`](MemorySystem::enqueue) submits one 64-byte transaction;
///    it may be refused with [`EnqueueError::QueueFull`], in which case the
///    caller must retry after the next event.
/// 2. [`tick`](MemorySystem::tick) advances the device to cycle `now`,
///    moving any serviced transactions into an internal completion buffer.
/// 3. [`drain_completions`](MemorySystem::drain_completions) takes that
///    buffer. Completion order must be deterministic for a given request
///    sequence — simulations are replayed across threads and compared.
/// 4. [`next_event_cycle`](MemorySystem::next_event_cycle) names the next
///    cycle at which the device state can change, letting the event loop
///    skip idle gaps. It must be strictly in the future once `tick` has
///    run, and `None` only when the device is completely idle.
///
/// The `P` parameter is the observability probe the backend feeds with
/// device events (DRAM row outcomes, refreshes, queue depths). With the
/// default [`NullProbe`] every emission site compiles away; the trait stays
/// object-safe for any concrete `P`, so the engine holds a
/// `Box<dyn MemorySystem<P>>`.
pub trait MemorySystem<P: Probe = NullProbe>: std::fmt::Debug + Send {
    /// Submit a transaction at device cycle `now`. `meta` is an opaque tag
    /// handed back in the matching [`Completion`].
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] when the target queue has no free slot.
    fn enqueue(
        &mut self,
        now: u64,
        core: usize,
        addr: u64,
        is_write: bool,
        meta: u64,
    ) -> Result<(), EnqueueError>;

    /// Advance device time to `now`, retiring due transactions into the
    /// completion buffer.
    fn tick(&mut self, now: u64);

    /// Move all buffered completions into `out` (appending, in service
    /// order), leaving the internal buffer empty but with its capacity
    /// intact — the event loop passes one reused buffer so the steady
    /// state allocates nothing.
    fn drain_completions_into(&mut self, out: &mut Vec<Completion>);

    /// Take all buffered completions, in service order. Convenience form
    /// of [`drain_completions_into`](MemorySystem::drain_completions_into)
    /// for callers outside the hot loop.
    fn drain_completions(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain_completions_into(&mut out);
        out
    }

    /// The next cycle at which the device needs attention, if any.
    fn next_event_cycle(&self) -> Option<u64>;

    /// Snapshot of device statistics.
    fn stats(&self) -> DramStats;

    /// Transactions enqueued or in flight (deadlock diagnostics).
    fn pending(&self) -> usize;

    /// The windowed bandwidth trace, when tracing is enabled.
    fn bandwidth_trace(&self) -> Option<BandwidthTrace>;

    /// Commands retired through the steady-state fast-forward path so far
    /// (telemetry only — reported into the process-global counters when
    /// the run's report is assembled). Backends without a fast path
    /// return 0.
    fn fastfwd_commits(&self) -> u64 {
        0
    }

    /// Take the backend's accumulated probe, leaving a fresh default in its
    /// place. The engine merges this into its own probe when the report is
    /// assembled; with [`NullProbe`] the call is free.
    fn take_probe(&mut self) -> P;

    /// Serialize every piece of mutable device state (including the
    /// backend's probe) into `w`, so a restored simulation's memory system
    /// is bit-identical to the snapshotted one.
    fn save_state(&self, w: &mut Writer);

    /// Restore state saved by [`save_state`](MemorySystem::save_state)
    /// into a device built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or shaped for a
    /// different device configuration.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError>;
}

fn save_completions(w: &mut Writer, ready: &[Completion]) {
    w.seq(ready, |w, c| {
        w.u64(c.meta);
        w.usize(c.core);
        w.u64(c.addr);
        w.bool(c.is_write);
        w.u64(c.completed_at);
    });
}

fn load_completions(r: &mut Reader<'_>) -> Result<Vec<Completion>, SnapError> {
    r.seq(|r| {
        Ok(Completion {
            meta: r.u64()?,
            core: r.usize()?,
            addr: r.u64()?,
            is_write: r.bool()?,
            completed_at: r.u64()?,
        })
    })
}

/// The banked FR-FCFS DRAM timing model, adapted to [`MemorySystem`].
#[derive(Debug)]
pub struct DramMemory<P: Probe = NullProbe> {
    dram: Dram,
    ready: Vec<Completion>,
    probe: P,
}

impl DramMemory<NullProbe> {
    /// Wrap an already-configured [`Dram`] device (uninstrumented).
    pub fn new(dram: Dram) -> Self {
        DramMemory::with_probe(dram, NullProbe)
    }

    /// Build the device for `cfg`: total channel count, bandwidth tracing,
    /// and — for non-DRAM-sharing levels — the static channel partition.
    pub fn from_config(cfg: &SystemConfig) -> Self {
        DramMemory::from_config_probed(cfg, NullProbe)
    }
}

impl<P: Probe> DramMemory<P> {
    /// Wrap an already-configured [`Dram`] device, instrumented by `probe`.
    pub fn with_probe(dram: Dram, probe: P) -> Self {
        DramMemory { dram, ready: Vec::new(), probe }
    }

    /// [`DramMemory::from_config`] with an explicit probe.
    pub fn from_config_probed(cfg: &SystemConfig, probe: P) -> Self {
        let mut dram_cfg = cfg.dram.clone();
        dram_cfg.channels = cfg.total_channels();
        let mut dram = Dram::new(dram_cfg);
        if let Some(w) = cfg.trace_window {
            dram.enable_trace(w, cfg.cores);
        }
        if !cfg.sharing.shares_dram() {
            let counts = cfg
                .channel_partition
                .clone()
                .unwrap_or_else(|| vec![cfg.channels_per_core; cfg.cores]);
            for (core, subset) in
                partition_channels(cfg.total_channels(), &counts).into_iter().enumerate()
            {
                dram.set_core_channels(core, subset);
            }
        }
        DramMemory::with_probe(dram, probe)
    }
}

impl<P: Probe> MemorySystem<P> for DramMemory<P> {
    fn enqueue(
        &mut self,
        now: u64,
        core: usize,
        addr: u64,
        is_write: bool,
        meta: u64,
    ) -> Result<(), EnqueueError> {
        self.dram.try_enqueue_probed(now, core, addr, is_write, meta, &mut self.probe)
    }

    fn tick(&mut self, now: u64) {
        self.dram.advance_into_probed(now, &mut self.ready, &mut self.probe);
    }

    fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        // The caller's buffer is normally empty here, so a whole batch —
        // e.g. a fast-forwarded run of row hits — changes hands as one
        // pointer swap instead of a copy.
        if out.is_empty() {
            std::mem::swap(out, &mut self.ready);
        } else {
            out.append(&mut self.ready);
        }
    }

    fn next_event_cycle(&self) -> Option<u64> {
        self.dram.next_event()
    }

    fn stats(&self) -> DramStats {
        self.dram.stats()
    }

    fn pending(&self) -> usize {
        self.dram.pending()
    }

    fn bandwidth_trace(&self) -> Option<BandwidthTrace> {
        self.dram.trace().cloned()
    }

    fn fastfwd_commits(&self) -> u64 {
        self.dram.fastfwd_commits()
    }

    fn take_probe(&mut self) -> P {
        std::mem::take(&mut self.probe)
    }

    fn save_state(&self, w: &mut Writer) {
        w.tag(MEMORY_TAG);
        self.dram.save_state(w);
        save_completions(w, &self.ready);
        self.probe.save_state(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(MEMORY_TAG)?;
        self.dram.load_state(r)?;
        self.ready = load_completions(r)?;
        self.probe.load_state(r)
    }
}

/// Fixed-latency, infinite-bandwidth memory: the service time of every
/// transaction is a constant and requests never queue against each other.
#[derive(Debug)]
pub struct IdealMemory<P: Probe = NullProbe> {
    latency: u64,
    /// In-flight transactions ordered by `(done_at, seq)`; the sequence
    /// number keeps completion order deterministic within a cycle.
    in_flight: BinaryHeap<Reverse<InFlightTxn>>,
    ready: Vec<Completion>,
    seq: u64,
    stats: DramStats,
    trace: Option<BandwidthTrace>,
    /// Held only so [`MemorySystem::take_probe`] has something to hand
    /// back — an ideal memory has no row buffers or queues to report on.
    probe: P,
}

impl IdealMemory<NullProbe> {
    /// A device serving `cores` requesters with a fixed `latency` (DRAM
    /// cycles, clamped to at least 1). `trace_window` enables the windowed
    /// bandwidth trace.
    pub fn new(cores: usize, latency: u64, trace_window: Option<u64>) -> Self {
        IdealMemory::with_probe(cores, latency, trace_window, NullProbe)
    }
}

impl<P: Probe> IdealMemory<P> {
    /// [`IdealMemory::new`] with an explicit probe.
    pub fn with_probe(cores: usize, latency: u64, trace_window: Option<u64>, probe: P) -> Self {
        let stats = DramStats {
            // One pseudo-channel so per-channel consumers see the totals.
            per_channel: vec![Default::default()],
            per_core_bytes: vec![0; cores],
            ..Default::default()
        };
        IdealMemory {
            latency: latency.max(1),
            in_flight: BinaryHeap::new(),
            ready: Vec::new(),
            seq: 0,
            stats,
            trace: trace_window.map(|w| BandwidthTrace::new(w, cores)),
            probe,
        }
    }
}

impl<P: Probe> MemorySystem<P> for IdealMemory<P> {
    fn enqueue(
        &mut self,
        now: u64,
        core: usize,
        addr: u64,
        is_write: bool,
        meta: u64,
    ) -> Result<(), EnqueueError> {
        let done_at = now + self.latency;
        self.in_flight.push(Reverse((done_at, self.seq, core, addr, is_write, meta)));
        self.seq += 1;
        let ch = &mut self.stats.per_channel[0];
        if is_write {
            ch.writes += 1;
        } else {
            ch.reads += 1;
        }
        ch.bytes += TRANSACTION_BYTES;
        ch.latency_sum += self.latency;
        ch.latency_max = ch.latency_max.max(self.latency);
        if let Some(c) = self.stats.per_core_bytes.get_mut(core) {
            *c += TRANSACTION_BYTES;
        }
        Ok(())
    }

    fn tick(&mut self, now: u64) {
        while let Some(&Reverse((done_at, _, core, addr, is_write, meta))) = self.in_flight.peek() {
            if done_at > now {
                break;
            }
            self.in_flight.pop();
            if let Some(t) = &mut self.trace {
                t.record(done_at, core, TRANSACTION_BYTES);
            }
            self.ready.push(Completion { meta, core, addr, is_write, completed_at: done_at });
        }
    }

    fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        if out.is_empty() {
            std::mem::swap(out, &mut self.ready);
        } else {
            out.append(&mut self.ready);
        }
    }

    fn next_event_cycle(&self) -> Option<u64> {
        self.in_flight.peek().map(|&Reverse((done_at, ..))| done_at)
    }

    fn stats(&self) -> DramStats {
        let mut s = self.stats.clone();
        s.total = s.per_channel[0].clone();
        s
    }

    fn pending(&self) -> usize {
        self.in_flight.len() + self.ready.len()
    }

    fn bandwidth_trace(&self) -> Option<BandwidthTrace> {
        self.trace.clone()
    }

    fn take_probe(&mut self) -> P {
        std::mem::take(&mut self.probe)
    }

    fn save_state(&self, w: &mut Writer) {
        w.tag(MEMORY_TAG);
        w.u64(self.latency);
        // The heap as its sorted key multiset: `(done_at, seq)` is unique
        // per entry, so pop order is a pure function of this set.
        let mut items: Vec<InFlightTxn> = self.in_flight.iter().map(|&Reverse(t)| t).collect();
        items.sort_unstable();
        w.seq(&items, |w, &(done_at, seq, core, addr, is_write, meta)| {
            w.u64(done_at);
            w.u64(seq);
            w.usize(core);
            w.u64(addr);
            w.bool(is_write);
            w.u64(meta);
        });
        save_completions(w, &self.ready);
        w.u64(self.seq);
        let ch = &self.stats.per_channel[0];
        for v in [
            ch.reads,
            ch.writes,
            ch.row_hits,
            ch.row_misses,
            ch.row_conflicts,
            ch.busy_cycles,
            ch.bytes,
            ch.latency_sum,
            ch.latency_max,
            ch.refreshes,
        ] {
            w.u64(v);
        }
        w.seq(&self.stats.per_core_bytes, |w, &b| w.u64(b));
        w.opt(&self.trace, |w, t| t.save_state(w));
        self.probe.save_state(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(MEMORY_TAG)?;
        if r.u64()? != self.latency {
            return Err(SnapError::BadValue("ideal memory latency mismatch"));
        }
        let items =
            r.seq(|r| Ok((r.u64()?, r.u64()?, r.usize()?, r.u64()?, r.bool()?, r.u64()?)))?;
        self.in_flight = items.into_iter().map(Reverse).collect();
        self.ready = load_completions(r)?;
        self.seq = r.u64()?;
        let ch = &mut self.stats.per_channel[0];
        ch.reads = r.u64()?;
        ch.writes = r.u64()?;
        ch.row_hits = r.u64()?;
        ch.row_misses = r.u64()?;
        ch.row_conflicts = r.u64()?;
        ch.busy_cycles = r.u64()?;
        ch.bytes = r.u64()?;
        ch.latency_sum = r.u64()?;
        ch.latency_max = r.u64()?;
        ch.refreshes = r.u64()?;
        let per_core = r.seq(|r| r.u64())?;
        if per_core.len() != self.stats.per_core_bytes.len() {
            return Err(SnapError::BadValue("per-core byte counter count mismatch"));
        }
        self.stats.per_core_bytes = per_core;
        let trace = r.opt(BandwidthTrace::load_state)?;
        if trace.is_some() != self.trace.is_some() {
            return Err(SnapError::BadValue("bandwidth trace enablement mismatch"));
        }
        self.trace = trace;
        self.probe.load_state(r)
    }
}

/// Build the backend selected by `cfg.memory`, instrumented by a fresh
/// `P::default()` probe.
pub(crate) fn build_memory<P: Probe>(cfg: &SystemConfig) -> Box<dyn MemorySystem<P>> {
    match cfg.memory {
        MemoryModel::Timing => Box::new(DramMemory::from_config_probed(cfg, P::default())),
        MemoryModel::Ideal { latency } => {
            Box::new(IdealMemory::with_probe(cfg.cores, latency, cfg.trace_window, P::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mem: &mut dyn MemorySystem, until: u64) -> Vec<Completion> {
        let mut all = Vec::new();
        for now in 0..=until {
            mem.tick(now);
            all.extend(mem.drain_completions());
        }
        all
    }

    #[test]
    fn ideal_memory_fixed_latency() {
        let mut mem = IdealMemory::new(2, 10, None);
        mem.enqueue(0, 0, 0x40, false, 7).unwrap();
        mem.enqueue(3, 1, 0x80, true, 8).unwrap();
        assert_eq!(mem.next_event_cycle(), Some(10));
        let done = drive(&mut mem, 20);
        assert_eq!(done.len(), 2);
        assert_eq!((done[0].meta, done[0].completed_at), (7, 10));
        assert_eq!((done[1].meta, done[1].completed_at), (8, 13));
        assert_eq!(mem.pending(), 0);
    }

    #[test]
    fn ideal_memory_never_rejects() {
        let mut mem = IdealMemory::new(1, 5, None);
        for i in 0..10_000u64 {
            assert!(mem.enqueue(0, 0, i * 64, i % 2 == 0, i).is_ok());
        }
        assert_eq!(mem.pending(), 10_000);
        let done = drive(&mut mem, 5);
        assert_eq!(done.len(), 10_000, "infinite bandwidth: all complete together");
    }

    #[test]
    fn ideal_memory_counts_stats() {
        let mut mem = IdealMemory::new(2, 4, Some(8));
        mem.enqueue(0, 0, 0x0, false, 0).unwrap();
        mem.enqueue(0, 1, 0x40, true, 1).unwrap();
        drive(&mut mem, 8);
        let s = mem.stats();
        assert_eq!(s.total.reads, 1);
        assert_eq!(s.total.writes, 1);
        assert_eq!(s.total.bytes, 2 * TRANSACTION_BYTES);
        assert_eq!(s.per_core_bytes, vec![TRANSACTION_BYTES, TRANSACTION_BYTES]);
        let t = mem.bandwidth_trace().expect("tracing enabled");
        assert_eq!(t.total_series().iter().sum::<u64>(), 2 * TRANSACTION_BYTES);
    }
}
