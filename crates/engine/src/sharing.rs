//! The paper's cumulative resource-sharing levels (§4.1.3).

use std::fmt;

/// How the three shareable resources — **D**RAM bandwidth, page-table
/// **W**alkers, and the **T**LB — are distributed among cores.
///
/// Levels are cumulative: `+DW` shares DRAM *and* walkers, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharingLevel {
    /// Each workload monopolizes the *whole* chip's resources, running
    /// alone — the normalization baseline.
    Ideal,
    /// Everything split statically and equally: per-core channels, walkers
    /// and TLBs as in Table 2.
    Static,
    /// DRAM bandwidth shared; walkers and TLBs private.
    PlusD,
    /// DRAM bandwidth and walkers shared; TLBs private.
    PlusDw,
    /// Everything shared (the fully dynamic configuration).
    #[default]
    PlusDwt,
}

impl SharingLevel {
    /// All four co-run levels, in the order the paper plots them
    /// (`Ideal` excluded — it is the baseline, not a co-run configuration).
    pub const CO_RUN_LEVELS: [SharingLevel; 4] =
        [SharingLevel::Static, SharingLevel::PlusD, SharingLevel::PlusDw, SharingLevel::PlusDwt];

    /// `true` when DRAM channels are dynamically shared among cores.
    pub fn shares_dram(self) -> bool {
        !matches!(self, SharingLevel::Static)
    }

    /// `true` when page-table walkers form one shared pool.
    pub fn shares_ptw(self) -> bool {
        matches!(self, SharingLevel::Ideal | SharingLevel::PlusDw | SharingLevel::PlusDwt)
    }

    /// `true` when TLB capacity is shared chip-wide.
    pub fn shares_tlb(self) -> bool {
        matches!(self, SharingLevel::Ideal | SharingLevel::PlusDwt)
    }

    /// The paper's label for this level.
    pub fn label(self) -> &'static str {
        match self {
            SharingLevel::Ideal => "Ideal",
            SharingLevel::Static => "Static",
            SharingLevel::PlusD => "+D",
            SharingLevel::PlusDw => "+DW",
            SharingLevel::PlusDwt => "+DWT",
        }
    }
}

impl fmt::Display for SharingLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Split `total` channels into per-core contiguous subsets with the given
/// per-core counts (the static-partition mechanism of Figs. 9/10).
///
/// # Panics
///
/// Panics if the counts don't sum to `total` or any count is zero.
pub(crate) fn partition_channels(total: usize, counts: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(counts.iter().sum::<usize>(), total, "channel counts must sum to the total");
    assert!(counts.iter().all(|&c| c > 0), "every core needs at least one channel");
    let mut out = Vec::with_capacity(counts.len());
    let mut next = 0;
    for &c in counts {
        out.push((next..next + c).collect());
        next += c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_semantics() {
        use SharingLevel::*;
        assert!(!Static.shares_dram() && !Static.shares_ptw() && !Static.shares_tlb());
        assert!(PlusD.shares_dram() && !PlusD.shares_ptw() && !PlusD.shares_tlb());
        assert!(PlusDw.shares_dram() && PlusDw.shares_ptw() && !PlusDw.shares_tlb());
        assert!(PlusDwt.shares_dram() && PlusDwt.shares_ptw() && PlusDwt.shares_tlb());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SharingLevel::PlusDw.to_string(), "+DW");
        assert_eq!(SharingLevel::Static.label(), "Static");
        assert_eq!(SharingLevel::CO_RUN_LEVELS.len(), 4);
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let p = partition_channels(8, &[1, 7]);
        assert_eq!(p[0], vec![0]);
        assert_eq!(p[1], (1..8).collect::<Vec<_>>());
        let flat: Vec<usize> = p.into_iter().flatten().collect();
        assert_eq!(flat, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "sum to the total")]
    fn partition_must_cover() {
        let _ = partition_channels(8, &[2, 2]);
    }
}
