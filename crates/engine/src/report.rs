//! Simulation output: per-core and chip-level results.

use mnpu_dram::{BandwidthTrace, DramStats};
use mnpu_mmu::MmuStats;

/// What a [`LogEvent`] records (the original's TLB/PTW/DRAM request logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKind {
    /// A TLB lookup that hit.
    TlbHit,
    /// A TLB lookup that missed.
    TlbMiss,
    /// A page-table walk acquired a walker and issued its first access.
    WalkStart,
    /// A walk completed and filled the TLB.
    WalkDone,
    /// A DRAM read transaction's data burst finished.
    DramReadDone,
    /// A DRAM write transaction's data burst finished.
    DramWriteDone,
}

/// One entry of the optional request log (see
/// [`crate::SystemConfig::request_log`]); addresses are virtual for TLB
/// events and physical for walk/DRAM events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEvent {
    /// Global (DRAM-clock) cycle of the event.
    pub cycle: u64,
    /// Core the event belongs to.
    pub core: usize,
    /// Event kind.
    pub kind: LogKind,
    /// Address (virtual for TLB lookups, physical otherwise).
    pub addr: u64,
}

/// Result of one core's workload execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreReport {
    /// Workload (network) name.
    pub workload: String,
    /// Execution cycles in the core's clock domain, from its start cycle to
    /// its last store completion.
    pub cycles: u64,
    /// Cycles the systolic array spent computing.
    pub compute_cycles: u64,
    /// PE utilization over the whole execution:
    /// `MACs / (rows * cols * cycles)`.
    pub pe_utilization: f64,
    /// Data bytes moved to/from DRAM (excludes page-table walk reads).
    pub traffic_bytes: u64,
    /// Page-table walk bytes read from DRAM on behalf of this core.
    pub walk_bytes: u64,
    /// MMU counters (TLB hits/misses, walks, coalescing, walker stalls).
    pub mmu: MmuStats,
    /// Layer-wise execution cycles (global clock): the time between the
    /// previous layer's completion and this layer's last store — the
    /// paper's per-layer `execution_cycle` output.
    pub layer_cycles: Vec<(String, u64)>,
    /// Virtual memory footprint of the workload in bytes (the paper's
    /// `memory_footprint` output).
    pub footprint_bytes: u64,
    /// Cycles this core's transfers spent queued on the on-chip
    /// interconnect (0 when the NoC model is disabled).
    pub noc_queue_cycles: u64,
}

impl CoreReport {
    /// Fraction of execution spent with the array busy vs stalled on memory.
    pub fn compute_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.compute_cycles as f64 / self.cycles as f64
    }
}

/// Result of one multi-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-core results, indexed by core.
    pub cores: Vec<CoreReport>,
    /// Global (DRAM-clock) cycle at which the last core finished.
    pub total_cycles: u64,
    /// DRAM statistics (row hits, latency, per-channel/ per-core bytes).
    pub dram: DramStats,
    /// Windowed bandwidth trace, when enabled in the config.
    pub bandwidth_trace: Option<BandwidthTrace>,
    /// Request log (empty unless [`crate::SystemConfig::request_log`] was
    /// set). Ordered by cycle; TLB entries log the lookup address, walk and
    /// DRAM entries log physical addresses.
    pub request_log: Vec<LogEvent>,
    /// `true` when [`crate::SystemConfig::request_log_cap`] forced the log
    /// ring buffer to drop its oldest entries.
    pub request_log_truncated: bool,
    /// Observability aggregates (stall breakdowns, contention counters,
    /// latency histograms, tile-phase spans). `None` unless the run used
    /// [`crate::ProbeMode::Stats`].
    pub stats: Option<mnpu_probe::StatsReport>,
}

impl RunReport {
    /// Execution cycles of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cycles(&self, core: usize) -> u64 {
        self.cores[core].cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_fraction_bounds() {
        let r = CoreReport {
            workload: "x".into(),
            cycles: 100,
            compute_cycles: 40,
            pe_utilization: 0.5,
            traffic_bytes: 0,
            walk_bytes: 0,
            mmu: MmuStats::default(),
            layer_cycles: Vec::new(),
            footprint_bytes: 0,
            noc_queue_cycles: 0,
        };
        assert!((r.compute_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_fraction_is_zero() {
        let r = CoreReport {
            workload: "x".into(),
            cycles: 0,
            compute_cycles: 0,
            pe_utilization: 0.0,
            traffic_bytes: 0,
            walk_bytes: 0,
            mmu: MmuStats::default(),
            layer_cycles: Vec::new(),
            footprint_bytes: 0,
            noc_queue_cycles: 0,
        };
        assert_eq!(r.compute_fraction(), 0.0);
    }
}

/// NPU-side energy parameters in femtojoules (the DRAM side comes from
/// [`mnpu_dram::DramEnergy`]). Defaults are order-of-magnitude figures for
/// a 7 nm-class fp16 design (≈1 pJ per MAC, ≈0.1 pJ/bit per SPM access);
/// swap in silicon numbers for absolute studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnergyModel {
    /// Energy per multiply-accumulate (fJ).
    pub mac_fj: u64,
    /// Energy per byte moved through the SPM (fJ), counted once on fill and
    /// once on drain.
    pub spm_fj_per_byte: u64,
    /// DRAM operation energies.
    pub dram: mnpu_dram::DramEnergy,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel { mac_fj: 1000, spm_fj_per_byte: 800, dram: mnpu_dram::DramEnergy::hbm2() }
    }
}

/// Chip-level energy estimate, from [`RunReport::estimate_energy`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChipEnergy {
    /// Per-core MAC energy in nanojoules.
    pub compute_nj: Vec<f64>,
    /// Per-core SPM access energy in nanojoules.
    pub spm_nj: Vec<f64>,
    /// DRAM energy breakdown (activation/read/write/refresh/background).
    pub dram: mnpu_dram::EnergyBreakdown,
}

impl ChipEnergy {
    /// Total chip energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.compute_nj.iter().sum::<f64>() + self.spm_nj.iter().sum::<f64>() + self.dram.total_nj()
    }
}

impl RunReport {
    /// Estimate whole-chip energy for this run. The DRAM portion is derived
    /// from the run's DRAM statistics; compute/SPM portions from per-core
    /// MAC counts and traffic. Post-hoc — simulation pays nothing.
    pub fn estimate_energy(&self, config: &crate::SystemConfig, model: &EnergyModel) -> ChipEnergy {
        let compute_nj = self
            .cores
            .iter()
            .zip(&config.arch)
            .map(|(c, a)| {
                let macs = c.pe_utilization * (a.rows * a.cols * c.cycles) as f64;
                macs * model.mac_fj as f64 * 1e-6
            })
            .collect();
        let spm_nj = self
            .cores
            .iter()
            .map(|c| (2 * c.traffic_bytes) as f64 * model.spm_fj_per_byte as f64 * 1e-6)
            .collect();
        let mut dram_cfg = config.dram.clone();
        dram_cfg.channels = config.total_channels();
        let dram =
            mnpu_dram::estimate_energy(&self.dram, &dram_cfg, &model.dram, self.total_cycles);
        ChipEnergy { compute_nj, spm_nj, dram }
    }
}
