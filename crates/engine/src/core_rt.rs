//! Per-core runtime: the double-buffered tile pipeline over a flattened
//! tile list, and its progression rules.

use crate::sim::Simulation;
use crate::stage::{span_txns, Stage};
use mnpu_probe::{Event, Phase, Probe};
use mnpu_systolic::WorkloadTrace;

/// Per-core pipeline state over the flattened tile list.
#[derive(Debug)]
pub(crate) struct CoreRt {
    pub(crate) trace: WorkloadTrace,
    pub(crate) flat_tiles: Vec<(usize, usize)>,
    /// Store transactions still outstanding per layer (this iteration) —
    /// the cross-layer RAW barrier.
    pub(crate) layer_store_remaining: Vec<u64>,
    pub(crate) layer_store_total: Vec<u64>,
    /// Global cycle at which each layer retired its last store (final
    /// iteration) — the paper's layer-wise execution-cycle output.
    pub(crate) layer_finish: Vec<u64>,
    pub(crate) tile_loaded: Vec<bool>,
    pub(crate) next_load: usize,
    pub(crate) next_compute: usize,
    pub(crate) computed: usize,
    pub(crate) load_stage: Option<usize>,
    pub(crate) active_stores: Vec<usize>,
    pub(crate) computing: Option<(usize, u64)>,
    pub(crate) outstanding: usize,
    pub(crate) iter: u64,
    pub(crate) start_cycle: u64,
    pub(crate) finished_at: Option<u64>,
    pub(crate) compute_cycles_total: u64,
    pub(crate) data_txns: u64,
    pub(crate) walk_txns: u64,
    pub(crate) blocked_on_dram: bool,
    /// Set whenever an external event (a data completion) may have
    /// unblocked the pipeline; cleared after a full `progress_core` pass.
    /// Between the two, `progress_core` is a guaranteed no-op unless a
    /// running compute has retired — which the wake check tests directly —
    /// so the event loop skips the call entirely.
    pub(crate) needs_progress: bool,
}

impl CoreRt {
    pub(crate) fn new(trace: WorkloadTrace, start_cycle: u64) -> Self {
        let mut flat = Vec::new();
        let mut store_total = vec![0u64; trace.layers().len()];
        for (li, l) in trace.layers().iter().enumerate() {
            for (ti, tile) in l.tiles.iter().enumerate() {
                flat.push((li, ti));
                store_total[li] += tile.stores.iter().map(span_txns).sum::<u64>();
            }
        }
        let n = flat.len();
        CoreRt {
            trace,
            flat_tiles: flat,
            layer_finish: vec![0; store_total.len()],
            layer_store_remaining: store_total.clone(),
            layer_store_total: store_total,
            tile_loaded: vec![false; n],
            next_load: 0,
            next_compute: 0,
            computed: 0,
            load_stage: None,
            active_stores: Vec::new(),
            computing: None,
            outstanding: 0,
            iter: 0,
            start_cycle,
            finished_at: None,
            compute_cycles_total: 0,
            data_txns: 0,
            walk_txns: 0,
            blocked_on_dram: false,
            needs_progress: true,
        }
    }

    /// The state of a core with nothing bound to it: the empty workload,
    /// already finished at cycle 0 with no wake condition. Every event-loop
    /// path (progress, issue, next-event scan) skips finished cores, so a
    /// vacant core generates no events and costs nothing.
    pub(crate) fn vacant() -> Self {
        let mut rt = CoreRt::new(WorkloadTrace::empty(), 0);
        rt.finished_at = Some(0);
        rt.needs_progress = false;
        rt
    }

    pub(crate) fn tile(&self, flat: usize) -> &mnpu_systolic::Tile {
        let (l, t) = self.flat_tiles[flat];
        &self.trace.layers()[l].tiles[t]
    }

    pub(crate) fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// `true` when every layer before `layer` has retired all its stores.
    pub(crate) fn barrier_open(&self, layer: usize) -> bool {
        self.layer_store_remaining[..layer].iter().all(|&r| r == 0)
    }

    pub(crate) fn reset_for_next_iteration(&mut self) {
        self.layer_store_remaining = self.layer_store_total.clone();
        self.tile_loaded.iter_mut().for_each(|b| *b = false);
        self.next_load = 0;
        self.next_compute = 0;
        self.computed = 0;
        self.iter += 1;
    }
}

impl<P: Probe> Simulation<P> {
    /// Advance core `ci`'s pipeline as far as the current cycle allows:
    /// retire a finished compute, start the next compute, open the next
    /// load stage (double buffering, gated by the cross-layer store
    /// barrier), and handle iteration / workload completion.
    pub(crate) fn progress_core(&mut self, ci: usize) {
        if self.cores[ci].finished() || self.cores[ci].start_cycle > self.now {
            // Not started yet: leave `needs_progress` set so the first
            // pass at/after `start_cycle` runs unconditionally.
            return;
        }
        // The pass below runs to a fixpoint, so afterwards only a new
        // external event (tracked by `needs_progress`) or a compute
        // retirement at a later cycle can enable further progress.
        self.cores[ci].needs_progress = false;
        loop {
            let mut made_progress = false;

            // Compute completion.
            if let Some((flat, done_at)) = self.cores[ci].computing {
                if done_at <= self.now {
                    self.cores[ci].computing = None;
                    self.cores[ci].computed = flat + 1;
                    if P::ENABLED {
                        self.probe.record(
                            self.now,
                            Event::PhaseEnd { core: ci, phase: Phase::Compute, id: flat as u64 },
                        );
                    }
                    let (layer, _) = self.cores[ci].flat_tiles[flat];
                    let stores = self.cores[ci].tile(flat).stores.clone();
                    if !stores.is_empty() {
                        let id = self.stages.len();
                        self.stages.push(Stage::new(ci, layer, flat, true, stores));
                        self.cores[ci].active_stores.push(id);
                        if P::ENABLED {
                            self.probe.record(
                                self.now,
                                Event::PhaseBegin {
                                    core: ci,
                                    phase: Phase::Store,
                                    id: flat as u64,
                                },
                            );
                        }
                    }
                    made_progress = true;
                }
            }

            // Compute start.
            if self.cores[ci].computing.is_none() {
                let flat = self.cores[ci].next_compute;
                if flat < self.cores[ci].flat_tiles.len() && self.cores[ci].tile_loaded[flat] {
                    let cycles = self.cores[ci].tile(flat).compute_cycles;
                    let dur = self.to_global(ci, cycles);
                    self.cores[ci].computing = Some((flat, self.now + dur.max(1)));
                    self.cores[ci].next_compute = flat + 1;
                    self.cores[ci].compute_cycles_total += cycles;
                    if P::ENABLED {
                        self.probe.record(
                            self.now,
                            Event::PhaseBegin { core: ci, phase: Phase::Compute, id: flat as u64 },
                        );
                    }
                    made_progress = true;
                }
            }

            // Load-stage creation (double buffering: at most one tile ahead
            // of compute, gated by the cross-layer store barrier).
            if self.cores[ci].load_stage.is_none() {
                let flat = self.cores[ci].next_load;
                let rt = &self.cores[ci];
                if flat < rt.flat_tiles.len() && flat <= rt.next_compute {
                    let (layer, _) = rt.flat_tiles[flat];
                    if rt.barrier_open(layer) {
                        let loads = rt.tile(flat).loads.clone();
                        let id = self.stages.len();
                        let stage = Stage::new(ci, layer, flat, false, loads);
                        let rt = &mut self.cores[ci];
                        if stage.total == 0 {
                            // No transactions: nothing observable happens,
                            // so no Load span is opened either.
                            rt.tile_loaded[flat] = true;
                        } else {
                            rt.load_stage = Some(id);
                            self.stages.push(stage);
                            if P::ENABLED {
                                self.probe.record(
                                    self.now,
                                    Event::PhaseBegin {
                                        core: ci,
                                        phase: Phase::Load,
                                        id: flat as u64,
                                    },
                                );
                            }
                        }
                        rt.next_load = flat + 1;
                        made_progress = true;
                    }
                }
            }

            // Iteration / workload completion.
            {
                let rt = &self.cores[ci];
                if rt.computing.is_none()
                    && rt.computed == rt.flat_tiles.len()
                    && rt.active_stores.is_empty()
                    && rt.layer_store_remaining.iter().all(|&r| r == 0)
                    && rt.load_stage.is_none()
                    && !rt.finished()
                {
                    if rt.iter + 1 < self.cfg.iterations {
                        self.cores[ci].reset_for_next_iteration();
                        made_progress = true;
                    } else {
                        self.cores[ci].finished_at = Some(self.now);
                    }
                }
            }

            if !made_progress {
                break;
            }
        }
    }

    /// `true` when `progress_core(ci)` could do anything at the current
    /// cycle: an external event arrived since the last pass, or the
    /// running compute has retired.
    pub(crate) fn core_woken(&self, ci: usize) -> bool {
        let rt = &self.cores[ci];
        if rt.finished() {
            return false;
        }
        rt.needs_progress || rt.computing.is_some_and(|(_, done_at)| done_at <= self.now)
    }

    /// [`Simulation::progress_core`], skipped when the core has no wake
    /// condition — the common case for compute-bound cores between events.
    pub(crate) fn progress_core_if_woken(&mut self, ci: usize) {
        if self.core_woken(ci) {
            self.progress_core(ci);
        }
    }
}
