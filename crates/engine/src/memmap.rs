//! Per-core physical memory: frame allocation and the virtual→physical map.
//!
//! Each core owns an equal slice of the chip's DRAM capacity (Table 2's
//! "capacity per NPU"). The top of the slice is reserved for the core's
//! page-table region (walk reads scatter there); the rest is a frame pool
//! allocated on first touch.

use mnpu_mmu::FxHashMap;

/// One core's page table: allocates physical frames on demand and maps
/// virtual pages to them.
///
/// This is the *mapping* half of translation; the MMU crate models the
/// *timing* half (TLB hits, walk latency). Frames are handed out linearly,
/// like a fresh NPU arena allocator.
///
/// ```
/// use mnpu_engine::PageTable;
///
/// let mut pt = PageTable::new(0x1000_0000, 64 << 20, 4096, 1 << 20);
/// let pa = pt.translate(0x5000_0123);
/// assert_eq!(pa % 4096, 0x123); // page offset preserved
/// assert_eq!(pt.translate(0x5000_0123), pa); // stable mapping
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    phys_base: u64,
    page_bytes: u64,
    frames: u64,
    next_frame: u64,
    /// Deterministic fast hasher: the map is probed once per transaction,
    /// and SipHash was measurable in sweep profiles (see
    /// [`mnpu_mmu::FxHasher`]).
    map: FxHashMap<u64, u64>,
    pt_region_base: u64,
}

impl PageTable {
    /// Create a page table owning `capacity` physical bytes at `phys_base`;
    /// the top `pt_region_bytes` are reserved for page-table storage.
    ///
    /// # Panics
    ///
    /// Panics if the page size is zero or the capacity cannot hold the
    /// page-table region plus at least one frame.
    pub fn new(phys_base: u64, capacity: u64, page_bytes: u64, pt_region_bytes: u64) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        assert!(
            capacity > pt_region_bytes + page_bytes,
            "capacity {capacity} too small for page tables + one frame"
        );
        let usable = capacity - pt_region_bytes;
        PageTable {
            phys_base,
            page_bytes,
            frames: usable / page_bytes,
            next_frame: 0,
            map: FxHashMap::default(),
            pt_region_base: phys_base + usable,
        }
    }

    /// Physical base of the reserved page-table region (walk reads target
    /// addresses within it).
    pub fn pt_region_base(&self) -> u64 {
        self.pt_region_base
    }

    /// Translate a virtual address, allocating a frame on first touch.
    ///
    /// # Panics
    ///
    /// Panics when the core's physical capacity is exhausted (the workload
    /// footprint must fit its DRAM slice).
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        let vpn = vaddr / self.page_bytes;
        let offset = vaddr % self.page_bytes;
        let frame = match self.map.get(&vpn) {
            Some(&f) => f,
            None => {
                assert!(
                    self.next_frame < self.frames,
                    "physical capacity exhausted: {} frames of {} bytes",
                    self.frames,
                    self.page_bytes
                );
                let f = self.next_frame;
                self.next_frame += 1;
                self.map.insert(vpn, f);
                f
            }
        };
        self.phys_base + frame * self.page_bytes + offset
    }

    /// Number of frames allocated so far.
    pub fn allocated_frames(&self) -> u64 {
        self.next_frame
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total frames available to this core.
    pub fn capacity_frames(&self) -> u64 {
        self.frames
    }

    /// Serialize the mutable mapping state (allocation cursor plus the
    /// virtual→frame map, in sorted VPN order so equal tables produce equal
    /// bytes). The geometry (base, page size, capacity) is excluded:
    /// restore targets a table built from the same configuration.
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.u64(self.next_frame);
        let mut entries: Vec<(u64, u64)> = self.map.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        w.seq(&entries, |w, &(vpn, frame)| {
            w.u64(vpn);
            w.u64(frame);
        });
    }

    /// Restore state saved by [`PageTable::save_state`].
    ///
    /// # Errors
    ///
    /// [`mnpu_snapshot::SnapError`] when the payload is malformed or the
    /// allocation state exceeds this table's capacity.
    pub fn load_state(
        &mut self,
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<(), mnpu_snapshot::SnapError> {
        let next_frame = r.u64()?;
        if next_frame > self.frames {
            return Err(mnpu_snapshot::SnapError::BadValue("page table overflows capacity"));
        }
        let entries = r.seq(|r| Ok((r.u64()?, r.u64()?)))?;
        if entries.len() as u64 != next_frame {
            return Err(mnpu_snapshot::SnapError::BadValue("page table map/cursor mismatch"));
        }
        self.next_frame = next_frame;
        self.map = entries.into_iter().collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(1 << 30, 64 << 20, 4096, 1 << 20)
    }

    #[test]
    fn mapping_is_stable_and_offset_preserving() {
        let mut p = pt();
        let a = p.translate(0x1234_5678);
        assert_eq!(a, p.translate(0x1234_5678));
        assert_eq!(a % 4096, 0x678);
    }

    #[test]
    fn same_page_same_frame() {
        let mut p = pt();
        let a = p.translate(0x1000_0000);
        let b = p.translate(0x1000_0fff);
        assert_eq!(a / 4096, b / 4096);
        assert_eq!(p.allocated_frames(), 1);
    }

    #[test]
    fn distinct_pages_distinct_frames() {
        let mut p = pt();
        let a = p.translate(0x1000_0000);
        let b = p.translate(0x1000_1000);
        assert_ne!(a / 4096, b / 4096);
        assert_eq!(p.allocated_frames(), 2);
    }

    #[test]
    fn frames_stay_inside_partition() {
        let base = 1u64 << 30;
        let cap = 64 << 20;
        let mut p = PageTable::new(base, cap, 4096, 1 << 20);
        for i in 0..1000u64 {
            let a = p.translate(i * 4096 * 7 + 5);
            assert!(a >= base && a < base + cap - (1 << 20));
        }
        assert!(p.pt_region_base() >= base + cap - (1 << 20));
    }

    #[test]
    fn large_pages_fewer_frames() {
        let mut small = PageTable::new(0, 256 << 20, 4096, 1 << 20);
        let mut large = PageTable::new(0, 256 << 20, 1 << 20, 1 << 20);
        for i in 0..64u64 {
            let v = i * 65536;
            small.translate(v);
            large.translate(v);
        }
        assert!(large.allocated_frames() < small.allocated_frames());
    }

    #[test]
    #[should_panic(expected = "physical capacity exhausted")]
    fn exhaustion_panics() {
        let mut p = PageTable::new(0, 3 * 4096 + 1024, 4096, 0);
        for i in 0..10u64 {
            let _ = p.translate(i * 4096);
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_capacity_rejected() {
        let _ = PageTable::new(0, 4096, 4096, 0);
    }
}
