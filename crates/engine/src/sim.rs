//! The event-driven multi-core simulation loop.
//!
//! The loop itself lives here; the moving parts it coordinates are split
//! into sibling modules: [`crate::stage`] (DMA burst expansion),
//! [`crate::core_rt`] (the per-core tile pipeline), [`crate::arbiter`]
//! (round-robin issue order and walker grants) and [`crate::memory`] (the
//! pluggable [`MemorySystem`] backends).

use crate::arbiter::Arbiter;
use crate::core_rt::CoreRt;
use crate::memmap::PageTable;
use crate::memory::{build_memory, MemorySystem};
use crate::report::{CoreReport, LogEvent, LogKind, RunReport};
use crate::stage::Stage;
use crate::system::{ProbeMode, SystemConfig};
use mnpu_dram::{Completion, TRANSACTION_BYTES};
use mnpu_mmu::{Mmu, WalkStep};
use mnpu_model::Network;
use mnpu_probe::{CoreState, Event, NullProbe, Phase, Probe, StatsProbe};
use mnpu_systolic::WorkloadTrace;
use mnpu_trace::FlightProbe;
use std::collections::{BTreeMap, VecDeque};

use mnpu_dram::MonotonicQueue;

/// Tag bit distinguishing page-table walk reads from data transactions.
pub(crate) const META_WALK: u64 = 1 << 63;

/// A request in flight on the interconnect: (arrival, core, paddr, is_write, meta).
pub(crate) type NocRequest = (u64, usize, u64, bool, u64);

/// The request log: optionally a bounded ring buffer. With a cap, the
/// *oldest* entries are dropped once full and `truncated` is latched, so a
/// long run keeps the most recent window instead of growing without bound.
#[derive(Debug)]
pub(crate) struct RequestLog {
    pub(crate) events: VecDeque<LogEvent>,
    pub(crate) cap: Option<usize>,
    pub(crate) truncated: bool,
}

impl RequestLog {
    fn new(cap: Option<usize>) -> Self {
        RequestLog { events: VecDeque::new(), cap, truncated: false }
    }

    fn push(&mut self, e: LogEvent) {
        if let Some(cap) = self.cap {
            if cap == 0 {
                self.truncated = true;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.truncated = true;
            }
        }
        self.events.push_back(e);
    }
}

/// An event-driven simulation of one multi-core NPU chip executing one
/// workload per core.
///
/// Most callers use [`Simulation::run_traces`] / [`Simulation::run_networks`],
/// which pick the probe from [`SystemConfig::probe`]; the struct itself is
/// exposed for step-wise debugging. The state is `Send`, so whole
/// simulations can be farmed out to worker threads (each simulation is
/// still single-threaded and deterministic).
///
/// `P` is the observability probe threaded through every subsystem. The
/// default [`NullProbe`] has `ENABLED = false`, so all emission sites
/// (`if P::ENABLED { ... }`) constant-fold away and the instrumented build
/// is bit- and speed-identical to the uninstrumented one.
#[derive(Debug)]
pub struct Simulation<P: Probe = NullProbe> {
    pub(crate) cfg: SystemConfig,
    pub(crate) memory: Box<dyn MemorySystem<P>>,
    pub(crate) mmu: Option<Mmu>,
    pub(crate) page_tables: Vec<PageTable>,
    pub(crate) cores: Vec<CoreRt>,
    pub(crate) stages: Vec<Stage>,
    /// Transactions parked on each in-flight walk: raw walk id →
    /// `(stage, vaddr)` list. A `BTreeMap` so any future iteration is in
    /// deterministic key order by construction — replay determinism must
    /// not hinge on which accessor someone reaches for.
    pub(crate) walk_waiters: BTreeMap<u64, Vec<(usize, u64)>>,
    pub(crate) arbiter: Arbiter,
    pub(crate) log: Option<RequestLog>,
    pub(crate) probe: P,
    pub(crate) noc: Option<mnpu_noc::Crossbar>,
    /// Requests in flight on the interconnect. Lane = producing core: each
    /// crossbar request link hands out nondecreasing delivery times, so
    /// pushes are `O(1)` ring-buffer appends (see [`MonotonicQueue`]).
    pub(crate) noc_requests: MonotonicQueue<NocRequest>,
    /// Responses in flight back to cores: (arrival, meta, core). Lane =
    /// destination core, matching the per-core response links.
    pub(crate) noc_responses: MonotonicQueue<(u64, u64, usize)>,
    /// Reused buffer for draining memory completions each loop iteration.
    /// Always drained back to empty within [`Simulation::pump`], which is
    /// why snapshots may skip it.
    pub(crate) completion_buf: Vec<Completion>,
    /// Shadow MMUs mirroring the primary's call sequence for warm-start
    /// prefix sharing (`None` outside prefix-shared sweeps; see
    /// [`crate::shadow`]).
    pub(crate) shadows: Option<crate::shadow::ShadowMmus>,
    /// Recycled waiter vectors for `walk_waiters`: registration on
    /// walk-heavy configs (4 KB pages) parks transactions every few cycles,
    /// and each parking used to allocate a fresh `Vec`. Mirrors the
    /// arbiter's `retry_scratch` reuse pattern.
    pub(crate) waiter_pool: Vec<Vec<(usize, u64)>>,
    pub(crate) now: u64,
    /// Whether the current cycle has already had its fixpoint pass
    /// ([`Simulation::pump`]). Stepping via [`Simulation::advance`] must
    /// not pump the same cycle twice unless a new binding demands it: a
    /// redundant pass would rotate the round-robin arbiter and perturb an
    /// otherwise identical run.
    pub(crate) pumped: bool,
    /// Which cores' finishes have been surfaced through
    /// [`Advance::CoreFinished`] — each is reported exactly once.
    pub(crate) finish_reported: Vec<bool>,
}

/// What stopped a [`Simulation::advance`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// A core ran its bound workload to completion. Each finish is
    /// reported exactly once; the core is then free for
    /// [`Simulation::attach`].
    CoreFinished {
        /// The newly free core.
        core: usize,
        /// Global cycle the workload finished at.
        at: u64,
    },
    /// The next internal event lies beyond `stop_at`; the clock was moved
    /// to exactly `stop_at` so the caller can act there (e.g. admit a job
    /// arrival).
    Parked,
    /// Every core is finished or vacant and all finishes have been
    /// reported: nothing is left to simulate at any future cycle.
    Drained,
}

/// Build the MMU for `cfg` (when translation is enabled), deriving the
/// sharing-level flags and per-core page-table bases exactly as the
/// simulation constructor does. Shadow MMUs for warm-start prefix sharing
/// ([`Simulation::add_shadow_config`]) go through this same path so a
/// shadow is indistinguishable from the MMU a native run would build.
pub(crate) fn build_mmu(cfg: &SystemConfig, page_tables: &[PageTable]) -> Option<Mmu> {
    cfg.translation.then(|| {
        let mut m = cfg.mmu.clone();
        m.tlb_shared = cfg.sharing.shares_tlb();
        m.ptw_shared = cfg.sharing.shares_ptw();
        m.ptw_partition = if m.ptw_shared { None } else { cfg.ptw_partition.clone() };
        m.ptw_bounds = cfg.ptw_bounds.clone();
        let bases: Vec<u64> = page_tables.iter().map(PageTable::pt_region_base).collect();
        Mmu::new(m, cfg.cores, &bases)
    })
}

impl Simulation<NullProbe> {
    /// Build an uninstrumented simulation of `cfg` executing `traces[c]` on
    /// core `c`. (This constructor always uses [`NullProbe`] regardless of
    /// [`SystemConfig::probe`]; use [`Simulation::run_traces`] or
    /// [`Simulation::with_probe`] for instrumented runs.)
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace count does not
    /// match the core count.
    pub fn new(cfg: &SystemConfig, traces: &[WorkloadTrace]) -> Self {
        Simulation::with_probe(cfg, traces, NullProbe)
    }

    /// Run `traces` to completion with the probe selected by
    /// [`SystemConfig::probe`]: [`ProbeMode::None`] runs the zero-cost
    /// [`NullProbe`] build, [`ProbeMode::Stats`] runs [`StatsProbe`] and
    /// fills [`RunReport::stats`].
    ///
    /// This is the engine's canonical batch entry point. The
    /// `mnpusim::RunRequest` facade routes here; the retired
    /// `run_traces` / `run_networks` / `run_fleet` trio are shims over it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::new`].
    pub fn execute(cfg: &SystemConfig, traces: &[WorkloadTrace]) -> RunReport {
        match cfg.probe {
            ProbeMode::None => Simulation::with_probe(cfg, traces, NullProbe).run(),
            ProbeMode::Stats => Simulation::with_probe(cfg, traces, StatsProbe::default()).run(),
            ProbeMode::Flight => {
                Simulation::with_probe(cfg, traces, FlightProbe::<NullProbe>::default()).run()
            }
        }
    }

    /// Convenience over [`Simulation::execute`]: generate traces for
    /// `networks` with each core's [`mnpu_systolic::ArchConfig`] first.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::new`].
    pub fn execute_networks(cfg: &SystemConfig, networks: &[Network]) -> RunReport {
        assert_eq!(networks.len(), cfg.cores, "one network per core");
        let traces: Vec<WorkloadTrace> =
            networks.iter().zip(&cfg.arch).map(|(n, a)| WorkloadTrace::generate(n, a)).collect();
        Simulation::execute(cfg, &traces)
    }

    /// [`Simulation::execute`], but checkpointed at cycle `at`: drive to
    /// `at`, snapshot, restore the snapshot into a *freshly built*
    /// simulation, and finish the run there.
    ///
    /// Stepping a fresh simulation with [`Simulation::advance`]`(u64::MAX)`
    /// until [`Advance::Drained`] performs exactly the same pump/advance
    /// sequence as [`Simulation::run`], and restore reinstates every bit of
    /// mutable state, so the returned report is byte-identical to
    /// [`Simulation::execute`] for every `at` — the lockstep property the
    /// validation suite fences.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::new`], or if the
    /// engine produced a snapshot its twin refuses to restore (a bug).
    pub fn execute_checkpointed(
        cfg: &SystemConfig,
        traces: &[WorkloadTrace],
        at: u64,
    ) -> RunReport {
        fn drive<P: Probe>(sim: &mut Simulation<P>, stop_at: u64) {
            while let Advance::CoreFinished { .. } = sim.advance(stop_at) {}
        }
        fn checkpointed<P: Probe>(
            cfg: &SystemConfig,
            traces: &[WorkloadTrace],
            at: u64,
        ) -> RunReport {
            let mut sim = Simulation::with_probe(cfg, traces, P::default());
            drive(&mut sim, at);
            let snap = sim.snapshot();
            drop(sim);
            let mut resumed = Simulation::with_probe(cfg, traces, P::default());
            resumed.restore(&snap).expect("snapshot restores into its twin");
            drive(&mut resumed, u64::MAX);
            resumed.into_report()
        }
        match cfg.probe {
            ProbeMode::None => checkpointed::<NullProbe>(cfg, traces, at),
            ProbeMode::Stats => checkpointed::<StatsProbe>(cfg, traces, at),
            ProbeMode::Flight => checkpointed::<FlightProbe<NullProbe>>(cfg, traces, at),
        }
    }

    /// Run `traces` to completion with the probe selected by
    /// [`SystemConfig::probe`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::new`].
    #[deprecated(
        since = "0.1.0",
        note = "use Simulation::execute or the mnpusim::RunRequest facade"
    )]
    pub fn run_traces(cfg: &SystemConfig, traces: &[WorkloadTrace]) -> RunReport {
        Simulation::execute(cfg, traces)
    }

    /// Convenience: generate traces for `networks` with each core's
    /// [`mnpu_systolic::ArchConfig`] and run to completion with the probe
    /// selected by [`SystemConfig::probe`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::new`].
    #[deprecated(
        since = "0.1.0",
        note = "use Simulation::execute_networks or the mnpusim::RunRequest facade"
    )]
    pub fn run_networks(cfg: &SystemConfig, networks: &[Network]) -> RunReport {
        Simulation::execute_networks(cfg, networks)
    }

    /// Run a fleet of independent chips (the paper's §4.6 system of
    /// multiple multi-core NPUs): `assignments[i]` holds chip *i*'s
    /// workloads, one per core. Chips share nothing, so each runs as its
    /// own simulation; reports come back in chip order.
    ///
    /// # Panics
    ///
    /// Panics if any assignment's length differs from `cfg.cores`.
    #[deprecated(since = "0.1.0", note = "use the mnpusim::RunRequest facade's fleet mode")]
    pub fn run_fleet(cfg: &SystemConfig, assignments: &[Vec<Network>]) -> Vec<RunReport> {
        assignments
            .iter()
            .map(|nets| {
                assert_eq!(nets.len(), cfg.cores, "one network per core");
                let traces: Vec<WorkloadTrace> = nets
                    .iter()
                    .zip(&cfg.arch)
                    .map(|(n, a)| WorkloadTrace::generate(n, a))
                    .collect();
                Simulation::execute(cfg, &traces)
            })
            .collect()
    }

    /// Build an uninstrumented simulation with every core vacant — the
    /// starting point for serve mode, where workloads are bound later with
    /// [`Simulation::attach`] as jobs are dispatched.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new_idle(cfg: &SystemConfig) -> Self {
        Simulation::with_probe_idle(cfg, NullProbe)
    }
}

impl<P: Probe> Simulation<P> {
    /// Build a simulation instrumented by `probe`; the memory backend gets
    /// its own `P::default()` probe, merged into this one at report time.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace count does not
    /// match the core count.
    pub fn with_probe(cfg: &SystemConfig, traces: &[WorkloadTrace], probe: P) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one workload trace per core");
        let cores = traces
            .iter()
            .enumerate()
            .map(|(c, t)| {
                let start = cfg.start_cycles.get(c).copied().unwrap_or(0);
                CoreRt::new(t.clone(), start)
            })
            .collect();
        Simulation::build(cfg, cores, vec![false; cfg.cores], probe)
    }

    /// [`Simulation::new_idle`] with an explicit probe: every core starts
    /// vacant (already finished, finish pre-reported) and waits for an
    /// [`Simulation::attach`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_probe_idle(cfg: &SystemConfig, probe: P) -> Self {
        let cores = (0..cfg.cores).map(|_| CoreRt::vacant()).collect();
        Simulation::build(cfg, cores, vec![true; cfg.cores], probe)
    }

    fn build(cfg: &SystemConfig, cores: Vec<CoreRt>, finish_reported: Vec<bool>, probe: P) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system config: {e}");
        }

        let memory = build_memory::<P>(cfg);

        let cap = cfg.capacity_per_core();
        let page_tables: Vec<PageTable> = (0..cfg.cores)
            .map(|c| {
                PageTable::new(c as u64 * cap, cap, cfg.mmu.page_bytes, cfg.mmu.pt_region_bytes)
            })
            .collect();

        let mmu = build_mmu(cfg, &page_tables);

        Simulation {
            memory,
            mmu,
            page_tables,
            cores,
            stages: Vec::new(),
            walk_waiters: BTreeMap::new(),
            arbiter: Arbiter::new(cfg.cores),
            log: cfg.request_log.then(|| RequestLog::new(cfg.request_log_cap)),
            probe,
            noc: cfg.noc.as_ref().map(|n| mnpu_noc::Crossbar::new(n, cfg.cores)),
            noc_requests: MonotonicQueue::new(cfg.cores),
            noc_responses: MonotonicQueue::new(cfg.cores),
            completion_buf: Vec::new(),
            shadows: None,
            waiter_pool: Vec::new(),
            now: 0,
            pumped: false,
            finish_reported,
            cfg: cfg.clone(),
        }
    }

    /// Convert `cycles` in core `c`'s clock domain to global (DRAM) cycles.
    pub(crate) fn to_global(&self, core: usize, cycles: u64) -> u64 {
        let f = self.cfg.arch[core].freq_mhz as u128;
        let g = self.cfg.dram.freq_mhz as u128;
        ((cycles as u128 * g).div_ceil(f)) as u64
    }

    /// Convert global cycles to core `c`'s clock domain.
    fn to_core(&self, core: usize, cycles: u64) -> u64 {
        let f = self.cfg.arch[core].freq_mhz as u128;
        let g = self.cfg.dram.freq_mhz as u128;
        ((cycles as u128 * f).div_ceil(g)) as u64
    }

    /// Run the simulation to completion and produce the report.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (a bug) with a state dump.
    pub fn run(mut self) -> RunReport {
        loop {
            self.pump();
            if self.cores.iter().all(CoreRt::finished) {
                break;
            }
            match self.next_event() {
                Some(t) => self.advance_now(t),
                None => self.deadlock_panic(),
            }
        }
        self.report()
    }

    /// One fixpoint pass at the current cycle: deliver interconnect
    /// traffic due by now, tick memory, retire completions, progress every
    /// woken core, and let the arbiter issue. Marks the cycle pumped so
    /// [`Simulation::advance`] never double-arbitrates it.
    fn pump(&mut self) {
        // Interconnect deliveries due by now.
        while let Some(&(t, core, paddr, is_write, meta)) = self.noc_requests.peek() {
            if t > self.now {
                break;
            }
            self.noc_requests.pop();
            self.enqueue_direct(core, paddr, is_write, meta);
        }
        while let Some(&(t, meta, core)) = self.noc_responses.peek() {
            if t > self.now {
                break;
            }
            self.noc_responses.pop();
            self.handle_completion(meta, core);
        }

        self.memory.tick(self.now);
        // Reused drain buffer: taken out for the duration of the walk
        // because `handle_completion` needs `&mut self`.
        let mut ready = std::mem::take(&mut self.completion_buf);
        self.memory.drain_completions_into(&mut ready);
        for c in ready.drain(..) {
            if let Some(noc) = &mut self.noc {
                let arrival =
                    noc.response_delivery(c.completed_at.min(self.now), c.core, TRANSACTION_BYTES);
                if arrival > self.now {
                    self.noc_responses.push(c.core, (arrival, c.meta, c.core));
                    continue;
                }
            }
            self.handle_completion(c.meta, c.core);
        }
        self.completion_buf = ready;
        for core in 0..self.cores.len() {
            self.progress_core_if_woken(core);
        }
        self.issue_all();

        // One state sample per core per pass. State only changes inside
        // passes, so the piecewise-constant integration in the probe is
        // cycle-exact (free with `NullProbe`).
        if P::ENABLED {
            self.sample_core_states();
        }
        self.pumped = true;
    }

    /// The next cycle at which simulation state can change; `None` when
    /// nothing is in flight anywhere.
    fn next_event(&self) -> Option<u64> {
        let mut next: Option<u64> = self.memory.next_event_cycle();
        if let Some(&(t, ..)) = self.noc_requests.peek() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        if let Some(&(t, ..)) = self.noc_responses.peek() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        for core in &self.cores {
            if let Some((_, done_at)) = core.computing {
                next = Some(next.map_or(done_at, |n| n.min(done_at)));
            }
            if core.start_cycle > self.now && !core.finished() {
                next = Some(next.map_or(core.start_cycle, |n| n.min(core.start_cycle)));
            }
        }
        next
    }

    /// Advance the clock to event time `t`, entering a fresh (un-pumped)
    /// cycle.
    fn advance_now(&mut self, t: u64) {
        debug_assert!(t > self.now, "event time must advance");
        self.now = t.max(self.now + 1);
        if let Some(limit) = self.cfg.max_cycles {
            assert!(self.now <= limit, "simulation exceeded max_cycles = {limit} (watchdog)");
        }
        self.pumped = false;
    }

    /// Move the clock to `t` without simulating the gap — callers use this
    /// only when no event lies in `(now, t]`, so the skipped cycles are
    /// genuinely empty. The current cycle's pumped state is kept: nothing
    /// changed, so re-arbitrating would only perturb the round-robin
    /// pointers.
    fn park_at(&mut self, t: u64) {
        debug_assert!(t >= self.now, "cannot rewind the clock");
        self.now = t;
        if let Some(limit) = self.cfg.max_cycles {
            assert!(self.now <= limit, "simulation exceeded max_cycles = {limit} (watchdog)");
        }
    }

    // --- dynamic core binding (serve mode) ---------------------------------

    /// Step the simulation until a core finishes, the next event passes
    /// `stop_at`, or nothing is left to simulate.
    ///
    /// This is the batch loop of [`Simulation::run`] cut at the scheduler's
    /// decision points. Driving a fresh simulation with
    /// `advance(u64::MAX)` until [`Advance::Drained`] performs *exactly*
    /// the same pump/advance sequence as `run()` — finish notifications
    /// only flip a bookkeeping bit — which is what keeps serve mode
    /// byte-identical to batch mode when every job arrives at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `stop_at` is in the past, on deadlock, or when the
    /// watchdog limit is exceeded.
    pub fn advance(&mut self, stop_at: u64) -> Advance {
        assert!(stop_at >= self.now, "stop_at must not be in the past");
        loop {
            if !self.pumped {
                self.pump();
            }
            if let Some(core) = (0..self.cores.len())
                .find(|&c| self.cores[c].finished() && !self.finish_reported[c])
            {
                self.finish_reported[core] = true;
                let at = self.cores[core].finished_at.expect("core finished");
                return Advance::CoreFinished { core, at };
            }
            if self.cores.iter().all(CoreRt::finished) {
                return Advance::Drained;
            }
            match self.next_event() {
                Some(t) if t > stop_at => {
                    if stop_at > self.now {
                        self.park_at(stop_at);
                    }
                    return Advance::Parked;
                }
                Some(t) => self.advance_now(t),
                None => self.deadlock_panic(),
            }
        }
    }

    /// Bind `trace` to `core` starting at `start_cycle`. The core must be
    /// free: vacant, or finished with its completion already surfaced
    /// through [`Advance::CoreFinished`]. The core's TLB entries are
    /// flushed (its address space is reused), its pipeline state is
    /// rebuilt from the new trace, and the current cycle is re-pumped so a
    /// same-cycle dispatch starts issuing immediately instead of sleeping
    /// until the next unrelated event.
    ///
    /// MMU, DRAM and link statistics accumulate across bindings — they
    /// describe the core, not the job. Per-job timing belongs to the
    /// scheduler driving this API.
    ///
    /// # Panics
    ///
    /// Panics if the core is still running, its finish has not been
    /// observed, transactions are still in flight, or `start_cycle` is in
    /// the past.
    pub fn attach(&mut self, core: usize, trace: &WorkloadTrace, start_cycle: u64) {
        let rt = &self.cores[core];
        assert!(rt.finished(), "attach to a busy core");
        assert!(self.finish_reported[core], "attach before the finish was observed");
        assert_eq!(rt.outstanding, 0, "attach with transactions in flight");
        assert!(start_cycle >= self.now, "start_cycle must not be in the past");
        if let Some(mmu) = &mut self.mmu {
            mmu.flush_core(core);
            self.mirror_flush_core(core);
        }
        self.cores[core] = CoreRt::new(trace.clone(), start_cycle);
        self.finish_reported[core] = false;
        self.pumped = false;
    }

    /// Replace a free core's binding with the vacant workload, releasing
    /// the old trace's memory. A vacant core is already finished, so the
    /// event loop skips it everywhere and it contributes no events — an
    /// idle core costs nothing.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::attach`].
    pub fn detach(&mut self, core: usize) {
        let rt = &self.cores[core];
        assert!(rt.finished(), "detach of a busy core");
        assert!(self.finish_reported[core], "detach before the finish was observed");
        assert_eq!(rt.outstanding, 0, "detach with transactions in flight");
        if let Some(mmu) = &mut self.mmu {
            mmu.flush_core(core);
            self.mirror_flush_core(core);
        }
        self.cores[core] = CoreRt::vacant();
    }

    /// The current global (DRAM-clock) cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jump an idle simulation's clock forward to `cycle` — e.g. to the
    /// next job arrival after [`Advance::Drained`].
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is in the past or beyond the watchdog limit.
    pub fn skip_to(&mut self, cycle: u64) {
        assert!(cycle >= self.now, "cannot rewind the clock");
        self.park_at(cycle);
    }

    /// Feed one external event (a scheduler's job-lifecycle marker) into
    /// the simulation's probe at the current cycle. Free with
    /// [`NullProbe`].
    pub fn record_event(&mut self, event: Event) {
        if P::ENABLED {
            self.probe.record(self.now, event);
        }
    }

    /// Consume a drained simulation and assemble the final [`RunReport`] —
    /// the serve-mode counterpart of [`Simulation::run`]'s return value.
    ///
    /// # Panics
    ///
    /// Panics if any core is still running.
    pub fn into_report(self) -> RunReport {
        assert!(self.cores.iter().all(CoreRt::finished), "cores still running");
        self.report()
    }

    fn deadlock_panic(&self) -> ! {
        let states: Vec<String> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "core {i}: loaded_tile={}/{} computed={} outstanding={} finished={}",
                    c.next_load,
                    c.flat_tiles.len(),
                    c.computed,
                    c.outstanding,
                    c.finished()
                )
            })
            .collect();
        panic!(
            "simulation deadlock at cycle {}: no pending events but cores unfinished\n{}\nwalker_wait={} dram_retry={} dram_pending={}",
            self.now,
            states.join("\n"),
            self.arbiter.walker_wait_order.iter().map(std::collections::VecDeque::len).sum::<usize>(),
            self.arbiter.dram_retry.len(),
            self.memory.pending()
        );
    }

    // --- observability -----------------------------------------------------

    /// Emit one [`Event::CoreState`] per core at the current cycle.
    fn sample_core_states(&mut self) {
        for ci in 0..self.cores.len() {
            let state = self.classify_core(ci);
            self.probe.record(self.now, Event::CoreState { core: ci, state });
        }
    }

    /// What is core `ci` doing *right now*? Priority order matters: a core
    /// that is computing is `Compute` even if a store is also draining —
    /// the stall buckets answer "what would have to speed up for this core
    /// to finish sooner".
    fn classify_core(&self, ci: usize) -> CoreState {
        let rt = &self.cores[ci];
        if rt.finished() {
            return CoreState::Finished;
        }
        if rt.start_cycle > self.now {
            return CoreState::Idle;
        }
        if rt.computing.is_some() {
            return CoreState::Compute;
        }
        if self.translation_pending(ci) {
            return CoreState::WaitTranslation;
        }
        if rt.next_compute < rt.flat_tiles.len() && !rt.tile_loaded[rt.next_compute] {
            return CoreState::WaitLoad;
        }
        CoreState::WaitStore
    }

    /// `true` when core `ci` has transactions parked on an in-flight or
    /// walker-starved page-table walk. Only called from the probed sampling
    /// path, so the linear scan is outside the `NullProbe` hot path.
    fn translation_pending(&self, ci: usize) -> bool {
        if self.mmu.is_none() {
            return false;
        }
        if !self.arbiter.walker_wait_order[ci].is_empty() {
            return true;
        }
        self.walk_waiters.values().flatten().any(|&(stage, _)| self.stages[stage].core == ci)
    }

    // --- event handling ----------------------------------------------------

    /// Return a drained waiter vector to the reuse pool. Bounded so a
    /// pathological workload cannot hoard memory through the pool; beyond
    /// the cap the vector just drops, which is the old behavior.
    pub(crate) fn recycle_waiters(&mut self, waiters: Vec<(usize, u64)>) {
        debug_assert!(waiters.is_empty(), "recycled waiter vec must be drained");
        if self.waiter_pool.len() < 64 {
            self.waiter_pool.push(waiters);
        }
    }

    fn handle_completion(&mut self, meta: u64, core: usize) {
        if meta & META_WALK != 0 {
            self.cores[core].walk_txns += 1;
            let walk = mnpu_mmu::WalkId::from_raw(meta & !META_WALK);
            let mmu = self.mmu.as_mut().expect("walk completion without MMU");
            let step = mmu.advance_walk(walk);
            self.mirror_advance_walk(walk, step);
            match step {
                WalkStep::Access(addr) => {
                    self.enqueue_or_retry(core, addr, false, meta);
                }
                WalkStep::Done { core: wcore, vpn } => {
                    debug_assert_eq!(core, wcore);
                    if P::ENABLED {
                        self.probe.record(self.now, Event::WalkDone { core, walk: walk.raw() });
                        let evicted = self.mmu.as_mut().expect("checked").take_last_eviction();
                        self.mirror_take_eviction(evicted);
                        if let Some((owner, _vpn)) = evicted {
                            self.probe.record(self.now, Event::TlbEvict { core: owner as usize });
                        }
                    }
                    let page = self.mmu.as_ref().expect("checked").page_bytes();
                    self.log(core, LogKind::WalkDone, vpn * page);
                    if let Some(mut waiters) = self.walk_waiters.remove(&walk.raw()) {
                        for (stage_id, vaddr) in waiters.drain(..) {
                            let is_write = self.stages[stage_id].is_store;
                            let paddr = self.page_tables[core].translate(vaddr);
                            self.enqueue_or_retry(core, paddr, is_write, stage_id as u64);
                        }
                        self.recycle_waiters(waiters);
                    }
                    // A walker was freed: try to start queued walks.
                    self.arbiter.walker_event = true;
                    self.drain_walker_wait();
                }
            }
        } else {
            let stage_id = meta as usize;
            if self.log.is_some() {
                let kind = if self.stages[stage_id].is_store {
                    LogKind::DramWriteDone
                } else {
                    LogKind::DramReadDone
                };
                self.log(core, kind, 0);
            }
            let (done, is_store, layer, flat, score) = {
                let s = &mut self.stages[stage_id];
                s.completed += 1;
                (s.done(), s.is_store, s.layer, s.flat_tile, s.core)
            };
            {
                let rt = &mut self.cores[score];
                // A data completion can unblock the tile pipeline (tile
                // loaded, store drained, layer barrier released): wake the
                // core for the next progress pass.
                rt.needs_progress = true;
                rt.outstanding -= 1;
                rt.data_txns += 1;
                rt.blocked_on_dram = false;
                if is_store {
                    rt.layer_store_remaining[layer] -= 1;
                    if rt.layer_store_remaining[layer] == 0 {
                        rt.layer_finish[layer] = self.now;
                    }
                }
                if done {
                    if is_store {
                        rt.active_stores.retain(|&s| s != stage_id);
                    } else {
                        rt.tile_loaded[flat] = true;
                        if rt.load_stage == Some(stage_id) {
                            rt.load_stage = None;
                        }
                    }
                }
            }
            if done {
                if P::ENABLED {
                    let phase = if is_store { Phase::Store } else { Phase::Load };
                    self.probe
                        .record(self.now, Event::PhaseEnd { core: score, phase, id: flat as u64 });
                }
                self.stages[stage_id].spans = Vec::new(); // release memory
            }
        }
    }

    pub(crate) fn log(&mut self, core: usize, kind: LogKind, addr: u64) {
        if let Some(log) = &mut self.log {
            log.push(LogEvent { cycle: self.now, core, kind, addr });
        }
    }

    // --- reporting -----------------------------------------------------------

    fn report(mut self) -> RunReport {
        // Telemetry, not simulation state: the global fast-forward commit
        // counter feeds the daemon's `/metrics`, never the report.
        mnpu_trace::counters::add_fastfwd_commits(self.memory.fastfwd_commits());
        let total_cycles = self.cores.iter().filter_map(|c| c.finished_at).max().unwrap_or(0);
        // Merge the memory backend's probe into the engine's, then freeze.
        let stats = if P::ENABLED {
            let mut probe = std::mem::take(&mut self.probe);
            probe.merge(self.memory.take_probe());
            probe.into_report().map(|mut r| {
                // `active_cycles` is set from the engine's own clock rather
                // than integrated from samples, so the stall-sum invariant
                // (four buckets == active cycles) is a genuine cross-check.
                for (ci, rt) in self.cores.iter().enumerate() {
                    let finish = rt.finished_at.unwrap_or(self.now);
                    r.core_mut(ci).active_cycles = finish.saturating_sub(rt.start_cycle);
                }
                r
            })
        } else {
            None
        };
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(ci, rt)| {
                let finish = rt.finished_at.expect("core finished");
                let global = finish.saturating_sub(rt.start_cycle).max(1);
                let cycles = self.to_core(ci, global);
                let arch = &self.cfg.arch[ci];
                let macs: u64 =
                    rt.trace.layers().iter().flat_map(|l| &l.tiles).map(|t| t.macs).sum::<u64>()
                        * self.cfg.iterations;
                let mut layer_cycles = Vec::with_capacity(rt.layer_finish.len());
                let mut prev = rt.start_cycle;
                for (l, &fin) in rt.layer_finish.iter().enumerate() {
                    let fin = fin.max(prev);
                    layer_cycles
                        .push((rt.trace.layers()[l].name.clone(), self.to_core(ci, fin - prev)));
                    prev = fin;
                }
                CoreReport {
                    workload: rt.trace.name().to_string(),
                    cycles,
                    compute_cycles: rt.compute_cycles_total,
                    pe_utilization: macs as f64 / (arch.rows * arch.cols * cycles) as f64,
                    traffic_bytes: rt.data_txns * TRANSACTION_BYTES,
                    walk_bytes: rt.walk_txns * TRANSACTION_BYTES,
                    mmu: self.mmu.as_ref().map(|m| *m.stats(ci)).unwrap_or_default(),
                    layer_cycles,
                    footprint_bytes: rt.trace.footprint_bytes(),
                    noc_queue_cycles: self
                        .noc
                        .as_ref()
                        .map(|x| {
                            x.request_link(ci).queue_cycles() + x.response_link(ci).queue_cycles()
                        })
                        .unwrap_or(0),
                }
            })
            .collect();
        let (request_log, request_log_truncated) = match self.log {
            Some(log) => (log.events.into_iter().collect(), log.truncated),
            None => (Vec::new(), false),
        };
        RunReport {
            cores,
            total_cycles,
            dram: self.memory.stats(),
            bandwidth_trace: self.memory.bandwidth_trace(),
            request_log,
            request_log_truncated,
            stats,
        }
    }
}
