//! The event-driven multi-core simulation loop.

use crate::memmap::PageTable;
use crate::report::{CoreReport, LogEvent, LogKind, RunReport};
use crate::sharing::partition_channels;
use crate::system::SystemConfig;
use mnpu_dram::{Dram, EnqueueError, TRANSACTION_BYTES};
use mnpu_mmu::{Mmu, WalkStart, WalkStep};
use mnpu_model::Network;
use mnpu_systolic::{MemSpan, WorkloadTrace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Tag bit distinguishing page-table walk reads from data transactions.
const META_WALK: u64 = 1 << 63;

/// A DMA stage: the load or store burst of one tile, expanded into 64-byte
/// transactions on demand.
#[derive(Debug)]
struct Stage {
    core: usize,
    layer: usize,
    flat_tile: usize,
    is_store: bool,
    spans: Vec<MemSpan>,
    span_idx: usize,
    cursor: u64,
    total: u64,
    consumed: u64,
    completed: u64,
}

fn span_txns(s: &MemSpan) -> u64 {
    (s.addr + s.bytes - 1) / TRANSACTION_BYTES - s.addr / TRANSACTION_BYTES + 1
}

impl Stage {
    fn new(core: usize, layer: usize, flat_tile: usize, is_store: bool, spans: Vec<MemSpan>) -> Self {
        let total = spans.iter().map(span_txns).sum();
        let cursor = spans.first().map_or(0, |s| s.addr / TRANSACTION_BYTES * TRANSACTION_BYTES);
        Stage { core, layer, flat_tile, is_store, spans, span_idx: 0, cursor, total, consumed: 0, completed: 0 }
    }

    /// Virtual address of the next transaction, if any remain unissued.
    fn peek(&self) -> Option<u64> {
        (self.consumed < self.total).then_some(self.cursor)
    }

    fn advance(&mut self) {
        debug_assert!(self.consumed < self.total);
        self.consumed += 1;
        let span = &self.spans[self.span_idx];
        let end = span.addr + span.bytes;
        self.cursor += TRANSACTION_BYTES;
        if self.cursor >= end {
            self.span_idx += 1;
            if let Some(next) = self.spans.get(self.span_idx) {
                self.cursor = next.addr / TRANSACTION_BYTES * TRANSACTION_BYTES;
            }
        }
    }

    fn done(&self) -> bool {
        self.completed == self.total
    }
}

/// Per-core pipeline state over the flattened tile list.
#[derive(Debug)]
struct CoreRt {
    trace: WorkloadTrace,
    flat_tiles: Vec<(usize, usize)>,
    /// Store transactions still outstanding per layer (this iteration) —
    /// the cross-layer RAW barrier.
    layer_store_remaining: Vec<u64>,
    layer_store_total: Vec<u64>,
    /// Global cycle at which each layer retired its last store (final
    /// iteration) — the paper's layer-wise execution-cycle output.
    layer_finish: Vec<u64>,
    tile_loaded: Vec<bool>,
    next_load: usize,
    next_compute: usize,
    computed: usize,
    load_stage: Option<usize>,
    active_stores: Vec<usize>,
    computing: Option<(usize, u64)>,
    outstanding: usize,
    iter: u64,
    start_cycle: u64,
    finished_at: Option<u64>,
    compute_cycles_total: u64,
    data_txns: u64,
    walk_txns: u64,
    blocked_on_dram: bool,
}

impl CoreRt {
    fn new(trace: WorkloadTrace, start_cycle: u64) -> Self {
        let mut flat = Vec::new();
        let mut store_total = vec![0u64; trace.layers().len()];
        for (li, l) in trace.layers().iter().enumerate() {
            for (ti, tile) in l.tiles.iter().enumerate() {
                flat.push((li, ti));
                store_total[li] += tile.stores.iter().map(span_txns).sum::<u64>();
            }
        }
        let n = flat.len();
        CoreRt {
            trace,
            flat_tiles: flat,
            layer_finish: vec![0; store_total.len()],
            layer_store_remaining: store_total.clone(),
            layer_store_total: store_total,
            tile_loaded: vec![false; n],
            next_load: 0,
            next_compute: 0,
            computed: 0,
            load_stage: None,
            active_stores: Vec::new(),
            computing: None,
            outstanding: 0,
            iter: 0,
            start_cycle,
            finished_at: None,
            compute_cycles_total: 0,
            data_txns: 0,
            walk_txns: 0,
            blocked_on_dram: false,
        }
    }

    fn tile(&self, flat: usize) -> &mnpu_systolic::Tile {
        let (l, t) = self.flat_tiles[flat];
        &self.trace.layers()[l].tiles[t]
    }

    fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// `true` when every layer before `layer` has retired all its stores.
    fn barrier_open(&self, layer: usize) -> bool {
        self.layer_store_remaining[..layer].iter().all(|&r| r == 0)
    }

    fn reset_for_next_iteration(&mut self) {
        self.layer_store_remaining = self.layer_store_total.clone();
        self.tile_loaded.iter_mut().for_each(|b| *b = false);
        self.next_load = 0;
        self.next_compute = 0;
        self.computed = 0;
        self.iter += 1;
    }
}

/// An event-driven simulation of one multi-core NPU chip executing one
/// workload per core.
///
/// Most callers use [`Simulation::run`] (traces) or
/// [`Simulation::run_networks`] (builds traces first); the struct itself is
/// exposed for step-wise debugging.
#[derive(Debug)]
pub struct Simulation {
    cfg: SystemConfig,
    dram: Dram,
    mmu: Option<Mmu>,
    page_tables: Vec<PageTable>,
    cores: Vec<CoreRt>,
    stages: Vec<Stage>,
    walk_waiters: HashMap<u64, Vec<(usize, u64)>>,
    walker_wait_order: Vec<VecDeque<u64>>,
    walker_waiters: HashMap<(usize, u64), Vec<(usize, u64)>>,
    dram_retry: VecDeque<(usize, u64, bool, u64)>,
    rr_start: usize,
    log: Option<Vec<LogEvent>>,
    noc: Option<mnpu_noc::Crossbar>,
    /// Requests in flight on the interconnect: (arrival, core, paddr, is_write, meta).
    noc_requests: BinaryHeap<Reverse<(u64, usize, u64, bool, u64)>>,
    /// Responses in flight back to cores: (arrival, meta, core).
    noc_responses: BinaryHeap<Reverse<(u64, u64, usize)>>,
    now: u64,
}

impl Simulation {
    /// Build a simulation of `cfg` executing `traces[c]` on core `c`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace count does not
    /// match the core count.
    pub fn new(cfg: &SystemConfig, traces: &[WorkloadTrace]) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system config: {e}");
        }
        assert_eq!(traces.len(), cfg.cores, "one workload trace per core");

        let mut dram_cfg = cfg.dram.clone();
        dram_cfg.channels = cfg.total_channels();
        let mut dram = Dram::new(dram_cfg);
        if let Some(w) = cfg.trace_window {
            dram.enable_trace(w, cfg.cores);
        }
        if !cfg.sharing.shares_dram() {
            let counts = cfg
                .channel_partition
                .clone()
                .unwrap_or_else(|| vec![cfg.channels_per_core; cfg.cores]);
            for (core, subset) in partition_channels(cfg.total_channels(), &counts).into_iter().enumerate() {
                dram.set_core_channels(core, subset);
            }
        }

        let cap = cfg.capacity_per_core();
        let page_tables: Vec<PageTable> = (0..cfg.cores)
            .map(|c| {
                PageTable::new(c as u64 * cap, cap, cfg.mmu.page_bytes, cfg.mmu.pt_region_bytes)
            })
            .collect();

        let mmu = cfg.translation.then(|| {
            let mut m = cfg.mmu.clone();
            m.tlb_shared = cfg.sharing.shares_tlb();
            m.ptw_shared = cfg.sharing.shares_ptw();
            m.ptw_partition = if m.ptw_shared { None } else { cfg.ptw_partition.clone() };
            m.ptw_bounds = cfg.ptw_bounds.clone();
            let bases: Vec<u64> = page_tables.iter().map(PageTable::pt_region_base).collect();
            Mmu::new(m, cfg.cores, &bases)
        });

        let cores = traces
            .iter()
            .enumerate()
            .map(|(c, t)| {
                let start = cfg.start_cycles.get(c).copied().unwrap_or(0);
                CoreRt::new(t.clone(), start)
            })
            .collect();

        Simulation {
            cfg: cfg.clone(),
            dram,
            mmu,
            page_tables,
            cores,
            stages: Vec::new(),
            walk_waiters: HashMap::new(),
            walker_wait_order: vec![VecDeque::new(); cfg.cores],
            walker_waiters: HashMap::new(),
            dram_retry: VecDeque::new(),
            rr_start: 0,
            log: cfg.request_log.then(Vec::new),
            noc: cfg.noc.as_ref().map(|n| mnpu_noc::Crossbar::new(n, cfg.cores)),
            noc_requests: BinaryHeap::new(),
            noc_responses: BinaryHeap::new(),
            now: 0,
        }
    }

    /// Convenience: generate traces for `networks` with each core's
    /// [`mnpu_systolic::ArchConfig`] and run to completion.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulation::new`].
    pub fn run_networks(cfg: &SystemConfig, networks: &[Network]) -> RunReport {
        assert_eq!(networks.len(), cfg.cores, "one network per core");
        let traces: Vec<WorkloadTrace> = networks
            .iter()
            .zip(&cfg.arch)
            .map(|(n, a)| WorkloadTrace::generate(n, a))
            .collect();
        Simulation::new(cfg, &traces).run()
    }

    /// Run a fleet of independent chips (the paper's §4.6 system of
    /// multiple multi-core NPUs): `assignments[i]` holds chip *i*'s
    /// workloads, one per core. Chips share nothing, so each runs as its
    /// own simulation; reports come back in chip order.
    ///
    /// # Panics
    ///
    /// Panics if any assignment's length differs from `cfg.cores`.
    pub fn run_fleet(cfg: &SystemConfig, assignments: &[Vec<Network>]) -> Vec<RunReport> {
        assignments.iter().map(|nets| Simulation::run_networks(cfg, nets)).collect()
    }

    /// Convert `cycles` in core `c`'s clock domain to global (DRAM) cycles.
    fn to_global(&self, core: usize, cycles: u64) -> u64 {
        let f = self.cfg.arch[core].freq_mhz as u128;
        let g = self.cfg.dram.freq_mhz as u128;
        ((cycles as u128 * g).div_ceil(f)) as u64
    }

    /// Convert global cycles to core `c`'s clock domain.
    fn to_core(&self, core: usize, cycles: u64) -> u64 {
        let f = self.cfg.arch[core].freq_mhz as u128;
        let g = self.cfg.dram.freq_mhz as u128;
        ((cycles as u128 * f).div_ceil(g)) as u64
    }

    /// Run the simulation to completion and produce the report.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (a bug) with a state dump.
    pub fn run(mut self) -> RunReport {
        loop {
            // Interconnect deliveries due by now.
            while let Some(&Reverse((t, core, paddr, is_write, meta))) = self.noc_requests.peek() {
                if t > self.now {
                    break;
                }
                self.noc_requests.pop();
                self.enqueue_direct(core, paddr, is_write, meta);
            }
            while let Some(&Reverse((t, meta, core))) = self.noc_responses.peek() {
                if t > self.now {
                    break;
                }
                self.noc_responses.pop();
                self.handle_completion(meta, core);
            }

            let completions = self.dram.advance(self.now);
            for c in completions {
                if let Some(noc) = &mut self.noc {
                    let arrival = noc.response_delivery(c.completed_at.min(self.now), c.core, TRANSACTION_BYTES);
                    if arrival > self.now {
                        self.noc_responses.push(Reverse((arrival, c.meta, c.core)));
                        continue;
                    }
                }
                self.handle_completion(c.meta, c.core);
            }
            for core in 0..self.cores.len() {
                self.progress_core(core);
            }
            self.issue_all();

            if self.cores.iter().all(CoreRt::finished) {
                break;
            }

            let mut next: Option<u64> = self.dram.next_event();
            if let Some(&Reverse((t, ..))) = self.noc_requests.peek() {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            if let Some(&Reverse((t, ..))) = self.noc_responses.peek() {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            for (ci, core) in self.cores.iter().enumerate() {
                if let Some((_, done_at)) = core.computing {
                    next = Some(next.map_or(done_at, |n| n.min(done_at)));
                }
                if core.start_cycle > self.now && !core.finished() {
                    next = Some(next.map_or(core.start_cycle, |n| n.min(core.start_cycle)));
                }
                let _ = ci;
            }
            match next {
                Some(t) => {
                    debug_assert!(t > self.now, "event time must advance");
                    self.now = t.max(self.now + 1);
                    if let Some(limit) = self.cfg.max_cycles {
                        assert!(
                            self.now <= limit,
                            "simulation exceeded max_cycles = {limit} (watchdog)"
                        );
                    }
                }
                None => self.deadlock_panic(),
            }
        }
        self.report()
    }

    fn deadlock_panic(&self) -> ! {
        let states: Vec<String> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "core {i}: loaded_tile={}/{} computed={} outstanding={} finished={}",
                    c.next_load,
                    c.flat_tiles.len(),
                    c.computed,
                    c.outstanding,
                    c.finished()
                )
            })
            .collect();
        panic!(
            "simulation deadlock at cycle {}: no pending events but cores unfinished\n{}\nwalker_wait={} dram_retry={} dram_pending={}",
            self.now,
            states.join("\n"),
            self.walker_wait_order.iter().map(VecDeque::len).sum::<usize>(),
            self.dram_retry.len(),
            self.dram.pending()
        );
    }

    // --- event handling ----------------------------------------------------

    fn handle_completion(&mut self, meta: u64, core: usize) {
        if meta & META_WALK != 0 {
            self.cores[core].walk_txns += 1;
            let walk = mnpu_mmu::WalkId::from_raw(meta & !META_WALK);
            let mmu = self.mmu.as_mut().expect("walk completion without MMU");
            match mmu.advance_walk(walk) {
                WalkStep::Access(addr) => {
                    self.enqueue_or_retry(core, addr, false, meta);
                }
                WalkStep::Done { core: wcore, vpn } => {
                    debug_assert_eq!(core, wcore);
                    let page = self.mmu.as_ref().expect("checked").page_bytes();
                    self.log(core, LogKind::WalkDone, vpn * page);
                    if let Some(waiters) = self.walk_waiters.remove(&walk.raw()) {
                        for (stage_id, vaddr) in waiters {
                            let is_write = self.stages[stage_id].is_store;
                            let paddr = self.page_tables[core].translate(vaddr);
                            self.enqueue_or_retry(core, paddr, is_write, stage_id as u64);
                        }
                    }
                    // A walker was freed: try to start queued walks.
                    self.drain_walker_wait();
                }
            }
        } else {
            let stage_id = meta as usize;
            if self.log.is_some() {
                let kind = if self.stages[stage_id].is_store {
                    LogKind::DramWriteDone
                } else {
                    LogKind::DramReadDone
                };
                self.log(core, kind, 0);
            }
            let (done, is_store, layer, flat, score) = {
                let s = &mut self.stages[stage_id];
                s.completed += 1;
                (s.done(), s.is_store, s.layer, s.flat_tile, s.core)
            };
            {
                let rt = &mut self.cores[score];
                rt.outstanding -= 1;
                rt.data_txns += 1;
                rt.blocked_on_dram = false;
                if is_store {
                    rt.layer_store_remaining[layer] -= 1;
                    if rt.layer_store_remaining[layer] == 0 {
                        rt.layer_finish[layer] = self.now;
                    }
                }
                if done {
                    if is_store {
                        rt.active_stores.retain(|&s| s != stage_id);
                    } else {
                        rt.tile_loaded[flat] = true;
                        if rt.load_stage == Some(stage_id) {
                            rt.load_stage = None;
                        }
                    }
                }
            }
            if done {
                self.stages[stage_id].spans = Vec::new(); // release memory
            }
        }
    }

    fn log(&mut self, core: usize, kind: LogKind, addr: u64) {
        if let Some(log) = &mut self.log {
            log.push(LogEvent { cycle: self.now, core, kind, addr });
        }
    }

    /// Route a memory-bound transaction: across the interconnect when one
    /// is modeled, then into the DRAM queue (or the retry list when full).
    fn enqueue_or_retry(&mut self, core: usize, paddr: u64, is_write: bool, meta: u64) {
        if let Some(noc) = &mut self.noc {
            let arrival = noc.request_delivery(self.now, core, TRANSACTION_BYTES);
            if arrival > self.now {
                self.noc_requests.push(Reverse((arrival, core, paddr, is_write, meta)));
                return;
            }
        }
        self.enqueue_direct(core, paddr, is_write, meta);
    }

    fn enqueue_direct(&mut self, core: usize, paddr: u64, is_write: bool, meta: u64) {
        match self.dram.try_enqueue(self.now, core, paddr, is_write, meta) {
            Ok(()) => {}
            Err(EnqueueError::QueueFull { .. }) => {
                self.dram_retry.push_back((core, paddr, is_write, meta));
            }
        }
    }

    /// Grant freed walkers to waiting walks, round-robin across cores so a
    /// walk-hungry core cannot head-of-line-block its co-runners at the
    /// shared pool (each per-core queue stays FCFS internally).
    fn drain_walker_wait(&mut self) {
        let ncores = self.cores.len();
        let mut blocked = vec![false; ncores];
        // Rotate the starting core so freed walkers are granted round-robin
        // rather than by fixed core priority.
        self.rr_start = (self.rr_start + 1) % ncores;
        let first = self.rr_start;
        loop {
            let mut progressed = false;
            for k in 0..ncores {
                let core = (first + k) % ncores;
                if blocked[core] || self.walker_wait_order[core].is_empty() {
                    continue;
                }
                let vpn = self.walker_wait_order[core][0];
                let mmu = self.mmu.as_mut().expect("walker wait without MMU");
                // The page may have become resident through a walk that
                // finished while this entry waited; never start a redundant
                // walk.
                if mmu.probe(core, vpn) {
                    self.walker_wait_order[core].pop_front();
                    let waiters = self.walker_waiters.remove(&(core, vpn)).unwrap_or_default();
                    for (stage_id, vaddr) in waiters {
                        let is_write = self.stages[stage_id].is_store;
                        let paddr = self.page_tables[core].translate(vaddr);
                        self.enqueue_or_retry(core, paddr, is_write, stage_id as u64);
                    }
                    progressed = true;
                    continue;
                }
                match mmu.retry_walk(core, vpn) {
                    WalkStart::Started { walk, pt_addr } => {
                        self.log(core, LogKind::WalkStart, pt_addr);
                        self.walker_wait_order[core].pop_front();
                        let waiters = self.walker_waiters.remove(&(core, vpn)).unwrap_or_default();
                        self.walk_waiters.insert(walk.raw(), waiters);
                        self.enqueue_or_retry(core, pt_addr, false, META_WALK | walk.raw());
                        progressed = true;
                    }
                    WalkStart::Joined(walk) => {
                        self.walker_wait_order[core].pop_front();
                        let waiters = self.walker_waiters.remove(&(core, vpn)).unwrap_or_default();
                        self.walk_waiters.entry(walk.raw()).or_default().extend(waiters);
                        progressed = true;
                    }
                    WalkStart::NoWalker => {
                        blocked[core] = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    // --- core pipeline -----------------------------------------------------

    fn progress_core(&mut self, ci: usize) {
        if self.cores[ci].finished() || self.cores[ci].start_cycle > self.now {
            return;
        }
        loop {
            let mut made_progress = false;

            // Compute completion.
            if let Some((flat, done_at)) = self.cores[ci].computing {
                if done_at <= self.now {
                    self.cores[ci].computing = None;
                    self.cores[ci].computed = flat + 1;
                    let (layer, _) = self.cores[ci].flat_tiles[flat];
                    let stores = self.cores[ci].tile(flat).stores.clone();
                    if !stores.is_empty() {
                        let id = self.stages.len();
                        self.stages.push(Stage::new(ci, layer, flat, true, stores));
                        self.cores[ci].active_stores.push(id);
                    }
                    made_progress = true;
                }
            }

            // Compute start.
            if self.cores[ci].computing.is_none() {
                let flat = self.cores[ci].next_compute;
                if flat < self.cores[ci].flat_tiles.len() && self.cores[ci].tile_loaded[flat] {
                    let cycles = self.cores[ci].tile(flat).compute_cycles;
                    let dur = self.to_global(ci, cycles);
                    self.cores[ci].computing = Some((flat, self.now + dur.max(1)));
                    self.cores[ci].next_compute = flat + 1;
                    self.cores[ci].compute_cycles_total += cycles;
                    made_progress = true;
                }
            }

            // Load-stage creation (double buffering: at most one tile ahead
            // of compute, gated by the cross-layer store barrier).
            if self.cores[ci].load_stage.is_none() {
                let flat = self.cores[ci].next_load;
                let rt = &self.cores[ci];
                if flat < rt.flat_tiles.len() && flat <= rt.next_compute {
                    let (layer, _) = rt.flat_tiles[flat];
                    if rt.barrier_open(layer) {
                        let loads = rt.tile(flat).loads.clone();
                        let id = self.stages.len();
                        let stage = Stage::new(ci, layer, flat, false, loads);
                        let rt = &mut self.cores[ci];
                        if stage.total == 0 {
                            rt.tile_loaded[flat] = true;
                        } else {
                            rt.load_stage = Some(id);
                            self.stages.push(stage);
                        }
                        rt.next_load = flat + 1;
                        made_progress = true;
                    }
                }
            }

            // Iteration / workload completion.
            {
                let rt = &self.cores[ci];
                if rt.computing.is_none()
                    && rt.computed == rt.flat_tiles.len()
                    && rt.active_stores.is_empty()
                    && rt.layer_store_remaining.iter().all(|&r| r == 0)
                    && rt.load_stage.is_none()
                    && !rt.finished()
                {
                    if rt.iter + 1 < self.cfg.iterations {
                        self.cores[ci].reset_for_next_iteration();
                        made_progress = true;
                    } else {
                        self.cores[ci].finished_at = Some(self.now);
                    }
                }
            }

            if !made_progress {
                break;
            }
        }
    }

    // --- transaction issue ---------------------------------------------------

    fn issue_all(&mut self) {
        // Retry previously blocked transactions first (FCFS).
        if !self.dram_retry.is_empty() {
            let mut remaining = VecDeque::new();
            while let Some((core, paddr, is_write, meta)) = self.dram_retry.pop_front() {
                if self.dram.try_enqueue(self.now, core, paddr, is_write, meta).is_err() {
                    remaining.push_back((core, paddr, is_write, meta));
                }
            }
            self.dram_retry = remaining;
        }
        if self.walker_wait_order.iter().any(|q| !q.is_empty()) {
            self.drain_walker_wait();
        }

        // Rotate the starting core so no core gets systematic first pick of
        // DRAM queue slots (FCFS arbitration, not fixed priority).
        let n = self.cores.len();
        let start = (self.rr_start + 1) % n;
        self.rr_start = start;
        for k in 0..n {
            let ci = (start + k) % n;
            if self.cores[ci].finished() || self.cores[ci].start_cycle > self.now {
                continue;
            }
            self.progress_core(ci);
            self.issue_core(ci);
        }
    }

    fn issue_core(&mut self, ci: usize) {
        let budget = self.cfg.arch[ci].max_outstanding;
        self.cores[ci].blocked_on_dram = false;
        loop {
            if self.cores[ci].outstanding >= budget || self.cores[ci].blocked_on_dram {
                return;
            }
            // Pick the next transaction: the load stage first (it gates
            // compute), then the oldest store stage.
            let stage_id = {
                let rt = &self.cores[ci];
                let load = rt.load_stage.filter(|&s| self.stages[s].peek().is_some());
                let store = rt.active_stores.iter().copied().find(|&s| self.stages[s].peek().is_some());
                match load.or(store) {
                    Some(s) => s,
                    None => return,
                }
            };
            let vaddr = self.stages[stage_id].peek().expect("peeked above");
            if !self.try_issue_txn(ci, stage_id, vaddr) {
                return;
            }
        }
    }

    /// Issue one transaction; returns `false` when the core must stop
    /// issuing (DRAM queue full).
    fn try_issue_txn(&mut self, ci: usize, stage_id: usize, vaddr: u64) -> bool {
        let is_write = self.stages[stage_id].is_store;
        if self.mmu.is_none() {
            // Translation disabled: direct mapping, no MMU timing.
            let paddr = self.page_tables[ci].translate(vaddr);
            match self.dram.try_enqueue(self.now, ci, paddr, is_write, stage_id as u64) {
                Ok(()) => {
                    self.stages[stage_id].advance();
                    self.cores[ci].outstanding += 1;
                    true
                }
                Err(EnqueueError::QueueFull { .. }) => {
                    self.cores[ci].blocked_on_dram = true;
                    false
                }
            }
        } else {
            let mmu = self.mmu.as_mut().expect("checked above");
            let vpn = mmu.vpn_of(vaddr);
            let hit = mmu.lookup(ci, vpn);
            self.log(ci, if hit { LogKind::TlbHit } else { LogKind::TlbMiss }, vaddr);
            if hit {
                let paddr = self.page_tables[ci].translate(vaddr);
                match self.dram.try_enqueue(self.now, ci, paddr, is_write, stage_id as u64) {
                    Ok(()) => {
                        self.stages[stage_id].advance();
                        self.cores[ci].outstanding += 1;
                        true
                    }
                    Err(EnqueueError::QueueFull { .. }) => {
                        self.cores[ci].blocked_on_dram = true;
                        false
                    }
                }
            } else {
                // TLB miss: the transaction parks on a walk.
                self.stages[stage_id].advance();
                self.cores[ci].outstanding += 1;
                let mmu = self.mmu.as_mut().expect("checked above");
                match mmu.start_or_join_walk(ci, vpn) {
                    WalkStart::Started { walk, pt_addr } => {
                        self.log(ci, LogKind::WalkStart, pt_addr);
                        self.walk_waiters.insert(walk.raw(), vec![(stage_id, vaddr)]);
                        self.enqueue_or_retry(ci, pt_addr, false, META_WALK | walk.raw());
                    }
                    WalkStart::Joined(walk) => {
                        self.walk_waiters.entry(walk.raw()).or_default().push((stage_id, vaddr));
                    }
                    WalkStart::NoWalker => {
                        let entry = self.walker_waiters.entry((ci, vpn)).or_default();
                        if entry.is_empty() {
                            self.walker_wait_order[ci].push_back(vpn);
                        }
                        entry.push((stage_id, vaddr));
                    }
                }
                true
            }
        }
    }

    // --- reporting -----------------------------------------------------------

    fn report(self) -> RunReport {
        let total_cycles = self.cores.iter().filter_map(|c| c.finished_at).max().unwrap_or(0);
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(ci, rt)| {
                let finish = rt.finished_at.expect("core finished");
                let global = finish.saturating_sub(rt.start_cycle).max(1);
                let cycles = self.to_core(ci, global);
                let arch = &self.cfg.arch[ci];
                let macs: u64 = rt
                    .trace
                    .layers()
                    .iter()
                    .flat_map(|l| &l.tiles)
                    .map(|t| t.macs)
                    .sum::<u64>()
                    * self.cfg.iterations;
                let mut layer_cycles = Vec::with_capacity(rt.layer_finish.len());
                let mut prev = rt.start_cycle;
                for (l, &fin) in rt.layer_finish.iter().enumerate() {
                    let fin = fin.max(prev);
                    layer_cycles.push((
                        rt.trace.layers()[l].name.clone(),
                        self.to_core(ci, fin - prev),
                    ));
                    prev = fin;
                }
                CoreReport {
                    workload: rt.trace.name().to_string(),
                    cycles,
                    compute_cycles: rt.compute_cycles_total,
                    pe_utilization: macs as f64 / (arch.rows * arch.cols * cycles) as f64,
                    traffic_bytes: rt.data_txns * TRANSACTION_BYTES,
                    walk_bytes: rt.walk_txns * TRANSACTION_BYTES,
                    mmu: self.mmu.as_ref().map(|m| *m.stats(ci)).unwrap_or_default(),
                    layer_cycles,
                    footprint_bytes: rt.trace.footprint_bytes(),
                    noc_queue_cycles: self
                        .noc
                        .as_ref()
                        .map(|x| x.request_link(ci).queue_cycles() + x.response_link(ci).queue_cycles())
                        .unwrap_or(0),
                }
            })
            .collect();
        RunReport {
            cores,
            total_cycles,
            dram: self.dram.stats(),
            bandwidth_trace: self.dram.trace().cloned(),
            request_log: self.log.unwrap_or_default(),
        }
    }
}
