//! Trace invariants across the whole benchmark zoo: every generated trace
//! must satisfy the structural guarantees the engine relies on.

use mnpu_model::{zoo, Scale};
use mnpu_systolic::{ArchConfig, SpanKind, WorkloadTrace, VIRT_BASE};

fn traces() -> Vec<(String, WorkloadTrace, ArchConfig)> {
    let arch = ArchConfig::bench_npu();
    zoo::all(Scale::Bench)
        .into_iter()
        .map(|n| (n.name().to_string(), WorkloadTrace::generate(&n, &arch), arch.clone()))
        .collect()
}

#[test]
fn tile_working_sets_respect_the_spm_budget() {
    for (name, trace, arch) in traces() {
        let budget = arch.tile_budget_bytes();
        for (li, layer) in trace.layers().iter().enumerate() {
            for (ti, tile) in layer.tiles.iter().enumerate() {
                let bytes = tile.load_bytes();
                assert!(
                    bytes <= budget,
                    "{name} layer {li} tile {ti}: loads {bytes} exceed SPM half {budget}"
                );
            }
        }
    }
}

#[test]
fn spans_have_correct_kinds_and_positive_length() {
    for (name, trace, _) in traces() {
        for layer in trace.layers() {
            for tile in &layer.tiles {
                assert!(tile.loads.iter().all(|s| s.kind == SpanKind::Load), "{name}");
                assert!(tile.stores.iter().all(|s| s.kind == SpanKind::Store), "{name}");
                assert!(tile.loads.iter().chain(&tile.stores).all(|s| s.bytes > 0), "{name}");
            }
        }
    }
}

#[test]
fn every_store_lands_in_the_activation_arena() {
    // Stores go to the ping-pong activation buffers at the start of the
    // arena — never into weight or table regions.
    for (name, trace, _) in traces() {
        // The two activation buffers are the first allocations.
        let act_end = trace
            .layers()
            .iter()
            .flat_map(|l| &l.tiles)
            .flat_map(|t| &t.loads)
            .map(|s| s.addr)
            .min()
            .unwrap_or(VIRT_BASE);
        let _ = act_end;
        for layer in trace.layers() {
            for tile in &layer.tiles {
                for s in &tile.stores {
                    assert!(s.addr >= VIRT_BASE, "{name}: store below arena");
                    assert!(
                        s.addr + s.bytes <= VIRT_BASE + trace.footprint_bytes(),
                        "{name}: store beyond footprint"
                    );
                }
            }
        }
    }
}

#[test]
fn layer_counts_and_order_survive_tracing() {
    let arch = ArchConfig::bench_npu();
    for net in zoo::all(Scale::Bench) {
        let trace = WorkloadTrace::generate(&net, &arch);
        assert_eq!(trace.layers().len(), net.num_layers(), "{}", net.name());
        for (lt, l) in trace.layers().iter().zip(net.iter()) {
            assert_eq!(lt.name, l.name(), "{}", net.name());
            assert!(!lt.tiles.is_empty(), "{}/{}", net.name(), l.name());
        }
    }
}

#[test]
fn bigger_spm_never_increases_tile_count() {
    let small = ArchConfig::bench_npu();
    let big = ArchConfig { spm_bytes: small.spm_bytes * 4, ..small.clone() };
    for net in zoo::all(Scale::Bench) {
        let ts = WorkloadTrace::generate(&net, &small).total_tiles();
        let tb = WorkloadTrace::generate(&net, &big).total_tiles();
        assert!(tb <= ts, "{}: {tb} > {ts}", net.name());
    }
}

#[test]
fn compute_cycles_scale_inversely_with_array_size() {
    let small = ArchConfig { rows: 16, cols: 16, ..ArchConfig::bench_npu() };
    let big = ArchConfig { rows: 64, cols: 64, ..ArchConfig::bench_npu() };
    for net in zoo::all(Scale::Bench) {
        let cs = WorkloadTrace::generate(&net, &small).total_compute_cycles();
        let cb = WorkloadTrace::generate(&net, &big).total_compute_cycles();
        assert!(cb < cs, "{}: bigger array must compute faster", net.name());
    }
}
