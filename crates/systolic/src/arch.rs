//! NPU core hardware configuration (the paper's `arch_config`).

/// Dataflow executed by the systolic array.
///
/// The paper implements the output-stationary dataflow ("implementing other
/// dataflows such as weight stationary is our future work"); we additionally
/// provide weight-stationary timing as an extension, selectable per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Each PE accumulates one output element; inputs stream through.
    #[default]
    OutputStationary,
    /// Weights are pinned in the array; inputs stream through (extension).
    WeightStationary,
}

/// Per-core NPU compute configuration: systolic-array geometry, scratchpad
/// capacity, clock, and DMA depth.
///
/// Corresponds to mNPUsim's `arch_config` file. Memory-side parameters (TLB,
/// PTW) live in `mnpu-mmu`; the DRAM configuration lives in `mnpu-dram`.
///
/// ```
/// use mnpu_systolic::ArchConfig;
///
/// let tpu = ArchConfig::cloud_npu();
/// assert_eq!(tpu.rows, 128);
/// assert_eq!(tpu.spm_bytes, 36 << 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArchConfig {
    /// Systolic-array rows.
    pub rows: u64,
    /// Systolic-array columns.
    pub cols: u64,
    /// On-chip scratchpad capacity in bytes (double-buffered: half is the
    /// per-tile working-set budget).
    pub spm_bytes: u64,
    /// Core clock frequency in MHz.
    pub freq_mhz: u64,
    /// Dataflow mapping.
    pub dataflow: Dataflow,
    /// Maximum in-flight DMA transactions between SPM and DRAM.
    pub max_outstanding: usize,
}

impl ArchConfig {
    /// The paper's Table 2 cloud-scale configuration: a TPUv4-like core with
    /// a 128×128 array, 36 MB SPM, and a 1 GHz clock.
    pub fn cloud_npu() -> Self {
        ArchConfig {
            rows: 128,
            cols: 128,
            spm_bytes: 36 << 20,
            freq_mhz: 1000,
            dataflow: Dataflow::OutputStationary,
            max_outstanding: 256,
        }
    }

    /// A proportionally shrunk core used with [`mnpu_model::Scale::Bench`]
    /// workloads so full sweeps finish quickly: 32×32 array, 1 MB SPM. The
    /// compute-rate : bandwidth : translation-rate ratios track the cloud
    /// preset so sweep shapes are preserved.
    pub fn bench_npu() -> Self {
        ArchConfig {
            rows: 32,
            cols: 32,
            spm_bytes: 1 << 20,
            freq_mhz: 1000,
            dataflow: Dataflow::OutputStationary,
            max_outstanding: 256,
        }
    }

    /// The per-tile SPM budget under double buffering (half the SPM).
    pub fn tile_budget_bytes(&self) -> u64 {
        self.spm_bytes / 2
    }

    /// Validate the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any dimension, the clock, the DMA depth is zero, or
    /// the SPM is too small to hold even a minimal double-buffered tile.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("systolic array dimensions must be positive".into());
        }
        if self.freq_mhz == 0 {
            return Err("core frequency must be positive".into());
        }
        if self.max_outstanding == 0 {
            return Err("DMA depth must be positive".into());
        }
        if self.tile_budget_bytes() < 4096 {
            return Err(format!(
                "SPM of {} bytes is too small to double-buffer tiles",
                self.spm_bytes
            ));
        }
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig::cloud_npu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ArchConfig::cloud_npu().validate().is_ok());
        assert!(ArchConfig::bench_npu().validate().is_ok());
    }

    #[test]
    fn table2_parameters() {
        let a = ArchConfig::cloud_npu();
        assert_eq!((a.rows, a.cols), (128, 128));
        assert_eq!(a.spm_bytes, 36 * 1024 * 1024);
        assert_eq!(a.freq_mhz, 1000);
        assert_eq!(a.dataflow, Dataflow::OutputStationary);
    }

    #[test]
    fn tile_budget_is_half_spm() {
        let a = ArchConfig::bench_npu();
        assert_eq!(a.tile_budget_bytes(), a.spm_bytes / 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut a = ArchConfig::cloud_npu();
        a.rows = 0;
        assert!(a.validate().is_err());

        let mut b = ArchConfig::cloud_npu();
        b.spm_bytes = 1024;
        assert!(b.validate().is_err());

        let mut c = ArchConfig::cloud_npu();
        c.freq_mhz = 0;
        assert!(c.validate().is_err());

        let mut d = ArchConfig::cloud_npu();
        d.max_outstanding = 0;
        assert!(d.validate().is_err());
    }
}
