//! SPM tile-size selection under the double-buffering constraint.
//!
//! A tile's working set — the `A` sub-panel, `B` sub-panel and `C` output
//! block it touches — must fit in half the scratchpad so the DMA engine can
//! fill the other half for the next tile while the array computes
//! (the paper's Fig. 2a pipeline).

use crate::arch::ArchConfig;
use mnpu_model::{DataType, GemmSpec};

/// A chosen tile shape `(tm, tk, tn)` for executing a GEMM from SPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Tile extent along `M`.
    pub tm: u64,
    /// Tile extent along `K`.
    pub tk: u64,
    /// Tile extent along `N`.
    pub tn: u64,
}

impl TileShape {
    /// Bytes of SPM the tile working set occupies.
    pub const fn working_set_bytes(&self, dtype: DataType) -> u64 {
        (self.tm * self.tk + self.tk * self.tn + self.tm * self.tn) * dtype.bytes()
    }

    /// Number of tiles needed to cover `gemm` with this shape.
    pub const fn tile_count(&self, gemm: GemmSpec) -> u64 {
        gemm.m.div_ceil(self.tm) * gemm.k.div_ceil(self.tk) * gemm.n.div_ceil(self.tn)
    }
}

/// Choose a tile shape for `gemm` that fits the core's per-tile SPM budget.
///
/// The heuristic keeps the *row-contiguous* dimension `n` whole whenever
/// possible (full-width `B`/`C` panels give single-span, page-friendly DMA
/// bursts — what real NPU tilers do), slicing the contraction dimension `k`
/// instead, and only splitting `n` when a single row panel cannot fit:
///
/// 1. start from `tm = min(m, rows)`, `tk = k`, `tn = n`;
/// 2. shrink `tk`, then `tn`, then `tm` (halving) until the working set
///    fits half the SPM;
/// 3. grow `tm`, then `tk`, then `tn` (doubling) while it still fits, to
///    minimize re-streaming of the weight panel.
///
/// The result always satisfies
/// `working_set_bytes(dtype) <= arch.tile_budget_bytes()`.
///
/// # Panics
///
/// Panics if any GEMM dimension is zero or the budget cannot hold even a
/// `1 x 1 x 1` tile (prevented for all valid [`ArchConfig`]s).
pub fn choose_tile(gemm: GemmSpec, arch: &ArchConfig, dtype: DataType) -> TileShape {
    assert!(gemm.m > 0 && gemm.k > 0 && gemm.n > 0, "gemm dimensions must be positive");
    let budget = arch.tile_budget_bytes();
    let fits = |t: TileShape| t.working_set_bytes(dtype) <= budget;

    let mut t = TileShape { tm: gemm.m.min(arch.rows), tk: gemm.k, tn: gemm.n };
    while !fits(t) && t.tk > 1 {
        t.tk = (t.tk / 2).max(1);
    }
    while !fits(t) && t.tn > 1 {
        t.tn = (t.tn / 2).max(1);
    }
    while !fits(t) && t.tm > 1 {
        t.tm = (t.tm / 2).max(1);
    }
    assert!(fits(t), "SPM budget of {budget} bytes cannot hold a minimal tile");

    // Grow dimensions back while there is room: M first (amortizes the
    // streamed B panel over more output rows), then K, then N.
    let grow = |cur: u64, max: u64, f: &dyn Fn(u64) -> TileShape| -> u64 {
        let mut v = cur;
        while v < max {
            let next = (v * 2).min(max);
            if fits(f(next)) {
                v = next;
            } else {
                break;
            }
        }
        v
    };
    t.tm = grow(t.tm, gemm.m, &|v| TileShape { tm: v, ..t });
    t.tk = grow(t.tk, gemm.k, &|v| TileShape { tk: v, ..t });
    t.tn = grow(t.tn, gemm.n, &|v| TileShape { tn: v, ..t });
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bench_arch() -> ArchConfig {
        ArchConfig::bench_npu()
    }

    #[test]
    fn small_gemm_single_tile() {
        let g = GemmSpec::new(16, 64, 16);
        let t = choose_tile(g, &bench_arch(), DataType::Fp16);
        assert_eq!(t.tile_count(g), 1);
        assert_eq!((t.tm, t.tk, t.tn), (16, 64, 16));
    }

    #[test]
    fn tile_respects_budget() {
        let arch = bench_arch();
        let g = GemmSpec::new(4096, 4096, 4096);
        let t = choose_tile(g, &arch, DataType::Fp16);
        assert!(t.working_set_bytes(DataType::Fp16) <= arch.tile_budget_bytes());
        assert!(t.tile_count(g) > 1);
    }

    #[test]
    fn degenerate_m1_fc_layer() {
        let g = GemmSpec::new(1, 9216, 4096);
        let t = choose_tile(g, &bench_arch(), DataType::Fp16);
        assert_eq!(t.tm, 1);
        assert!(t.working_set_bytes(DataType::Fp16) <= bench_arch().tile_budget_bytes());
    }

    #[test]
    fn bigger_budget_never_more_tiles() {
        let g = GemmSpec::new(512, 2048, 512);
        let small = choose_tile(g, &bench_arch(), DataType::Fp16).tile_count(g);
        let big_arch = ArchConfig { spm_bytes: 8 << 20, ..bench_arch() };
        let big = choose_tile(g, &big_arch, DataType::Fp16).tile_count(g);
        assert!(big <= small);
    }

    #[test]
    fn fp32_needs_smaller_tiles() {
        let g = GemmSpec::new(1024, 1024, 1024);
        let arch = bench_arch();
        let t16 = choose_tile(g, &arch, DataType::Fp16);
        let t32 = choose_tile(g, &arch, DataType::Fp32);
        assert!(t32.working_set_bytes(DataType::Fp32) <= arch.tile_budget_bytes());
        assert!(t32.tile_count(g) >= t16.tile_count(g));
    }

    proptest! {
        #[test]
        fn prop_tile_fits_and_covers(m in 1u64..3000, k in 1u64..3000, n in 1u64..3000) {
            let g = GemmSpec::new(m, k, n);
            let arch = bench_arch();
            let t = choose_tile(g, &arch, DataType::Fp16);
            prop_assert!(t.tm >= 1 && t.tk >= 1 && t.tn >= 1);
            prop_assert!(t.tm <= m && t.tk <= k && t.tn <= n);
            prop_assert!(t.working_set_bytes(DataType::Fp16) <= arch.tile_budget_bytes());
            // Tiles cover the iteration space exactly.
            prop_assert!(t.tile_count(g) >= 1);
            prop_assert!((t.tile_count(g)) * t.tm * t.tk * t.tn >= m * k * n);
        }

        #[test]
        fn prop_single_tile_when_it_fits(m in 1u64..64, k in 1u64..64, n in 1u64..64) {
            let g = GemmSpec::new(m, k, n);
            let arch = bench_arch();
            let whole = TileShape { tm: m, tk: k, tn: n };
            if whole.working_set_bytes(DataType::Fp16) <= arch.tile_budget_bytes()
                && m <= arch.rows && n <= arch.cols
            {
                let t = choose_tile(g, &arch, DataType::Fp16);
                prop_assert_eq!(t.tile_count(g), 1);
            }
        }
    }
}
