//! Analytical systolic-array timing (SCALE-Sim style).
//!
//! For a GEMM of shape `M x K x N` on an `R x C` array:
//!
//! * **Output stationary**: the `M x N` output is partitioned into
//!   `ceil(M/R) * ceil(N/C)` folds. A fold using `r' <= R` rows and
//!   `c' <= C` columns takes `2*r' + c' + K - 2` cycles: `r'` cycles of
//!   skewed fill, `K` cycles of streaming, and `r' + c' - 2` cycles of
//!   drain skew.
//! * **Weight stationary** (extension): the `K x N` weight matrix is
//!   partitioned into `ceil(K/R) * ceil(N/C)` folds; each fold takes
//!   `r' + c' + M - 1` cycles after a `r'`-cycle weight preload.

use crate::arch::{ArchConfig, Dataflow};
use mnpu_model::GemmSpec;

/// Timing summary of a GEMM (or a GEMM tile) on the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmTiming {
    /// Total compute cycles.
    pub cycles: u64,
    /// MAC operations performed (`m * k * n`).
    pub macs: u64,
    /// PE-cycles during which a PE held useful work.
    pub active_pe_cycles: u64,
    /// Total PE-cycles available (`rows * cols * cycles`).
    pub total_pe_cycles: u64,
}

impl GemmTiming {
    /// PE utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_pe_cycles == 0 {
            return 0.0;
        }
        self.active_pe_cycles as f64 / self.total_pe_cycles as f64
    }
}

/// Cycles for a single fold of `r_used x c_used` PEs streaming a temporal
/// dimension `k` (output-stationary).
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn fold_cycles(r_used: u64, c_used: u64, k: u64) -> u64 {
    assert!(r_used > 0 && c_used > 0 && k > 0, "fold dimensions must be positive");
    2 * r_used + c_used + k - 2
}

/// Full analytical timing for a GEMM on the given core.
///
/// # Panics
///
/// Panics if any GEMM dimension is zero.
pub fn gemm_cycles(gemm: GemmSpec, arch: &ArchConfig) -> GemmTiming {
    assert!(gemm.m > 0 && gemm.k > 0 && gemm.n > 0, "gemm dimensions must be positive");
    let (r, c) = (arch.rows, arch.cols);
    match arch.dataflow {
        Dataflow::OutputStationary => {
            // Folds over the output: full folds are identical; at most one
            // ragged row-fold, one ragged column-fold and one corner fold.
            let full_r = gemm.m / r;
            let rem_r = gemm.m % r;
            let full_c = gemm.n / c;
            let rem_c = gemm.n % c;
            let mut cycles = 0u64;
            let mut add = |count: u64, ru: u64, cu: u64| {
                if count > 0 && ru > 0 && cu > 0 {
                    cycles += count * fold_cycles(ru, cu, gemm.k);
                }
            };
            add(full_r * full_c, r, c);
            add(full_c * u64::from(rem_r > 0), rem_r, c);
            add(full_r * u64::from(rem_c > 0), r, rem_c);
            add(u64::from(rem_r > 0 && rem_c > 0), rem_r, rem_c);
            GemmTiming {
                cycles,
                macs: gemm.macs(),
                active_pe_cycles: gemm.macs(),
                total_pe_cycles: r * c * cycles,
            }
        }
        Dataflow::WeightStationary => {
            let full_r = gemm.k / r;
            let rem_r = gemm.k % r;
            let full_c = gemm.n / c;
            let rem_c = gemm.n % c;
            let mut cycles = 0u64;
            let mut add = |count: u64, ru: u64, cu: u64| {
                if count > 0 && ru > 0 && cu > 0 {
                    // Preload weights (ru), stream M inputs, drain skew.
                    cycles += count * (ru + cu + gemm.m + ru - 1);
                }
            };
            add(full_r * full_c, r, c);
            add(full_c * u64::from(rem_r > 0), rem_r, c);
            add(full_r * u64::from(rem_c > 0), r, rem_c);
            add(u64::from(rem_r > 0 && rem_c > 0), rem_r, rem_c);
            GemmTiming {
                cycles,
                macs: gemm.macs(),
                active_pe_cycles: gemm.macs(),
                total_pe_cycles: r * c * cycles,
            }
        }
    }
}

/// PE utilization of a GEMM on the given core; shorthand for
/// [`gemm_cycles`]`.utilization()`.
pub fn gemm_utilization(gemm: GemmSpec, arch: &ArchConfig) -> f64 {
    gemm_cycles(gemm, arch).utilization()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch(r: u64, c: u64) -> ArchConfig {
        ArchConfig { rows: r, cols: c, ..ArchConfig::bench_npu() }
    }

    #[test]
    fn single_fold_formula() {
        // 4x4 array, gemm 4x10x4: one fold of 2*4 + 4 + 10 - 2 = 20 cycles.
        let t = gemm_cycles(GemmSpec::new(4, 10, 4), &arch(4, 4));
        assert_eq!(t.cycles, 20);
        assert_eq!(t.macs, 160);
    }

    #[test]
    fn ragged_folds_counted() {
        // 4x4 array, gemm 6x8x6 -> folds: (4,4), (4,2), (2,4), (2,2).
        let t = gemm_cycles(GemmSpec::new(6, 8, 6), &arch(4, 4));
        let expect = fold_cycles(4, 4, 8)
            + fold_cycles(4, 2, 8)
            + fold_cycles(2, 4, 8)
            + fold_cycles(2, 2, 8);
        assert_eq!(t.cycles, expect);
    }

    #[test]
    fn multiple_full_folds() {
        // 2x2 array, gemm 4x5x4 -> 4 identical full folds.
        let t = gemm_cycles(GemmSpec::new(4, 5, 4), &arch(2, 2));
        assert_eq!(t.cycles, 4 * fold_cycles(2, 2, 5));
    }

    #[test]
    fn utilization_bounds() {
        for (m, k, n) in [(1, 1, 1), (128, 128, 128), (37, 113, 91), (1, 4096, 1000)] {
            let t = gemm_cycles(GemmSpec::new(m, k, n), &arch(16, 16));
            let u = t.utilization();
            assert!(u > 0.0 && u <= 1.0, "({m},{k},{n}) -> {u}");
        }
    }

    #[test]
    fn big_k_amortizes_skew() {
        // Larger K should raise utilization (skew amortized).
        let small = gemm_utilization(GemmSpec::new(16, 16, 16), &arch(16, 16));
        let large = gemm_utilization(GemmSpec::new(16, 4096, 16), &arch(16, 16));
        assert!(large > small);
        assert!(large > 0.9);
    }

    #[test]
    fn small_tensors_underutilize_large_arrays() {
        // The motivation for multi-core NPUs (paper §2.1): a small GEMM on a
        // big monolithic array wastes most PEs.
        let big = gemm_utilization(GemmSpec::new(8, 256, 8), &arch(128, 128));
        let small = gemm_utilization(GemmSpec::new(8, 256, 8), &arch(8, 8));
        assert!(big < 0.01);
        assert!(small > 0.5);
    }

    #[test]
    fn weight_stationary_differs() {
        let os = gemm_cycles(GemmSpec::new(64, 64, 64), &arch(16, 16));
        let mut a = arch(16, 16);
        a.dataflow = Dataflow::WeightStationary;
        let ws = gemm_cycles(GemmSpec::new(64, 64, 64), &a);
        assert_ne!(os.cycles, ws.cycles);
        assert_eq!(os.macs, ws.macs);
    }

    #[test]
    fn cycles_monotone_in_each_dim() {
        let a = arch(16, 16);
        let base = gemm_cycles(GemmSpec::new(32, 32, 32), &a).cycles;
        assert!(gemm_cycles(GemmSpec::new(64, 32, 32), &a).cycles > base);
        assert!(gemm_cycles(GemmSpec::new(32, 64, 32), &a).cycles > base);
        assert!(gemm_cycles(GemmSpec::new(32, 32, 64), &a).cycles > base);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        let _ = gemm_cycles(GemmSpec { m: 0, k: 1, n: 1 }, &arch(4, 4));
    }
}
