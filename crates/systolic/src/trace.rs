//! Workload trace generation: per-tile compute cycles and DRAM request
//! spans in the core's virtual address space.

use crate::arch::ArchConfig;
use crate::gemm_timing::gemm_cycles;
use crate::tiling::{choose_tile, TileShape};
use mnpu_model::{DataType, GemmSpec, Layer, LayerKind, Network};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Base virtual address of a core's tensor arena. Leaving page zero and the
/// low region unmapped catches stray-address bugs in tests.
pub const VIRT_BASE: u64 = 0x1000_0000;

/// Direction of a DRAM access span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// DRAM → SPM (tile fill).
    Load,
    /// SPM → DRAM (tile writeback).
    Store,
}

/// A contiguous virtual-address range accessed by one tile.
///
/// Spans are later split into page-sized translation units and 64-byte DRAM
/// transactions by the engine; keeping them coalesced here keeps traces
/// compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemSpan {
    /// Starting virtual address.
    pub addr: u64,
    /// Length in bytes (always positive).
    pub bytes: u64,
    /// Load or store.
    pub kind: SpanKind,
}

/// One schedulable unit of work: fill the SPM half-buffer, run the array,
/// write back results. Tiles of a layer execute in order with
/// double-buffered overlap (the engine models the overlap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Systolic-array cycles for this tile (core clock).
    pub compute_cycles: u64,
    /// MACs performed by this tile.
    pub macs: u64,
    /// DRAM→SPM spans that must complete before compute starts.
    pub loads: Vec<MemSpan>,
    /// SPM→DRAM spans issued after compute finishes.
    pub stores: Vec<MemSpan>,
}

impl Tile {
    /// Bytes loaded by this tile.
    pub fn load_bytes(&self) -> u64 {
        self.loads.iter().map(|s| s.bytes).sum()
    }

    /// Bytes stored by this tile.
    pub fn store_bytes(&self) -> u64 {
        self.stores.iter().map(|s| s.bytes).sum()
    }
}

/// The trace of one layer: its lowered GEMM, chosen tile shape, and tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Layer name from the model.
    pub name: String,
    /// Lowered GEMM shape.
    pub gemm: GemmSpec,
    /// Tile shape chosen by the tiler (meaningless for embedding gathers).
    pub tile_shape: TileShape,
    /// Tiles in execution order.
    pub tiles: Vec<Tile>,
}

impl LayerTrace {
    /// Total compute cycles of the layer.
    pub fn compute_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.compute_cycles).sum()
    }

    /// Total DRAM traffic (loads + stores) in bytes.
    pub fn traffic_bytes(&self) -> u64 {
        self.tiles.iter().map(|t| t.load_bytes() + t.store_bytes()).sum()
    }
}

/// A complete, memory-system-agnostic program for one NPU core.
///
/// Produced by [`WorkloadTrace::generate`]; consumed by `mnpu-engine`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadTrace {
    name: String,
    dtype: DataType,
    layers: Vec<LayerTrace>,
    footprint_bytes: u64,
}

impl WorkloadTrace {
    /// Generate the trace of `net` on the core described by `arch`.
    ///
    /// Address layout (all regions page-aligned within the virtual arena
    /// starting at [`VIRT_BASE`]):
    ///
    /// * per-layer weight regions, allocated in layer order;
    /// * two activation ping-pong buffers sized for the largest activation
    ///   (layer *i* reads buffer *i mod 2* and writes buffer *(i+1) mod 2*);
    /// * per-embedding-layer table regions.
    ///
    /// # Panics
    ///
    /// Panics if `arch` fails [`ArchConfig::validate`].
    pub fn generate(net: &Network, arch: &ArchConfig) -> WorkloadTrace {
        if let Err(e) = arch.validate() {
            panic!("invalid arch config: {e}");
        }
        let e = net.dtype().bytes();
        let page = 4096u64;
        let align = |x: u64| x.div_ceil(page) * page;

        // --- Address layout ---------------------------------------------
        let mut cursor = VIRT_BASE;
        let mut alloc = |bytes: u64| {
            let base = cursor;
            cursor += align(bytes);
            base
        };

        // Activation ping-pong buffers sized for the largest input/output.
        let max_act = net
            .iter()
            .map(|l| {
                let g = l.to_gemm();
                (g.input_elems() * e).max(g.output_elems() * e)
            })
            .max()
            .unwrap_or(page);
        let act = [alloc(max_act), alloc(max_act)];

        let mut weight_base = Vec::with_capacity(net.num_layers());
        let mut table_base = Vec::with_capacity(net.num_layers());
        for l in net.iter() {
            match l.kind() {
                LayerKind::Embedding(emb) => {
                    weight_base.push(0);
                    table_base.push(alloc(emb.table_elems() * e));
                }
                _ => {
                    weight_base.push(alloc(l.to_gemm().weight_elems() * e));
                    table_base.push(0);
                }
            }
        }

        // --- Per-layer trace ---------------------------------------------
        let mut layers = Vec::with_capacity(net.num_layers());
        for (i, l) in net.iter().enumerate() {
            let a_base = act[i % 2];
            let c_base = act[(i + 1) % 2];
            let lt = match l.kind() {
                LayerKind::Embedding(_) => {
                    trace_embedding_layer(l, arch, e, table_base[i], c_base, i as u64)
                }
                _ => trace_gemm_layer(l, arch, e, a_base, weight_base[i], c_base),
            };
            layers.push(lt);
        }

        WorkloadTrace {
            name: net.name().to_string(),
            dtype: net.dtype(),
            layers,
            footprint_bytes: cursor - VIRT_BASE,
        }
    }

    /// A trace with no layers and no footprint: the workload of a vacant
    /// core. An engine core bound to it finishes immediately without
    /// touching memory, which is how a scheduler represents "nothing is
    /// running here" without special-casing the event loop.
    pub fn empty() -> WorkloadTrace {
        WorkloadTrace {
            name: String::new(),
            dtype: DataType::Int8,
            layers: Vec::new(),
            footprint_bytes: 0,
        }
    }

    /// Workload name (the network's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element datatype.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Per-layer traces in execution order.
    pub fn layers(&self) -> &[LayerTrace] {
        &self.layers
    }

    /// Virtual memory footprint in bytes (weights + activations + tables).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Sum of all tiles' compute cycles (a lower bound on execution time,
    /// reached when memory never stalls the pipeline).
    pub fn total_compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles()).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.traffic_bytes()).sum()
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().flat_map(|l| &l.tiles).map(|t| t.macs).sum()
    }

    /// Compute-only PE utilization: MACs over PE-cycles while computing.
    pub fn pe_utilization(&self, arch: &ArchConfig) -> f64 {
        let cycles = self.total_compute_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_macs() as f64 / (arch.rows * arch.cols * cycles) as f64
    }

    /// Total number of tiles across all layers.
    pub fn total_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.tiles.len()).sum()
    }
}

/// Emit spans for a row-major sub-matrix `rows x cols` region within a
/// matrix of `row_stride` columns, starting at element `(r0, c0)`.
#[allow(clippy::too_many_arguments)]
fn submatrix_spans(
    base: u64,
    row_stride: u64,
    r0: u64,
    c0: u64,
    rows: u64,
    cols: u64,
    elem: u64,
    kind: SpanKind,
    out: &mut Vec<MemSpan>,
) {
    debug_assert!(rows > 0 && cols > 0);
    if cols == row_stride {
        // Full-width rows are contiguous: one span.
        out.push(MemSpan { addr: base + r0 * row_stride * elem, bytes: rows * cols * elem, kind });
        return;
    }
    for r in r0..r0 + rows {
        out.push(MemSpan { addr: base + (r * row_stride + c0) * elem, bytes: cols * elem, kind });
    }
}

fn trace_gemm_layer(
    layer: &Layer,
    arch: &ArchConfig,
    e: u64,
    a_base: u64,
    b_base: u64,
    c_base: u64,
) -> LayerTrace {
    let gemm = layer.to_gemm();
    let shape = choose_tile(gemm, arch, DataType::Fp16);
    let (tm, tk, tn) = (shape.tm, shape.tk, shape.tn);
    let k_chunks = gemm.k.div_ceil(tk);
    let mut tiles = Vec::new();

    let mut mi = 0;
    while mi < gemm.m {
        let cur_m = tm.min(gemm.m - mi);
        let mut ni = 0;
        while ni < gemm.n {
            let cur_n = tn.min(gemm.n - ni);
            let mut ki = 0;
            let mut kc = 0;
            while ki < gemm.k {
                let cur_k = tk.min(gemm.k - ki);
                let mut loads = Vec::new();
                submatrix_spans(
                    a_base,
                    gemm.k,
                    mi,
                    ki,
                    cur_m,
                    cur_k,
                    e,
                    SpanKind::Load,
                    &mut loads,
                );
                submatrix_spans(
                    b_base,
                    gemm.n,
                    ki,
                    ni,
                    cur_k,
                    cur_n,
                    e,
                    SpanKind::Load,
                    &mut loads,
                );
                let mut stores = Vec::new();
                if kc == k_chunks - 1 {
                    submatrix_spans(
                        c_base,
                        gemm.n,
                        mi,
                        ni,
                        cur_m,
                        cur_n,
                        e,
                        SpanKind::Store,
                        &mut stores,
                    );
                }
                let t = gemm_cycles(GemmSpec::new(cur_m, cur_k, cur_n), arch);
                tiles.push(Tile { compute_cycles: t.cycles, macs: t.macs, loads, stores });
                ki += cur_k;
                kc += 1;
            }
            ni += cur_n;
        }
        mi += cur_m;
    }

    LayerTrace { name: layer.name().to_string(), gemm, tile_shape: shape, tiles }
}

fn trace_embedding_layer(
    layer: &Layer,
    arch: &ArchConfig,
    e: u64,
    table_base: u64,
    c_base: u64,
    seed: u64,
) -> LayerTrace {
    let LayerKind::Embedding(emb) = *layer.kind() else {
        unreachable!("caller checked the kind");
    };
    let gemm = layer.to_gemm();
    let row_bytes = emb.embed_dim * e;
    let total_lookups = layer.batch() * emb.tables * emb.lookups;
    // Group gathers into tiles whose rows fit the SPM half-buffer.
    let per_tile = (arch.tile_budget_bytes() / row_bytes).max(1);
    let n_tiles = total_lookups.div_ceil(per_tile);
    let timing = gemm_cycles(gemm, arch);
    let mut rng = StdRng::seed_from_u64(0x454d_4245_4444 ^ seed); // "EMBEDD"

    let mut tiles = Vec::with_capacity(n_tiles as usize);
    let mut remaining = total_lookups;
    let out_bytes_total = gemm.output_elems() * e;
    let mut out_cursor = 0u64;
    for ti in 0..n_tiles {
        let lookups = per_tile.min(remaining);
        remaining -= lookups;
        let mut loads = Vec::with_capacity(lookups as usize);
        for j in 0..lookups {
            let table = ((ti * per_tile + j) / emb.lookups.max(1)) % emb.tables;
            // Embedding popularity is heavily skewed in practice: most
            // lookups hit a small hot set. Model it as 80% of gathers from
            // the hottest 1/16th of each table, the rest uniform — this
            // gives the recommendation workloads realistic page locality
            // instead of an adversarial uniform scatter.
            let hot_rows = (emb.rows_per_table / 16).max(1);
            let row: u64 = if rng.random_range(0..100) < 80 {
                rng.random_range(0..hot_rows)
            } else {
                rng.random_range(0..emb.rows_per_table)
            };
            let addr = table_base + (table * emb.rows_per_table + row) * row_bytes;
            loads.push(MemSpan { addr, bytes: row_bytes, kind: SpanKind::Load });
        }
        // Proportional share of the reduced output written back.
        let out_share = if ti == n_tiles - 1 {
            out_bytes_total - out_cursor
        } else {
            (out_bytes_total / n_tiles).max(e)
        };
        let stores = if out_share > 0 {
            vec![MemSpan { addr: c_base + out_cursor, bytes: out_share, kind: SpanKind::Store }]
        } else {
            Vec::new()
        };
        out_cursor += out_share;
        tiles.push(Tile {
            compute_cycles: (timing.cycles / n_tiles).max(1),
            macs: timing.macs / n_tiles,
            loads,
            stores,
        });
    }

    LayerTrace {
        name: layer.name().to_string(),
        gemm,
        tile_shape: TileShape { tm: per_tile, tk: emb.embed_dim, tn: 1 },
        tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_model::{zoo, EmbeddingSpec, Scale};

    fn bench() -> ArchConfig {
        ArchConfig::bench_npu()
    }

    fn mlp() -> Network {
        Network::new(
            "mlp",
            vec![
                Layer::gemm("fc1", GemmSpec::new(8, 256, 128)),
                Layer::gemm("fc2", GemmSpec::new(8, 128, 64)),
            ],
        )
    }

    #[test]
    fn trace_has_one_layertrace_per_layer() {
        let t = WorkloadTrace::generate(&mlp(), &bench());
        assert_eq!(t.layers().len(), 2);
        assert_eq!(t.name(), "mlp");
    }

    #[test]
    fn traffic_matches_model_accounting() {
        // For a single-k-chunk tiling, trace traffic equals the model's
        // analytic total (each element moved exactly once).
        let net = mlp();
        let t = WorkloadTrace::generate(&net, &bench());
        assert_eq!(t.total_traffic_bytes(), net.summary().total_traffic_bytes);
    }

    #[test]
    fn k_split_rereads_a_and_b_once_per_chunk() {
        // Force multi-chunk K with a tiny SPM.
        let arch = ArchConfig { spm_bytes: 16 << 10, ..bench() };
        let g = GemmSpec::new(64, 4096, 64);
        let net = Network::new("big_k", vec![Layer::gemm("fc", g)]);
        let t = WorkloadTrace::generate(&net, &arch);
        let lt = &t.layers()[0];
        let k_chunks = g.k.div_ceil(lt.tile_shape.tk);
        assert!(k_chunks > 1, "test needs a k-split");
        // Stores happen exactly once per (m,n) block regardless of k-chunks.
        let store_bytes: u64 = lt.tiles.iter().map(Tile::store_bytes).sum();
        assert_eq!(store_bytes, g.output_elems() * 2);
    }

    #[test]
    fn spans_stay_inside_footprint() {
        for name in ["alex", "dlrm", "gpt2"] {
            let net = zoo::by_name(name, Scale::Bench).unwrap();
            let t = WorkloadTrace::generate(&net, &bench());
            let hi = VIRT_BASE + t.footprint_bytes();
            for lt in t.layers() {
                for tile in &lt.tiles {
                    for s in tile.loads.iter().chain(&tile.stores) {
                        assert!(s.bytes > 0);
                        assert!(s.addr >= VIRT_BASE, "{name}: span below arena");
                        assert!(s.addr + s.bytes <= hi, "{name}: span beyond footprint");
                    }
                }
            }
        }
    }

    #[test]
    fn compute_cycles_close_to_untiled_model() {
        // Tiling adds fill/drain overhead but should stay within 2x of the
        // untiled analytical cycles for a regular conv layer.
        let net = zoo::yolo_tiny(Scale::Bench);
        let arch = bench();
        let t = WorkloadTrace::generate(&net, &arch);
        for (lt, l) in t.layers().iter().zip(net.iter()) {
            let untiled = gemm_cycles(l.to_gemm(), &arch).cycles;
            let tiled = lt.compute_cycles();
            assert!(tiled >= untiled, "{}", lt.name);
            assert!(tiled < untiled * 2, "{}: {tiled} vs {untiled}", lt.name);
        }
    }

    #[test]
    fn embedding_layer_gathers_rows() {
        let emb = EmbeddingSpec { tables: 4, rows_per_table: 1000, embed_dim: 32, lookups: 8 };
        let net = Network::new("emb", vec![Layer::new("e", LayerKind::Embedding(emb), 2)]);
        let t = WorkloadTrace::generate(&net, &bench());
        let lt = &t.layers()[0];
        let n_loads: usize = lt.tiles.iter().map(|t| t.loads.len()).sum();
        assert_eq!(n_loads as u64, 2 * 4 * 8);
        let row_bytes = 32 * 2;
        for tile in &lt.tiles {
            for s in &tile.loads {
                assert_eq!(s.bytes, row_bytes);
            }
        }
    }

    #[test]
    fn embedding_trace_is_deterministic() {
        let net = zoo::dlrm(Scale::Bench);
        let a = WorkloadTrace::generate(&net, &bench());
        let b = WorkloadTrace::generate(&net, &bench());
        assert_eq!(a, b);
    }

    #[test]
    fn utilization_in_unit_interval() {
        for net in zoo::all(Scale::Bench) {
            let arch = bench();
            let t = WorkloadTrace::generate(&net, &arch);
            let u = t.pe_utilization(&arch);
            assert!(u > 0.0 && u <= 1.0, "{}: {}", net.name(), u);
        }
    }

    #[test]
    fn ping_pong_buffers_alternate() {
        let net = mlp();
        let t = WorkloadTrace::generate(&net, &bench());
        // Layer 0 writes where layer 1 reads.
        let l0_store = t.layers()[0].tiles.last().unwrap().stores[0].addr;
        let l1_load = t.layers()[1].tiles[0].loads[0].addr;
        assert_eq!(l0_store, l1_load);
    }

    #[test]
    fn bursty_loads_precede_compute() {
        // Every tile with compute also has loads (data must come from DRAM).
        let net = zoo::gpt2(Scale::Bench);
        let t = WorkloadTrace::generate(&net, &bench());
        for lt in t.layers() {
            for tile in &lt.tiles {
                assert!(!tile.loads.is_empty());
                assert!(tile.compute_cycles > 0);
            }
        }
    }
}

#[cfg(test)]
mod dataflow_tests {
    use super::*;
    use crate::arch::{ArchConfig, Dataflow};
    use mnpu_model::{GemmSpec, Layer, Network};

    #[test]
    fn weight_stationary_traces_generate_and_differ_in_time() {
        let net = Network::new("ws", vec![Layer::gemm("fc", GemmSpec::new(64, 512, 64))]);
        let os_arch = ArchConfig::bench_npu();
        let ws_arch = ArchConfig { dataflow: Dataflow::WeightStationary, ..os_arch.clone() };
        let os = WorkloadTrace::generate(&net, &os_arch);
        let ws = WorkloadTrace::generate(&net, &ws_arch);
        // Same data movement, different compute schedule.
        assert_eq!(os.total_traffic_bytes(), ws.total_traffic_bytes());
        assert_ne!(os.total_compute_cycles(), ws.total_compute_cycles());
        assert!(ws.total_compute_cycles() > 0);
    }

    #[test]
    fn full_scale_trace_generates_for_heaviest_model() {
        use mnpu_model::{zoo, Scale};
        let net = zoo::selfish_rnn(Scale::Full);
        let trace = WorkloadTrace::generate(&net, &ArchConfig::cloud_npu());
        // Full-scale sfrnn moves gigabytes; the trace must account for all
        // of it without overflow or tile-count explosion.
        assert!(trace.total_traffic_bytes() > 1 << 30);
        assert!(trace.total_tiles() < 1_000_000);
        assert!(trace.pe_utilization(&ArchConfig::cloud_npu()) > 0.0);
    }
}
