//! Systolic-array timing and memory-trace generation — the *SW request
//! generator* half of mNPUsim.
//!
//! Given a [`mnpu_model::Network`] and an NPU core configuration
//! ([`ArchConfig`]), this crate:
//!
//! 1. lowers every layer to GEMM (im2col for convolutions),
//! 2. chooses SPM tile sizes under the double-buffering constraint (a tile's
//!    working set must fit half the scratchpad),
//! 3. computes per-tile systolic-array cycles with the SCALE-Sim
//!    output-stationary analytical model, and
//! 4. emits the per-tile DRAM request spans (virtual addresses) that the
//!    hardware simulator (`mnpu-engine`) replays against the shared memory
//!    system.
//!
//! The output is a [`WorkloadTrace`]: a deterministic, memory-system-agnostic
//! program for one NPU core. It corresponds to the "memory-ideal intermediate
//! results" of the original simulator's software stack.
//!
//! # Example
//!
//! ```
//! use mnpu_model::{zoo, Scale};
//! use mnpu_systolic::{ArchConfig, WorkloadTrace};
//!
//! let net = zoo::ncf(Scale::Bench);
//! let arch = ArchConfig::bench_npu();
//! let trace = WorkloadTrace::generate(&net, &arch);
//! assert_eq!(trace.layers().len(), net.num_layers());
//! assert!(trace.total_compute_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod gemm_timing;
mod tiling;
mod trace;

pub use arch::{ArchConfig, Dataflow};
pub use gemm_timing::{fold_cycles, gemm_cycles, gemm_utilization, GemmTiming};
pub use tiling::{choose_tile, TileShape};
pub use trace::{LayerTrace, MemSpan, SpanKind, Tile, WorkloadTrace, VIRT_BASE};
