//! End-to-end predictor quality: trained on random networks, the slowdown
//! model must rank real co-runner interference in the right order.

use mnpu_engine::{SharingLevel, Simulation, SystemConfig};
use mnpu_model::{zoo, Scale};
use mnpu_predict::{SlowdownModel, WorkloadProfile};

#[test]
fn predictions_correlate_with_measured_slowdowns() {
    let chip = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let model = SlowdownModel::train_on_random_networks(&chip, 8, 16, 42);

    // Measure a handful of real pairs and compare rankings.
    let names = ["res", "dlrm", "ncf", "gpt2"];
    let nets: Vec<_> = names.iter().map(|n| zoo::by_name(n, Scale::Bench).unwrap()).collect();
    let profiles: Vec<WorkloadProfile> =
        nets.iter().map(|n| WorkloadProfile::measure(&chip, n)).collect();

    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for i in 0..nets.len() {
        for j in 0..nets.len() {
            let r = Simulation::execute_networks(&chip, &[nets[i].clone(), nets[j].clone()]);
            measured.push(r.cores[0].cycles as f64 / profiles[i].solo_cycles as f64);
            predicted.push(model.predict_slowdown(&profiles[i], &profiles[j]));
        }
    }

    // Spearman-style check: rank correlation must be clearly positive.
    let rank = |xs: &[f64]| {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        let mut r = vec![0.0; xs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (rp, rm) = (rank(&predicted), rank(&measured));
    let n = rp.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut dp = 0.0;
    let mut dm = 0.0;
    for (a, b) in rp.iter().zip(&rm) {
        num += (a - mean) * (b - mean);
        dp += (a - mean).powi(2);
        dm += (b - mean).powi(2);
    }
    let rho = num / (dp.sqrt() * dm.sqrt());
    assert!(rho > 0.3, "rank correlation too weak: {rho}");
}

#[test]
fn predictor_identifies_the_noisiest_coruner() {
    let chip = SystemConfig::bench(2, SharingLevel::PlusDwt);
    let model = SlowdownModel::train_on_random_networks(&chip, 8, 16, 42);
    let victim = WorkloadProfile::measure(&chip, &zoo::yolo_tiny(Scale::Bench));
    let quiet = WorkloadProfile::measure(&chip, &zoo::ncf(Scale::Bench));
    let noisy = WorkloadProfile::measure(&chip, &zoo::dlrm(Scale::Bench));
    assert!(
        model.predict_slowdown(&victim, &noisy) > model.predict_slowdown(&victim, &quiet),
        "dlrm must be predicted more disruptive than ncf"
    );
}
