//! Co-runner interference prediction and workload mapping (paper §4.6).
//!
//! When several multi-core NPUs serve heterogeneous models, *which* models
//! are paired on the same chip determines both throughput and fairness. The
//! paper proposes a simple profile-based predictor:
//!
//! 1. profile each workload solo (PE utilization, memory traffic per
//!    execution, execution time) — [`WorkloadProfile`];
//! 2. fit a multi-factor linear regression from the two co-runners'
//!    profiles to each one's slowdown — [`SlowdownModel`], trained on
//!    *randomly generated* networks (DeepSniffer-style, via
//!    [`mnpu_model::randnet`]) to avoid overfitting the evaluation set;
//! 3. for every candidate assignment of 8 workloads to 4 dual-core chips
//!    (a perfect matching, [`mapping::perfect_matchings`]), predict system
//!    performance and schedule the best-looking one.
//!
//! The regression itself is an ordinary least-squares fit with a small ridge
//! term ([`linreg::LinearModel`]) — no external linear-algebra crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linreg;
pub mod mapping;
mod model;
mod profile;

pub use model::{SlowdownModel, TrainingSample};
pub use profile::WorkloadProfile;
