//! Co-runner mapping search: assigning 2k workloads to k dual-core chips.
//!
//! The paper's §4.6 evaluates every eight-workload multiset drawn from the
//! benchmark zoo (`M(8,8) = 6435` sets) on four dual-core NPUs. For one
//! multiset, an *assignment* is a perfect matching of its 8 slots into 4
//! pairs; the predictor picks the matching with the best predicted score and
//! is compared against the oracle (best actual), the worst, and the
//! expected (mean over matchings, i.e. a random scheduler).

/// All perfect matchings of `n` elements (`n` even): for `n = 8`,
/// `7!! = 105` matchings.
///
/// ```
/// use mnpu_predict::mapping::perfect_matchings;
/// assert_eq!(perfect_matchings(4).len(), 3);
/// assert_eq!(perfect_matchings(8).len(), 105);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero or odd.
pub fn perfect_matchings(n: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(n > 0 && n.is_multiple_of(2), "need a positive even element count");
    let mut out = Vec::new();
    let mut used = vec![false; n];
    let mut current = Vec::with_capacity(n / 2);
    fn rec(
        used: &mut [bool],
        current: &mut Vec<(usize, usize)>,
        out: &mut Vec<Vec<(usize, usize)>>,
    ) {
        let Some(first) = used.iter().position(|&u| !u) else {
            out.push(current.clone());
            return;
        };
        used[first] = true;
        for second in first + 1..used.len() {
            if used[second] {
                continue;
            }
            used[second] = true;
            current.push((first, second));
            rec(used, current, out);
            current.pop();
            used[second] = false;
        }
        used[first] = false;
    }
    rec(&mut used, &mut current, &mut out);
    out
}

/// All multisets of size `k` over items `0..n`, as non-decreasing index
/// vectors. `M(n, k) = C(n+k-1, k)`; for `n = k = 8` that is 6435.
///
/// ```
/// use mnpu_predict::mapping::multisets;
/// assert_eq!(multisets(8, 2).len(), 36);  // the dual-core mixes
/// assert_eq!(multisets(8, 4).len(), 330); // the quad-core mixes
/// ```
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn multisets(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(n > 0, "need at least one item");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(n: usize, k: usize, start: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for item in start..n {
            current.push(item);
            rec(n, k, item, current, out);
            current.pop();
        }
    }
    rec(n, k, 0, &mut current, &mut out);
    out
}

/// Per-workload slowdowns of running multiset `ws` under `matching`, where
/// `table(i, j)` returns the (slowdown of *i*, slowdown of *j*) when
/// benchmarks *i* and *j* share a dual-core chip.
///
/// The output is indexed by slot (same order as `ws`).
///
/// # Panics
///
/// Panics if the matching does not cover exactly the slots of `ws`.
pub fn matching_slowdowns(
    ws: &[usize],
    matching: &[(usize, usize)],
    table: &dyn Fn(usize, usize) -> (f64, f64),
) -> Vec<f64> {
    assert_eq!(matching.len() * 2, ws.len(), "matching must cover all slots");
    let mut slow = vec![0.0; ws.len()];
    for &(p, q) in matching {
        let (sp, sq) = table(ws[p], ws[q]);
        slow[p] = sp;
        slow[q] = sq;
    }
    assert!(slow.iter().all(|&s| s > 0.0), "matching left a slot unassigned");
    slow
}

/// Outcome of one multiset's mapping study under a higher-is-better score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingOutcome {
    /// Best achievable score over all matchings (oracle scheduler).
    pub oracle: f64,
    /// Worst score over all matchings.
    pub worst: f64,
    /// Mean score over all matchings — the expected result of a random
    /// scheduler, used as the paper's "without mapping" baseline.
    pub expected: f64,
    /// Score of the matching the predictor chose.
    pub chosen: f64,
}

impl MappingOutcome {
    /// Chosen score normalized to the random baseline (> 1 ⇒ the predictor
    /// beat random assignment).
    pub fn chosen_vs_expected(&self) -> f64 {
        self.chosen / self.expected
    }
}

/// Run the mapping study for one multiset: evaluate every matching with the
/// *actual* pair table, pick the predictor's favourite with the *predicted*
/// table, and summarize.
///
/// `score` maps the eight slot slowdowns to a higher-is-better figure
/// (e.g. geomean of speedups for performance, Eq. 1 for fairness).
///
/// # Panics
///
/// Panics if `ws.len()` is odd or zero.
pub fn study_multiset(
    ws: &[usize],
    actual: &dyn Fn(usize, usize) -> (f64, f64),
    predicted: &dyn Fn(usize, usize) -> (f64, f64),
    score: &dyn Fn(&[f64]) -> f64,
) -> MappingOutcome {
    let matchings = perfect_matchings(ws.len());
    let mut oracle = f64::NEG_INFINITY;
    let mut worst = f64::INFINITY;
    let mut sum = 0.0;
    let mut best_pred = f64::NEG_INFINITY;
    let mut chosen = 0.0;
    for m in &matchings {
        let actual_score = score(&matching_slowdowns(ws, m, actual));
        oracle = oracle.max(actual_score);
        worst = worst.min(actual_score);
        sum += actual_score;
        let pred_score = score(&matching_slowdowns(ws, m, predicted));
        if pred_score > best_pred {
            best_pred = pred_score;
            chosen = actual_score;
        }
    }
    MappingOutcome { oracle, worst, expected: sum / matchings.len() as f64, chosen }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_counts_are_double_factorials() {
        assert_eq!(perfect_matchings(2).len(), 1);
        assert_eq!(perfect_matchings(4).len(), 3);
        assert_eq!(perfect_matchings(6).len(), 15);
        assert_eq!(perfect_matchings(8).len(), 105);
    }

    #[test]
    fn matchings_cover_all_elements_once() {
        for m in perfect_matchings(6) {
            let mut seen = [false; 6];
            for (a, b) in m {
                assert!(!seen[a] && !seen[b]);
                seen[a] = true;
                seen[b] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn multiset_counts_match_paper() {
        assert_eq!(multisets(8, 2).len(), 36);
        assert_eq!(multisets(8, 4).len(), 330);
        assert_eq!(multisets(8, 8).len(), 6435);
    }

    #[test]
    fn multisets_are_sorted_and_unique() {
        let ms = multisets(5, 3);
        for w in &ms {
            assert!(w.windows(2).all(|p| p[0] <= p[1]));
        }
        let set: std::collections::HashSet<_> = ms.iter().collect();
        assert_eq!(set.len(), ms.len());
    }

    /// A toy world where pairing equal items is free and pairing different
    /// items costs slowdown proportional to their distance.
    fn toy_table(i: usize, j: usize) -> (f64, f64) {
        let cost = 1.0 + (i as f64 - j as f64).abs() * 0.1;
        (cost, cost)
    }

    fn perf(slowdowns: &[f64]) -> f64 {
        let log: f64 = slowdowns.iter().map(|s| (1.0 / s).ln()).sum();
        (log / slowdowns.len() as f64).exp()
    }

    #[test]
    fn oracle_bounds_hold() {
        let ws = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let out = study_multiset(&ws, &toy_table, &toy_table, &perf);
        assert!(out.oracle >= out.chosen);
        assert!(out.chosen >= out.worst);
        assert!(out.oracle >= out.expected && out.expected >= out.worst);
    }

    #[test]
    fn perfect_predictor_matches_oracle() {
        let ws = vec![0, 0, 1, 1, 5, 5, 7, 7];
        let out = study_multiset(&ws, &toy_table, &toy_table, &perf);
        assert!((out.chosen - out.oracle).abs() < 1e-12, "predictor = truth ⇒ oracle");
        // Pairing equal items gives slowdown 1.0 for everyone.
        assert!((out.oracle - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_predictor_can_miss_oracle() {
        let ws = vec![0, 0, 1, 1, 5, 5, 7, 7];
        // Predictor that loves the *worst* matching.
        let anti = |i: usize, j: usize| {
            let (a, b) = toy_table(i, j);
            (2.0 - a.min(1.9), 2.0 - b.min(1.9))
        };
        let out = study_multiset(&ws, &toy_table, &anti, &perf);
        assert!(out.chosen < out.oracle);
    }

    #[test]
    fn slot_slowdowns_follow_table() {
        let ws = vec![2, 4];
        let s = matching_slowdowns(&ws, &[(0, 1)], &toy_table);
        assert_eq!(s.len(), 2);
        assert!((s[0] - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_matching_rejected() {
        let _ = perfect_matchings(5);
    }
}
