//! Solo workload profiles — the predictor's only inputs.

use mnpu_engine::{Simulation, SystemConfig};
use mnpu_model::Network;

/// The profiled characteristics of one workload running *alone* with all
/// resources (the paper's three factors: PE utilization, memory traffic per
/// execution, and execution time).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: String,
    /// PE utilization of the solo run (low = memory-bound).
    pub pe_utilization: f64,
    /// DRAM traffic per execution in bytes (data + walks).
    pub traffic_bytes: u64,
    /// Solo execution cycles.
    pub solo_cycles: u64,
}

impl WorkloadProfile {
    /// Profile `net` by running it solo on the `Ideal` derivative of `chip`
    /// (all shareable resources monopolized).
    ///
    /// # Panics
    ///
    /// Panics if the chip configuration is invalid.
    pub fn measure(chip: &SystemConfig, net: &Network) -> Self {
        let cfg = chip.ideal_solo();
        let r = Simulation::execute_networks(&cfg, std::slice::from_ref(net));
        let c = &r.cores[0];
        WorkloadProfile {
            name: c.workload.clone(),
            pe_utilization: c.pe_utilization,
            traffic_bytes: c.traffic_bytes + c.walk_bytes,
            solo_cycles: c.cycles,
        }
    }

    /// Average memory demand in bytes per cycle — the memory-intensiveness
    /// proxy used in the feature vector.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.traffic_bytes as f64 / self.solo_cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnpu_engine::SharingLevel;
    use mnpu_model::{zoo, Scale};

    #[test]
    fn profile_of_memory_bound_vs_compute_bound() {
        let chip = SystemConfig::bench(2, SharingLevel::PlusDwt);
        let dlrm = WorkloadProfile::measure(&chip, &zoo::dlrm(Scale::Bench));
        let res = WorkloadProfile::measure(&chip, &zoo::resnet50(Scale::Bench));
        assert!(dlrm.pe_utilization < res.pe_utilization);
        assert!(dlrm.solo_cycles > 0 && res.solo_cycles > 0);
        assert!(dlrm.bytes_per_cycle() > 0.0);
    }

    #[test]
    fn profile_is_deterministic() {
        let chip = SystemConfig::bench(2, SharingLevel::PlusDwt);
        let net = zoo::ncf(Scale::Bench);
        assert_eq!(WorkloadProfile::measure(&chip, &net), WorkloadProfile::measure(&chip, &net));
    }
}
