//! Ordinary least squares with ridge regularization, solved by Gaussian
//! elimination on the normal equations. Feature counts here are tiny
//! (≤ 10), so this is both simple and exact enough.

/// A fitted linear model `y ≈ w · x`.
///
/// ```
/// use mnpu_predict::linreg::LinearModel;
///
/// // y = 2*x0 + 3*x1, exactly recoverable.
/// let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]];
/// let ys = vec![2.0, 3.0, 5.0, 7.0];
/// let m = LinearModel::fit(&xs, &ys, 0.0);
/// assert!((m.predict(&[3.0, 1.0]) - 9.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
}

impl LinearModel {
    /// Fit by minimizing `Σ (w·x_i - y_i)² + ridge * |w|²`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, rows have inconsistent lengths, lengths
    /// differ from `ys`, or the (regularized) normal matrix is singular
    /// (use `ridge > 0` to guarantee solvability).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Self {
        assert!(!xs.is_empty(), "no training samples");
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        let d = xs[0].len();
        assert!(d > 0, "empty feature vectors");
        assert!(xs.iter().all(|x| x.len() == d), "inconsistent feature dimensions");
        assert!(ridge >= 0.0, "ridge must be non-negative");

        // Normal equations: (XᵀX + ridge I) w = Xᵀy.
        let mut a = vec![vec![0.0f64; d]; d];
        let mut b = vec![0.0f64; d];
        for (x, &y) in xs.iter().zip(ys) {
            for i in 0..d {
                b[i] += x[i] * y;
                for j in 0..d {
                    a[i][j] += x[i] * x[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += ridge;
        }

        let weights = solve(a, b);
        LinearModel { weights }
    }

    /// Evaluate the model on a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        x.iter().zip(&self.weights).map(|(a, w)| a * w).sum()
    }

    /// The fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mean squared error over a data set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or dimensions mismatch.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert!(!xs.is_empty(), "empty evaluation set");
        assert_eq!(xs.len(), ys.len());
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / xs.len() as f64
    }
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        assert!(a[pivot][col].abs() > 1e-12, "singular normal matrix; increase ridge");
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            // `k` indexes two rows of `a` at once, which rules out the
            // iterator form clippy would otherwise suggest.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut w = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * w[k];
        }
        w[col] = acc / a[col][col];
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        let xs: Vec<Vec<f64>> =
            (0..20).map(|i| vec![1.0, i as f64, (i * i) as f64 % 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x[0] - 2.0 * x[1] + 0.5 * x[2]).collect();
        let m = LinearModel::fit(&xs, &ys, 0.0);
        assert!((m.weights()[0] - 4.0).abs() < 1e-8);
        assert!((m.weights()[1] + 2.0).abs() < 1e-8);
        assert!((m.weights()[2] - 0.5).abs() < 1e-8);
        assert!(m.mse(&xs, &ys) < 1e-12);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0]).collect();
        let free = LinearModel::fit(&xs, &ys, 0.0);
        let ridged = LinearModel::fit(&xs, &ys, 100.0);
        assert!(ridged.weights()[0].abs() < free.weights()[0].abs());
    }

    #[test]
    fn overdetermined_least_squares_minimizes() {
        // y = x + noise pattern; the LS slope must be between min and max
        // pointwise slopes.
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1.1, 1.9, 3.2];
        let m = LinearModel::fit(&xs, &ys, 0.0);
        let w = m.weights()[0];
        assert!(w > 0.9 && w < 1.2, "{w}");
    }

    #[test]
    fn singular_without_ridge_panics_with_ridge_works() {
        // Duplicate feature columns -> singular XtX.
        let xs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let ys = vec![2.0, 4.0, 6.0];
        let m = LinearModel::fit(&xs, &ys, 1e-6);
        assert!((m.predict(&[4.0, 4.0]) - 8.0).abs() < 1e-3);
        let r = std::panic::catch_unwind(|| LinearModel::fit(&xs, &ys, 0.0));
        assert!(r.is_err(), "singular system must be rejected at ridge=0");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        let _ = LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_checks_dimension() {
        let m = LinearModel::fit(&[vec![1.0]], &[1.0], 0.0);
        let _ = m.predict(&[1.0, 2.0]);
    }
}
