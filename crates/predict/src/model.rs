//! The slowdown regression model.

use crate::linreg::LinearModel;
use crate::profile::WorkloadProfile;
use mnpu_engine::{Simulation, SystemConfig};
use mnpu_model::randnet::{generate_batch, RandNetConfig};

/// One training observation: workload `a` co-ran with workload `b` and
/// experienced `slowdown_a` (actual cycles / solo cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSample {
    /// Profile of the workload whose slowdown is being predicted.
    pub a: WorkloadProfile,
    /// Profile of its co-runner.
    pub b: WorkloadProfile,
    /// Measured slowdown of `a` (≥ 1.0 in the absence of noise).
    pub slowdown_a: f64,
}

/// Predicts the slowdown a workload will suffer from a given co-runner on a
/// dual-core chip, from solo profiles only.
///
/// Features follow the paper's §4.6.1: PE utilization of both workloads
/// (low utilization ⇒ memory intensity ⇒ contention), memory traffic per
/// cycle of both, and the execution-time ratio as a correction factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownModel {
    inner: LinearModel,
}

impl SlowdownModel {
    /// The feature vector for "how much does `a` suffer next to `b`".
    pub fn features(a: &WorkloadProfile, b: &WorkloadProfile) -> Vec<f64> {
        let ratio = a.solo_cycles as f64 / b.solo_cycles.max(1) as f64;
        vec![
            1.0,
            a.pe_utilization,
            b.pe_utilization,
            a.bytes_per_cycle(),
            b.bytes_per_cycle(),
            // Saturating transform of the time ratio: co-runners that finish
            // much earlier stop interfering.
            ratio.min(4.0),
            a.bytes_per_cycle() * b.bytes_per_cycle(),
        ]
    }

    /// Fit the regression on observed co-run slowdowns.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(samples: &[TrainingSample]) -> Self {
        assert!(!samples.is_empty(), "no training samples");
        let xs: Vec<Vec<f64>> = samples.iter().map(|s| Self::features(&s.a, &s.b)).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.slowdown_a).collect();
        SlowdownModel { inner: LinearModel::fit(&xs, &ys, 1e-6) }
    }

    /// Predict the slowdown of `a` when co-running with `b` (clamped to
    /// ≥ 1.0: co-running never speeds a workload up).
    pub fn predict_slowdown(&self, a: &WorkloadProfile, b: &WorkloadProfile) -> f64 {
        self.inner.predict(&Self::features(a, b)).max(1.0)
    }

    /// Predicted speedup (vs Ideal) of `a` next to `b`.
    pub fn predict_speedup(&self, a: &WorkloadProfile, b: &WorkloadProfile) -> f64 {
        1.0 / self.predict_slowdown(a, b)
    }

    /// The underlying linear model.
    pub fn linear(&self) -> &LinearModel {
        &self.inner
    }

    /// Train on randomly generated networks, as the paper does to avoid
    /// overfitting the eight evaluation benchmarks: generate `n_networks`
    /// random nets, profile each solo, co-run `n_pairs` deterministic
    /// pairings on the dual-core `chip`, and fit on both sides of each pair.
    ///
    /// # Panics
    ///
    /// Panics if `n_networks < 2` or `n_pairs == 0`.
    pub fn train_on_random_networks(
        chip: &SystemConfig,
        n_networks: usize,
        n_pairs: usize,
        seed: u64,
    ) -> Self {
        assert!(n_networks >= 2, "need at least two networks");
        assert!(n_pairs > 0, "need at least one pair");
        let nets = generate_batch(&RandNetConfig::small(), seed, n_networks);
        let profiles: Vec<WorkloadProfile> =
            nets.iter().map(|n| WorkloadProfile::measure(chip, n)).collect();

        let mut samples = Vec::with_capacity(2 * n_pairs);
        for p in 0..n_pairs {
            // Deterministic low-discrepancy pairing over the network set.
            let i = p % n_networks;
            let j = (p * 7 + 3) % n_networks;
            let (i, j) = if i == j { (i, (j + 1) % n_networks) } else { (i, j) };
            let r = Simulation::execute_networks(chip, &[nets[i].clone(), nets[j].clone()]);
            let sa = r.cores[0].cycles as f64 / profiles[i].solo_cycles as f64;
            let sb = r.cores[1].cycles as f64 / profiles[j].solo_cycles as f64;
            samples.push(TrainingSample {
                a: profiles[i].clone(),
                b: profiles[j].clone(),
                slowdown_a: sa,
            });
            samples.push(TrainingSample {
                a: profiles[j].clone(),
                b: profiles[i].clone(),
                slowdown_a: sb,
            });
        }
        SlowdownModel::train(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(name: &str, util: f64, bpc: f64, cycles: u64) -> WorkloadProfile {
        WorkloadProfile {
            name: name.into(),
            pe_utilization: util,
            traffic_bytes: (bpc * cycles as f64) as u64,
            solo_cycles: cycles,
        }
    }

    #[test]
    fn training_fits_synthetic_interference_law() {
        // Synthetic ground truth: slowdown grows with the co-runner's
        // memory demand. The model must learn the direction.
        let mut samples = Vec::new();
        for i in 0..40 {
            let a = prof("a", 0.3, 1.0 + (i % 5) as f64, 10_000 + i * 13);
            let b = prof("b", 0.2, (i % 7) as f64, 12_000);
            let truth = 1.0 + 0.1 * b.bytes_per_cycle();
            samples.push(TrainingSample { a, b, slowdown_a: truth });
        }
        let m = SlowdownModel::train(&samples);
        let quiet = prof("q", 0.2, 0.5, 12_000);
        let noisy = prof("n", 0.2, 6.0, 12_000);
        let victim = prof("v", 0.3, 2.0, 10_000);
        assert!(m.predict_slowdown(&victim, &noisy) > m.predict_slowdown(&victim, &quiet));
    }

    #[test]
    fn prediction_clamped_to_at_least_one() {
        let samples = vec![TrainingSample {
            a: prof("a", 0.5, 1.0, 1000),
            b: prof("b", 0.5, 1.0, 1000),
            slowdown_a: 0.2, // nonsense label
        }];
        let m = SlowdownModel::train(&samples);
        assert!(m.predict_slowdown(&prof("x", 0.5, 1.0, 1000), &prof("y", 0.5, 1.0, 1000)) >= 1.0);
    }

    #[test]
    fn speedup_is_inverse_of_slowdown() {
        let samples: Vec<TrainingSample> = (0..10)
            .map(|i| TrainingSample {
                a: prof("a", 0.1 * i as f64, 1.0, 1000 + i * 100),
                b: prof("b", 0.5, 2.0, 2000),
                slowdown_a: 1.0 + 0.05 * i as f64,
            })
            .collect();
        let m = SlowdownModel::train(&samples);
        let (a, b) = (prof("p", 0.4, 1.5, 1500), prof("q", 0.2, 2.5, 1800));
        let s = m.predict_slowdown(&a, &b);
        assert!((m.predict_speedup(&a, &b) - 1.0 / s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn empty_training_rejected() {
        let _ = SlowdownModel::train(&[]);
    }
}
