//! Property tests of convolution lowering: output geometry and im2col
//! dimensions behave like the textbook formulas for all valid shapes.

use mnpu_model::{ConvSpec, Layer};
use proptest::prelude::*;

fn arb_conv() -> impl Strategy<Value = ConvSpec> {
    (2u64..128, 1u64..64, 1u64..128, 1u64..8, 1u64..4, 0u64..4).prop_filter_map(
        "kernel must fit padded input",
        |(hw, ic, oc, k, s, p)| {
            let c = ConvSpec::square(hw, ic, oc, k, s, p);
            (hw + 2 * p >= k).then_some(c)
        },
    )
}

proptest! {
    #[test]
    fn prop_output_dims_formula(c in arb_conv()) {
        prop_assert_eq!(c.out_h(), (c.in_h + 2 * c.padding - c.k_h) / c.stride + 1);
        prop_assert!(c.out_h() >= 1);
        prop_assert!(c.out_w() >= 1);
    }

    #[test]
    fn prop_stride_one_with_same_padding_preserves_dims(hw in 3u64..64, ic in 1u64..16, oc in 1u64..16, half_k in 0u64..3) {
        let k = 2 * half_k + 1; // odd kernel
        prop_assume!(hw >= k);
        let c = ConvSpec::square(hw, ic, oc, k, 1, half_k);
        prop_assert_eq!(c.out_h(), hw);
    }

    #[test]
    fn prop_im2col_macs_equal_direct_conv_macs(c in arb_conv()) {
        // im2col must not change the number of MACs.
        let direct = c.out_h() * c.out_w() * c.k_h * c.k_w * c.in_c * c.out_c;
        prop_assert_eq!(c.to_gemm(1).macs(), direct);
    }

    #[test]
    fn prop_larger_stride_never_grows_output(c in arb_conv()) {
        let faster = ConvSpec { stride: c.stride + 1, ..c };
        prop_assert!(faster.out_h() <= c.out_h());
        prop_assert!(faster.to_gemm(1).m <= c.to_gemm(1).m);
    }

    #[test]
    fn prop_layer_traffic_positive_and_batch_monotone(c in arb_conv(), b in 1u64..8) {
        let l1 = Layer::new("c", mnpu_model::LayerKind::Conv(c), b);
        let l2 = Layer::new("c", mnpu_model::LayerKind::Conv(c), b + 1);
        prop_assert!(l1.traffic_elems() > 0);
        prop_assert!(l2.traffic_elems() > l1.traffic_elems());
        prop_assert!(l2.macs() > l1.macs());
    }
}
