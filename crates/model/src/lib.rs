//! DNN model representation and workload zoo for the mNPUsim reproduction.
//!
//! This crate is the *software-visible* half of the simulator's input: it
//! describes what a workload computes (layer dimensions and kinds) without
//! saying anything about how the hardware executes it. The companion crate
//! `mnpu-systolic` lowers these descriptions into per-tile compute cycles and
//! memory request streams.
//!
//! The central abstraction is [`Layer`], which is one of:
//!
//! * a convolution ([`ConvSpec`]) — lowered to GEMM via *im2col*, following
//!   the paper's choice of early im2col on the host CPU, so the NPU streams
//!   the already-expanded `M x K` activation matrix from DRAM;
//! * a dense GEMM ([`GemmSpec`]) — fully-connected layers, RNN cell steps and
//!   attention projections all reduce to this;
//! * an embedding gather ([`EmbeddingSpec`]) — a nearly pure-memory layer
//!   used by the recommendation workloads (DLRM, NCF).
//!
//! [`Network`] is an ordered list of layers executed back-to-back on one NPU
//! core. The [`zoo`] module provides the eight benchmarks of the paper's
//! Table 1 and [`randnet`] generates DeepSniffer-style random networks used
//! to train the co-runner performance predictor.
//!
//! # Example
//!
//! ```
//! use mnpu_model::{zoo, Scale};
//!
//! let net = zoo::alexnet(Scale::Bench);
//! assert!(net.num_layers() >= 8);
//! // Every layer lowers to a GEMM the systolic array can execute.
//! for layer in net.layers() {
//!     let g = layer.to_gemm();
//!     assert!(g.m > 0 && g.k > 0 && g.n > 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layer;
mod network;
pub mod randnet;
mod training;
pub mod zoo;

pub use layer::{ConvSpec, DataType, EmbeddingSpec, GemmSpec, Layer, LayerKind};
pub use network::{Network, NetworkSummary};
pub use training::training_unroll;
pub use zoo::Scale;
