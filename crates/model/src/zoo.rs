//! The eight benchmark models of the paper's Table 1.
//!
//! | Type | Model (short name) |
//! |------|--------------------|
//! | CNN | ResNet50 (`res`), Yolo-tiny (`yt`), AlexNet (`alex`) |
//! | RNN | Selfish-RNN (`sfrnn`), DeepSpeech2 (`ds2`) |
//! | Recommendation | DLRM (`dlrm`), NCF (`ncf`) |
//! | Attention | GPT-2 (`gpt2`) |
//!
//! Layer dimensions follow the published architectures (as in the
//! SCALE-Sim topology files the original simulator ships). Every model is
//! available at two scales:
//!
//! * [`Scale::Full`] — the real layer dimensions;
//! * [`Scale::Bench`] — dimensions shrunk by a per-model factor so the
//!   full 330-mix quad-core sweep of the paper finishes in minutes. The
//!   shrink preserves each model's compute-vs-memory intensity profile,
//!   which is what the sharing study measures.

use crate::layer::{ConvSpec, EmbeddingSpec, GemmSpec, Layer, LayerKind};
use crate::network::Network;

/// Workload scale selector; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Published layer dimensions.
    Full,
    /// Shrunk dimensions for fast sweeps (default for the bench harness).
    #[default]
    Bench,
}

impl Scale {
    fn div(self, x: u64, f: u64) -> u64 {
        match self {
            Scale::Full => x,
            Scale::Bench => (x / f).max(1),
        }
    }
}

/// Short names of all eight benchmarks, in the paper's Table 1 order.
pub const MODEL_NAMES: [&str; 8] = ["res", "yt", "alex", "sfrnn", "ds2", "dlrm", "ncf", "gpt2"];

/// Build a benchmark by its short name.
///
/// ```
/// use mnpu_model::{zoo, Scale};
/// let net = zoo::by_name("ncf", Scale::Bench).unwrap();
/// assert_eq!(net.name(), "ncf");
/// ```
pub fn by_name(name: &str, scale: Scale) -> Option<Network> {
    match name {
        "res" => Some(resnet50(scale)),
        "yt" => Some(yolo_tiny(scale)),
        "alex" => Some(alexnet(scale)),
        "sfrnn" => Some(selfish_rnn(scale)),
        "ds2" => Some(deepspeech2(scale)),
        "dlrm" => Some(dlrm(scale)),
        "ncf" => Some(ncf(scale)),
        "gpt2" => Some(gpt2(scale)),
        _ => None,
    }
}

/// All eight benchmarks at the given scale, in [`MODEL_NAMES`] order.
pub fn all(scale: Scale) -> Vec<Network> {
    MODEL_NAMES.iter().map(|n| by_name(n, scale).expect("known name")).collect()
}

/// AlexNet (`alex`): 5 convolutions + 3 fully-connected layers.
pub fn alexnet(scale: Scale) -> Network {
    // Bench scale: half channels, input 112 instead of 224.
    let s = |x| scale.div(x, 2);
    let c = |x| scale.div(x, 2);
    let layers = vec![
        Layer::conv("conv1", ConvSpec::square(s(224), 3, c(96), 11, 4, 2)),
        Layer::conv("conv2", ConvSpec::square(s(27).max(5), c(96), c(256), 5, 1, 2)),
        Layer::conv("conv3", ConvSpec::square(s(13).max(3), c(256), c(384), 3, 1, 1)),
        Layer::conv("conv4", ConvSpec::square(s(13).max(3), c(384), c(384), 3, 1, 1)),
        Layer::conv("conv5", ConvSpec::square(s(13).max(3), c(384), c(256), 3, 1, 1)),
        Layer::gemm("fc6", GemmSpec::new(1, c(256) * 36, scale.div(4096, 4))),
        Layer::gemm("fc7", GemmSpec::new(1, scale.div(4096, 4), scale.div(4096, 4))),
        Layer::gemm("fc8", GemmSpec::new(1, scale.div(4096, 4), 1000)),
    ];
    Network::new("alex", layers)
}

/// ResNet50 (`res`): the 53-convolution bottleneck architecture + final FC.
pub fn resnet50(scale: Scale) -> Network {
    // Bench scale: input 56 instead of 224 (spatial /4), channels /2.
    let sp = |x| scale.div(x, 4);
    let ch = |x| scale.div(x, 2);
    let mut layers = Vec::new();
    layers.push(Layer::conv("conv1", ConvSpec::square(sp(224), 3, ch(64), 7, 2, 3)));

    // (stage name, blocks, mid channels, stride of first block)
    let stages: [(&str, u64, u64, u64); 4] =
        [("s2", 3, 64, 1), ("s3", 4, 128, 2), ("s4", 6, 256, 2), ("s5", 3, 512, 2)];
    let mut in_c = ch(64);
    // Spatial size after conv1 + max-pool: 56 at full scale.
    let mut cur_hw = sp(56).max(3);
    for (stage, blocks, mid, stride_first) in stages {
        let mid = ch(mid);
        let out_c = mid * 4;
        for b in 0..blocks {
            let stride = if b == 0 { stride_first } else { 1 };
            let in_hw = cur_hw;
            let out_hw = ((in_hw - 1) / stride + 1).max(3);
            let name = |op: &str| format!("{stage}_b{b}_{op}");
            layers
                .push(Layer::conv(name("1x1a"), ConvSpec::square(in_hw, in_c, mid, 1, stride, 0)));
            layers.push(Layer::conv(name("3x3"), ConvSpec::square(out_hw, mid, mid, 3, 1, 1)));
            layers.push(Layer::conv(name("1x1b"), ConvSpec::square(out_hw, mid, out_c, 1, 1, 0)));
            if b == 0 {
                layers.push(Layer::conv(
                    name("proj"),
                    ConvSpec::square(in_hw, in_c, out_c, 1, stride, 0),
                ));
            }
            in_c = out_c;
            cur_hw = out_hw;
        }
    }
    layers.push(Layer::gemm("fc", GemmSpec::new(1, in_c, 1000)));
    Network::new("res", layers)
}

/// Yolo-tiny (`yt`): nine convolutions with max-pool downsampling in between.
pub fn yolo_tiny(scale: Scale) -> Network {
    let sp = |x| scale.div(x, 4);
    let ch = |x| scale.div(x, 2);
    let cfg: [(u64, u64, u64, u64); 9] = [
        // (in_hw, in_c, out_c, k)
        (416, 3, 16, 3),
        (208, 16, 32, 3),
        (104, 32, 64, 3),
        (52, 64, 128, 3),
        (26, 128, 256, 3),
        (13, 256, 512, 3),
        (13, 512, 1024, 3),
        (13, 1024, 1024, 3),
        (13, 1024, 125, 1),
    ];
    let layers = cfg
        .iter()
        .enumerate()
        .map(|(i, &(hw, ic, oc, k))| {
            let ic = if i == 0 { ic } else { ch(ic) };
            let pad = if k == 3 { 1 } else { 0 };
            Layer::conv(
                format!("conv{}", i + 1),
                ConvSpec::square(sp(hw).max(k), ic, ch(oc).max(8), k, 1, pad),
            )
        })
        .collect();
    Network::new("yt", layers)
}

/// Selfish-RNN (`sfrnn`): a stacked LSTM language model. Each timestep of
/// each LSTM layer is one GEMM computing the four gates; the weight matrix
/// is re-streamed every step, which makes the workload memory-intensive.
pub fn selfish_rnn(scale: Scale) -> Network {
    let h = scale.div(1500, 5);
    let steps = scale.div(35, 7);
    let lstm_layers = 2u64;
    let mut layers = Vec::new();
    for l in 0..lstm_layers {
        for t in 0..steps {
            // [x_t ; h_{t-1}] (2h) -> 4h gates, batch 4 sentences.
            layers.push(Layer::new(
                format!("lstm{l}_t{t}"),
                LayerKind::Gemm(GemmSpec::new(4, 2 * h, 4 * h)),
                1,
            ));
        }
    }
    Network::new("sfrnn", layers)
}

/// DeepSpeech2 (`ds2`): two 2-D convolutions over the spectrogram followed by
/// bidirectional GRU layers (each direction's step is a GEMM) and a FC head.
pub fn deepspeech2(scale: Scale) -> Network {
    let h = scale.div(1280, 8);
    let t = scale.div(50, 10);
    let mut layers = vec![
        Layer::conv(
            "conv1",
            ConvSpec {
                in_h: scale.div(161, 2),
                in_w: scale.div(200, 4),
                in_c: 1,
                out_c: 32,
                k_h: 41,
                k_w: 11,
                stride: 2,
                padding: 20,
            },
        ),
        Layer::conv(
            "conv2",
            ConvSpec {
                in_h: scale.div(81, 2),
                in_w: scale.div(100, 4),
                in_c: 32,
                out_c: 32,
                k_h: 21,
                k_w: 11,
                stride: 2,
                padding: 10,
            },
        ),
    ];
    for l in 0..3u64 {
        for step in 0..t {
            // GRU gate GEMM per timestep, both directions fused: 2 * 3h outputs.
            layers.push(Layer::new(
                format!("gru{l}_t{step}"),
                LayerKind::Gemm(GemmSpec::new(8, 2 * h, 6 * h)),
                1,
            ));
        }
    }
    layers.push(Layer::gemm("fc", GemmSpec::new(8, h, scale.div(29 * 64, 16))));
    Network::new("ds2", layers)
}

/// DLRM (`dlrm`): bottom MLP, sparse embedding gathers, and top MLP. The
/// embedding gather dominates memory traffic and makes DLRM the most
/// memory-intensive benchmark, as in the paper.
pub fn dlrm(scale: Scale) -> Network {
    let rows = scale.div(1_000_000, 64);
    let batch = scale.div(64, 4);
    let layers = vec![
        Layer::new("bot_fc1", LayerKind::Gemm(GemmSpec::new(1, 13, 512)), batch),
        Layer::new("bot_fc2", LayerKind::Gemm(GemmSpec::new(1, 512, 256)), batch),
        Layer::new("bot_fc3", LayerKind::Gemm(GemmSpec::new(1, 256, 64)), batch),
        Layer::new(
            "embed",
            LayerKind::Embedding(EmbeddingSpec {
                tables: 26,
                rows_per_table: rows,
                embed_dim: 64,
                lookups: 96,
            }),
            batch,
        ),
        Layer::new("top_fc1", LayerKind::Gemm(GemmSpec::new(1, 27 * 64, 512)), batch),
        Layer::new("top_fc2", LayerKind::Gemm(GemmSpec::new(1, 512, 256)), batch),
        Layer::new("top_fc3", LayerKind::Gemm(GemmSpec::new(1, 256, 1)), batch),
    ];
    Network::new("dlrm", layers)
}

/// NCF (`ncf`): neural collaborative filtering — user/item embedding gathers
/// followed by an MLP tower, with a large inference batch.
pub fn ncf(scale: Scale) -> Network {
    let rows = scale.div(1_000_000, 64);
    let batch = scale.div(64, 4);
    let layers = vec![
        Layer::new(
            "embed",
            LayerKind::Embedding(EmbeddingSpec {
                tables: 2,
                rows_per_table: rows,
                embed_dim: 128,
                lookups: 1,
            }),
            batch,
        ),
        Layer::new("mlp1", LayerKind::Gemm(GemmSpec::new(1, 256, 256)), batch),
        Layer::new("mlp2", LayerKind::Gemm(GemmSpec::new(1, 256, 128)), batch),
        Layer::new("mlp3", LayerKind::Gemm(GemmSpec::new(1, 128, 64)), batch),
        Layer::new("pred", LayerKind::Gemm(GemmSpec::new(1, 64, 1)), batch),
    ];
    Network::new("ncf", layers)
}

/// GPT-2 small (`gpt2`): transformer decoder blocks. Per block we model the
/// QKV projection, the attention score/context GEMMs, the output projection
/// and the two FFN GEMMs, at sequence length 256.
pub fn gpt2(scale: Scale) -> Network {
    let d = scale.div(768, 4);
    let seq = scale.div(256, 8);
    let blocks = scale.div(12, 3);
    let mut layers = Vec::new();
    for b in 0..blocks {
        let name = |op: &str| format!("blk{b}_{op}");
        layers.push(Layer::gemm(name("qkv"), GemmSpec::new(seq, d, 3 * d)));
        layers.push(Layer::gemm(name("scores"), GemmSpec::new(seq, d, seq)));
        layers.push(Layer::gemm(name("context"), GemmSpec::new(seq, seq, d)));
        layers.push(Layer::gemm(name("proj"), GemmSpec::new(seq, d, d)));
        layers.push(Layer::gemm(name("ffn1"), GemmSpec::new(seq, d, 4 * d)));
        layers.push(Layer::gemm(name("ffn2"), GemmSpec::new(seq, 4 * d, d)));
    }
    layers.push(Layer::gemm("lm_head", GemmSpec::new(1, d, scale.div(50257, 16))));
    Network::new("gpt2", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_at_both_scales() {
        for scale in [Scale::Full, Scale::Bench] {
            let nets = all(scale);
            assert_eq!(nets.len(), 8);
            for net in &nets {
                assert!(net.num_layers() > 0, "{} empty", net.name());
                let s = net.summary();
                assert!(s.total_macs > 0);
                assert!(s.total_traffic_bytes > 0);
            }
        }
    }

    #[test]
    fn names_match_table1() {
        let nets = all(Scale::Bench);
        let names: Vec<&str> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(names, MODEL_NAMES.to_vec());
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("vgg", Scale::Full).is_none());
    }

    #[test]
    fn resnet50_has_53_convs_at_full_scale() {
        let net = resnet50(Scale::Full);
        let convs = net.layers().iter().filter(|l| matches!(l.kind(), LayerKind::Conv(_))).count();
        assert_eq!(convs, 53);
    }

    #[test]
    fn bench_scale_is_smaller() {
        for name in MODEL_NAMES {
            let full = by_name(name, Scale::Full).unwrap().summary();
            let bench = by_name(name, Scale::Bench).unwrap().summary();
            assert!(
                bench.total_macs < full.total_macs,
                "{name}: bench {} !< full {}",
                bench.total_macs,
                full.total_macs
            );
            assert!(bench.total_traffic_bytes < full.total_traffic_bytes, "{name}");
        }
    }

    #[test]
    fn intensity_ordering_preserved() {
        // The compute-intensive CNNs (res, yt) must sit clearly above the
        // memory-intensive workloads (sfrnn, dlrm) at both scales; this
        // ordering is what drives the paper's Fig. 8 sensitivity study.
        for scale in [Scale::Full, Scale::Bench] {
            let ai = |n: &str| by_name(n, scale).unwrap().arithmetic_intensity();
            for cnn in ["res", "yt"] {
                for mem in ["sfrnn", "dlrm"] {
                    assert!(ai(cnn) > 1.5 * ai(mem), "{cnn} vs {mem} at {scale:?}");
                }
            }
        }
    }

    #[test]
    fn memory_intensive_models_rank_lowest() {
        // sfrnn and dlrm must be among the three most memory-intensive
        // benchmarks (alex's giant FC layers legitimately compete).
        for scale in [Scale::Full, Scale::Bench] {
            let mut nets = all(scale);
            nets.sort_by(|a, b| a.arithmetic_intensity().total_cmp(&b.arithmetic_intensity()));
            let bottom3: Vec<&str> = nets[..3].iter().map(|n| n.name()).collect();
            assert!(bottom3.contains(&"sfrnn"), "{scale:?}: {bottom3:?}");
            assert!(bottom3.contains(&"dlrm"), "{scale:?}: {bottom3:?}");
        }
    }
}

#[cfg(test)]
mod structure_tests {
    use super::*;

    #[test]
    fn full_scale_layer_counts_match_published_architectures() {
        // resnet50: 53 convs + fc = 54; yolo-tiny: 9 convs; alexnet: 5+3.
        assert_eq!(resnet50(Scale::Full).num_layers(), 54);
        assert_eq!(yolo_tiny(Scale::Full).num_layers(), 9);
        assert_eq!(alexnet(Scale::Full).num_layers(), 8);
        // sfrnn: 2 LSTM layers x 35 steps; ds2: 2 convs + 3x50 GRU + fc.
        assert_eq!(selfish_rnn(Scale::Full).num_layers(), 70);
        assert_eq!(deepspeech2(Scale::Full).num_layers(), 153);
        // gpt2: 12 blocks x 6 GEMMs + lm head.
        assert_eq!(gpt2(Scale::Full).num_layers(), 73);
        // dlrm: 3 bottom + embed + 3 top; ncf: embed + 4 MLP.
        assert_eq!(dlrm(Scale::Full).num_layers(), 7);
        assert_eq!(ncf(Scale::Full).num_layers(), 5);
    }

    #[test]
    fn alexnet_full_fc6_matches_9216_inputs() {
        let net = alexnet(Scale::Full);
        let fc6 = net.layers().iter().find(|l| l.name() == "fc6").unwrap();
        let LayerKind::Gemm(g) = *fc6.kind() else { panic!("fc6 is a GEMM") };
        assert_eq!(g.k, 256 * 36, "256 channels x 6x6 after the last pool");
        assert_eq!(g.n, 4096);
    }

    #[test]
    fn resnet_full_ends_with_2048_to_1000_fc() {
        let net = resnet50(Scale::Full);
        let fc = net.layers().last().unwrap();
        let LayerKind::Gemm(g) = *fc.kind() else { panic!("fc is a GEMM") };
        assert_eq!(g.k, 2048);
        assert_eq!(g.n, 1000);
    }

    #[test]
    fn gpt2_full_dimensions() {
        let net = gpt2(Scale::Full);
        let qkv = net.layers().iter().find(|l| l.name() == "blk0_qkv").unwrap();
        let LayerKind::Gemm(g) = *qkv.kind() else { panic!() };
        assert_eq!((g.m, g.k, g.n), (256, 768, 3 * 768));
    }

    #[test]
    fn recommendation_models_keep_embedding_tables() {
        for name in ["dlrm", "ncf"] {
            let net = by_name(name, Scale::Full).unwrap();
            assert!(
                net.layers().iter().any(|l| l.is_embedding()),
                "{name} must contain an embedding gather"
            );
        }
    }
}
