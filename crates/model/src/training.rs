//! Training-mode network unrolling (extension).
//!
//! The original simulator "represents the multi-NPU operation flow of
//! inference (not training)" (appendix §3.4). Training is a natural
//! extension: each forward GEMM `C[m,n] = A[m,k] B[k,n]` is followed, in
//! reverse layer order, by the two backward GEMMs
//!
//! * activation gradient: `dA[m,k] = dC[m,n] · Bᵀ[n,k]`
//! * weight gradient: `dB[k,n] = Aᵀ[k,m] · dC[m,n]`
//!
//! [`training_unroll`] rewrites an inference network into this
//! forward + backward program, which roughly triples compute and traffic —
//! letting the sharing studies run on training-shaped workloads too.

use crate::layer::{GemmSpec, Layer, LayerKind};
use crate::network::Network;

/// Unroll `net` into a training iteration: all forward layers, then the
/// backward pass in reverse order (two GEMMs per forward GEMM/conv; the
/// embedding backward is a scatter with the same traffic as its gather,
/// modeled by repeating the embedding layer).
///
/// ```
/// use mnpu_model::{training_unroll, Network, Layer, GemmSpec};
///
/// let net = Network::new("mlp", vec![Layer::gemm("fc", GemmSpec::new(8, 128, 64))]);
/// let train = training_unroll(&net);
/// assert_eq!(train.num_layers(), 3); // forward + dA + dB
/// assert!(train.summary().total_macs == 3 * net.summary().total_macs);
/// ```
pub fn training_unroll(net: &Network) -> Network {
    let mut layers: Vec<Layer> = net.layers().to_vec();
    for l in net.iter().rev() {
        let g = l.to_gemm();
        match l.kind() {
            LayerKind::Embedding(_) => {
                // Gradient scatter touches the same rows as the gather.
                layers.push(Layer::new(format!("{}_bwd", l.name()), *l.kind(), l.batch()));
            }
            _ => {
                // dA = dC * B^T : (m x n) @ (n x k)
                layers.push(Layer::gemm(format!("{}_dA", l.name()), GemmSpec::new(g.m, g.n, g.k)));
                // dB = A^T * dC : (k x m) @ (m x n)
                layers.push(Layer::gemm(format!("{}_dB", l.name()), GemmSpec::new(g.k, g.m, g.n)));
            }
        }
    }
    Network::with_dtype(format!("{}_train", net.name()), layers, net.dtype())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use crate::zoo::Scale;

    #[test]
    fn gemm_network_triples_macs() {
        let net = Network::new(
            "mlp",
            vec![
                Layer::gemm("fc1", GemmSpec::new(4, 32, 16)),
                Layer::gemm("fc2", GemmSpec::new(4, 16, 8)),
            ],
        );
        let t = training_unroll(&net);
        assert_eq!(t.num_layers(), 6);
        assert_eq!(t.summary().total_macs, 3 * net.summary().total_macs);
        assert_eq!(t.name(), "mlp_train");
    }

    #[test]
    fn backward_pass_is_in_reverse_order() {
        let net = Network::new(
            "mlp",
            vec![
                Layer::gemm("a", GemmSpec::new(2, 4, 8)),
                Layer::gemm("b", GemmSpec::new(2, 8, 16)),
            ],
        );
        let t = training_unroll(&net);
        let names: Vec<&str> = t.iter().map(Layer::name).collect();
        assert_eq!(names, ["a", "b", "b_dA", "b_dB", "a_dA", "a_dB"]);
    }

    #[test]
    fn gradient_gemm_shapes_are_transposed_products() {
        let net = Network::new("one", vec![Layer::gemm("fc", GemmSpec::new(3, 5, 7))]);
        let t = training_unroll(&net);
        let da = t.layers()[1].to_gemm();
        let db = t.layers()[2].to_gemm();
        assert_eq!((da.m, da.k, da.n), (3, 7, 5));
        assert_eq!((db.m, db.k, db.n), (5, 3, 7));
    }

    #[test]
    fn embedding_backward_repeats_the_gather() {
        let net = zoo::dlrm(Scale::Bench);
        let t = training_unroll(&net);
        let fwd_embeds = net.iter().filter(|l| l.is_embedding()).count();
        let all_embeds = t.iter().filter(|l| l.is_embedding()).count();
        assert_eq!(all_embeds, 2 * fwd_embeds);
    }

    #[test]
    fn whole_zoo_unrolls_and_simulable_shapes() {
        for net in zoo::all(Scale::Bench) {
            let t = training_unroll(&net);
            assert!(t.num_layers() > net.num_layers(), "{}", net.name());
            assert!(t.summary().total_macs >= 2 * net.summary().total_macs, "{}", net.name());
        }
    }
}
