//! Whole-network container and summary statistics.

use crate::layer::{DataType, Layer};
use std::fmt;

/// An ordered sequence of layers executed back-to-back on one NPU core.
///
/// Networks are immutable once built; the simulator treats the layer list as
/// the program of the core. Layers execute in order with a barrier between
/// them (layer *i+1* reads the outputs layer *i* wrote to DRAM).
///
/// ```
/// use mnpu_model::{Network, Layer, GemmSpec};
///
/// let net = Network::new("mlp", vec![
///     Layer::gemm("fc1", GemmSpec::new(1, 784, 256)),
///     Layer::gemm("fc2", GemmSpec::new(1, 256, 10)),
/// ]);
/// assert_eq!(net.num_layers(), 2);
/// assert_eq!(net.summary().total_macs, 784 * 256 + 256 * 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
    dtype: DataType,
}

impl Network {
    /// Build a network from a layer list with the default datatype.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Network::with_dtype(name, layers, DataType::default())
    }

    /// Build a network with an explicit element datatype.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn with_dtype(name: impl Into<String>, layers: Vec<Layer>, dtype: DataType) -> Self {
        assert!(!layers.is_empty(), "network must contain at least one layer");
        Network { name: name.into(), layers, dtype }
    }

    /// The network's short name (e.g. `"ncf"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element datatype used for traffic accounting.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow the layer list.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterate over layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Layer> {
        self.layers.iter()
    }

    /// Aggregate compute/traffic statistics for the whole network.
    pub fn summary(&self) -> NetworkSummary {
        let mut s = NetworkSummary {
            name: self.name.clone(),
            num_layers: self.layers.len(),
            total_macs: 0,
            total_traffic_bytes: 0,
            max_layer_traffic_bytes: 0,
        };
        for l in &self.layers {
            s.total_macs += l.macs();
            let t = l.traffic_bytes(self.dtype);
            s.total_traffic_bytes += t;
            s.max_layer_traffic_bytes = s.max_layer_traffic_bytes.max(t);
        }
        s
    }

    /// Arithmetic intensity of the whole network (MACs per DRAM byte).
    ///
    /// High values indicate compute-bound workloads (e.g. ResNet50);
    /// low values indicate memory-bound workloads (e.g. DLRM).
    pub fn arithmetic_intensity(&self) -> f64 {
        let s = self.summary();
        s.total_macs as f64 / s.total_traffic_bytes as f64
    }
}

impl<'a> IntoIterator for &'a Network {
    type Item = &'a Layer;
    type IntoIter = std::slice::Iter<'a, Layer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} layers, {})", self.name, self.layers.len(), self.dtype)
    }
}

/// Aggregate statistics of a [`Network`], produced by [`Network::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSummary {
    /// Network name.
    pub name: String,
    /// Number of layers.
    pub num_layers: usize,
    /// Total multiply-accumulate operations.
    pub total_macs: u64,
    /// Total DRAM bytes moved (reads + writes), assuming no cross-layer reuse.
    pub total_traffic_bytes: u64,
    /// Largest single-layer traffic, a proxy for burst size.
    pub max_layer_traffic_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::GemmSpec;

    fn tiny() -> Network {
        Network::new("tiny", vec![Layer::gemm("fc", GemmSpec::new(2, 3, 4))])
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_rejected() {
        let _ = Network::new("empty", vec![]);
    }

    #[test]
    fn summary_adds_up() {
        let net = Network::new(
            "two",
            vec![
                Layer::gemm("a", GemmSpec::new(2, 3, 4)),
                Layer::gemm("b", GemmSpec::new(5, 6, 7)),
            ],
        );
        let s = net.summary();
        assert_eq!(s.num_layers, 2);
        assert_eq!(s.total_macs, 2 * 3 * 4 + 5 * 6 * 7);
        let t_a = (2 * 3 + 3 * 4 + 2 * 4) * 2;
        let t_b = (5 * 6 + 6 * 7 + 5 * 7) * 2;
        assert_eq!(s.total_traffic_bytes, t_a + t_b);
        assert_eq!(s.max_layer_traffic_bytes, t_b);
    }

    #[test]
    fn intensity_matches_summary() {
        let net = tiny();
        let s = net.summary();
        let ai = net.arithmetic_intensity();
        assert!((ai - s.total_macs as f64 / s.total_traffic_bytes as f64).abs() < 1e-12);
    }

    #[test]
    fn iteration_and_display() {
        let net = tiny();
        assert_eq!(net.iter().count(), 1);
        assert_eq!((&net).into_iter().count(), 1);
        assert!(net.to_string().contains("tiny"));
    }
}
