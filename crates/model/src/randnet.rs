//! Random network generation for predictor training.
//!
//! The paper's §4.6 trains its co-runner performance model on randomly
//! generated neural networks (in the style of DeepSniffer) rather than the
//! eight evaluation benchmarks, to avoid overfitting. This module generates
//! such networks: arbitrary numbers of convolution/GEMM layers with random
//! dimensions (output channels, stride, kernel size) in a realistic range.

use crate::layer::{ConvSpec, GemmSpec, Layer, LayerKind};
use crate::network::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameter ranges for [`generate`].
///
/// The defaults mirror the "realistic range" used by the paper: 3–14 layers,
/// channels up to 512, kernels in {1, 3, 5}, strides in {1, 2}.
#[derive(Debug, Clone, PartialEq)]
pub struct RandNetConfig {
    /// Minimum number of layers (inclusive).
    pub min_layers: usize,
    /// Maximum number of layers (inclusive).
    pub max_layers: usize,
    /// Candidate channel counts for conv layers / widths for GEMM layers.
    pub channel_choices: Vec<u64>,
    /// Candidate kernel sizes.
    pub kernel_choices: Vec<u64>,
    /// Candidate strides.
    pub stride_choices: Vec<u64>,
    /// Initial spatial size range (inclusive bounds).
    pub spatial_range: (u64, u64),
    /// Probability that a generated layer is a GEMM instead of a conv.
    pub gemm_prob: f64,
}

impl Default for RandNetConfig {
    fn default() -> Self {
        RandNetConfig {
            min_layers: 3,
            max_layers: 14,
            channel_choices: vec![16, 32, 64, 96, 128, 192, 256, 384, 512],
            kernel_choices: vec![1, 3, 5],
            stride_choices: vec![1, 2],
            spatial_range: (14, 112),
            gemm_prob: 0.3,
        }
    }
}

impl RandNetConfig {
    /// A configuration producing smaller networks, suitable for fast
    /// predictor-training sweeps.
    pub fn small() -> Self {
        RandNetConfig {
            min_layers: 3,
            max_layers: 8,
            channel_choices: vec![8, 16, 24, 32, 48, 64, 96, 128],
            spatial_range: (8, 48),
            ..Default::default()
        }
    }
}

/// Generate one random network, deterministically from `seed`.
///
/// The same `(config, seed)` pair always yields the same network, so
/// training sets are reproducible.
///
/// ```
/// use mnpu_model::randnet::{generate, RandNetConfig};
/// let a = generate(&RandNetConfig::default(), 7);
/// let b = generate(&RandNetConfig::default(), 7);
/// assert_eq!(a, b);
/// ```
///
/// # Panics
///
/// Panics if the configuration has empty choice lists or an inverted
/// layer-count or spatial range.
pub fn generate(config: &RandNetConfig, seed: u64) -> Network {
    assert!(
        config.min_layers >= 1 && config.min_layers <= config.max_layers,
        "invalid layer range"
    );
    assert!(!config.channel_choices.is_empty(), "channel_choices empty");
    assert!(!config.kernel_choices.is_empty(), "kernel_choices empty");
    assert!(!config.stride_choices.is_empty(), "stride_choices empty");
    assert!(
        config.spatial_range.0 >= 4 && config.spatial_range.0 <= config.spatial_range.1,
        "invalid spatial range"
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d4e_5055_7369_6d00); // "mNPUsim"
    let n_layers = rng.random_range(config.min_layers..=config.max_layers);
    let mut hw = rng.random_range(config.spatial_range.0..=config.spatial_range.1);
    let mut in_c = *pick(&mut rng, &config.channel_choices);
    let mut layers = Vec::with_capacity(n_layers);
    let mut in_gemm_tail = false;

    for i in 0..n_layers {
        // Once spatial collapses or we flip to GEMM, stay in the MLP tail:
        // real networks do not go back to convolutions after flattening.
        if in_gemm_tail || hw < 4 || rng.random_bool(config.gemm_prob) {
            in_gemm_tail = true;
            let k = if layers.is_empty() { in_c * hw * hw } else { in_c };
            let n = *pick(&mut rng, &config.channel_choices);
            let m = rng.random_range(1..=32);
            layers.push(Layer::new(
                format!("fc{i}"),
                LayerKind::Gemm(GemmSpec::new(m, k.max(1), n)),
                1,
            ));
            in_c = n;
            continue;
        }
        let out_c = *pick(&mut rng, &config.channel_choices);
        let k = *pick(&mut rng, &config.kernel_choices);
        let stride = *pick(&mut rng, &config.stride_choices);
        let padding = k / 2;
        let spec = ConvSpec::square(hw, in_c, out_c, k, stride, padding);
        hw = spec.out_h();
        in_c = out_c;
        layers.push(Layer::conv(format!("conv{i}"), spec));
    }
    Network::new(format!("rand{seed}"), layers)
}

/// Generate `count` random networks with consecutive seeds starting at
/// `first_seed`.
pub fn generate_batch(config: &RandNetConfig, first_seed: u64, count: usize) -> Vec<Network> {
    (0..count as u64).map(|i| generate(config, first_seed + i)).collect()
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.random_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandNetConfig::default();
        assert_eq!(generate(&cfg, 42), generate(&cfg, 42));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandNetConfig::default();
        let nets: Vec<_> = (0..16).map(|s| generate(&cfg, s)).collect();
        let distinct: std::collections::HashSet<_> =
            nets.iter().map(|n| n.summary().total_macs).collect();
        assert!(distinct.len() > 8, "networks suspiciously similar");
    }

    #[test]
    fn layer_counts_within_bounds() {
        let cfg = RandNetConfig { min_layers: 4, max_layers: 6, ..Default::default() };
        for seed in 0..64 {
            let n = generate(&cfg, seed).num_layers();
            assert!((4..=6).contains(&n), "seed {seed}: {n} layers");
        }
    }

    #[test]
    fn batch_is_consecutive_seeds() {
        let cfg = RandNetConfig::small();
        let batch = generate_batch(&cfg, 100, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[2], generate(&cfg, 102));
    }

    #[test]
    fn generated_networks_are_valid() {
        let cfg = RandNetConfig::default();
        for seed in 0..64 {
            let net = generate(&cfg, seed);
            let s = net.summary();
            assert!(s.total_macs > 0, "seed {seed}");
            assert!(s.total_traffic_bytes > 0, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid layer range")]
    fn inverted_layer_range_rejected() {
        let cfg = RandNetConfig { min_layers: 9, max_layers: 3, ..Default::default() };
        let _ = generate(&cfg, 0);
    }
}
