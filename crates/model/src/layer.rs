//! Layer kinds and their lowering to GEMM.

use std::fmt;

/// Numeric precision of tensor elements.
///
/// The simulator is data-oblivious: the only thing precision changes is the
/// number of bytes moved per element, which scales memory traffic and the
/// SPM footprint of tiles.
///
/// ```
/// use mnpu_model::DataType;
/// assert_eq!(DataType::Fp16.bytes(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// 8-bit integer (inference quantization).
    Int8,
    /// 16-bit floating point (the default, matching bf16 on cloud NPUs).
    #[default]
    Fp16,
    /// 32-bit floating point.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            DataType::Int8 => 1,
            DataType::Fp16 => 2,
            DataType::Fp32 => 4,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int8 => "int8",
            DataType::Fp16 => "fp16",
            DataType::Fp32 => "fp32",
        };
        f.write_str(s)
    }
}

/// A 2-D convolution layer, described by its tensor dimensions.
///
/// Convolutions are lowered to GEMM with the image-to-column (*im2col*)
/// transform; see [`ConvSpec::to_gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Input feature-map height.
    pub in_h: u64,
    /// Input feature-map width.
    pub in_w: u64,
    /// Input channels.
    pub in_c: u64,
    /// Output channels (number of filters).
    pub out_c: u64,
    /// Kernel height.
    pub k_h: u64,
    /// Kernel width.
    pub k_w: u64,
    /// Stride (same in both spatial dimensions).
    pub stride: u64,
    /// Symmetric zero padding on each spatial border.
    pub padding: u64,
}

impl ConvSpec {
    /// A square-kernel, square-input convolution.
    pub const fn square(
        in_hw: u64,
        in_c: u64,
        out_c: u64,
        k: u64,
        stride: u64,
        padding: u64,
    ) -> Self {
        ConvSpec { in_h: in_hw, in_w: in_hw, in_c, out_c, k_h: k, k_w: k, stride, padding }
    }

    /// Output feature-map height.
    pub const fn out_h(&self) -> u64 {
        (self.in_h + 2 * self.padding - self.k_h) / self.stride + 1
    }

    /// Output feature-map width.
    pub const fn out_w(&self) -> u64 {
        (self.in_w + 2 * self.padding - self.k_w) / self.stride + 1
    }

    /// Lower to GEMM via im2col for a given batch size.
    ///
    /// The im2col expansion turns the convolution into
    /// `M x K @ K x N` with `M = batch * out_h * out_w`,
    /// `K = k_h * k_w * in_c`, and `N = out_c`.
    pub const fn to_gemm(&self, batch: u64) -> GemmSpec {
        GemmSpec {
            m: batch * self.out_h() * self.out_w(),
            k: self.k_h * self.k_w * self.in_c,
            n: self.out_c,
        }
    }
}

/// A general matrix-matrix multiplication `C[m,n] = A[m,k] * B[k,n]`.
///
/// `A` is the activation (streamed per inference), `B` the weights, and `C`
/// the output activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmSpec {
    /// Rows of `A` and `C`.
    pub m: u64,
    /// Contraction dimension (columns of `A`, rows of `B`).
    pub k: u64,
    /// Columns of `B` and `C`.
    pub n: u64,
}

impl GemmSpec {
    /// Construct a GEMM shape.
    pub const fn new(m: u64, k: u64, n: u64) -> Self {
        GemmSpec { m, k, n }
    }

    /// Multiply-accumulate operations performed.
    pub const fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }

    /// Elements of the input activation matrix `A`.
    pub const fn input_elems(&self) -> u64 {
        self.m * self.k
    }

    /// Elements of the weight matrix `B`.
    pub const fn weight_elems(&self) -> u64 {
        self.k * self.n
    }

    /// Elements of the output matrix `C`.
    pub const fn output_elems(&self) -> u64 {
        self.m * self.n
    }

    /// Total elements touched in DRAM for one execution (read A, read B,
    /// write C), ignoring on-chip reuse.
    pub const fn total_elems(&self) -> u64 {
        self.input_elems() + self.weight_elems() + self.output_elems()
    }

    /// Arithmetic intensity in MACs per element moved.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.macs() as f64 / self.total_elems() as f64
    }
}

/// An embedding-table gather, the memory-dominated layer of recommendation
/// models (DLRM, NCF).
///
/// Each inference gathers `lookups` rows of `embed_dim` elements from each of
/// `tables` tables holding `rows_per_table` rows. The gathered vectors are
/// reduced (summed/concatenated), which we model as a tiny GEMM tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmbeddingSpec {
    /// Number of embedding tables.
    pub tables: u64,
    /// Rows in each table.
    pub rows_per_table: u64,
    /// Elements per row (embedding dimension).
    pub embed_dim: u64,
    /// Rows gathered per table per inference (batch folded in).
    pub lookups: u64,
}

impl EmbeddingSpec {
    /// Total elements read from DRAM per execution.
    pub const fn gathered_elems(&self) -> u64 {
        self.tables * self.lookups * self.embed_dim
    }

    /// Total resident table capacity in elements.
    pub const fn table_elems(&self) -> u64 {
        self.tables * self.rows_per_table * self.embed_dim
    }
}

/// The computational kind of a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution, lowered to GEMM by im2col.
    Conv(ConvSpec),
    /// Dense GEMM (fully-connected, RNN step, attention projection).
    Gemm(GemmSpec),
    /// Embedding gather.
    Embedding(EmbeddingSpec),
}

/// One layer of a [`crate::Network`]: a name, a kind, and a batch size.
///
/// ```
/// use mnpu_model::{Layer, GemmSpec};
///
/// let fc = Layer::gemm("fc1", GemmSpec::new(1, 9216, 4096));
/// assert_eq!(fc.to_gemm().macs(), 9216 * 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    batch: u64,
}

impl Layer {
    /// Create a layer with an explicit batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or any dimension of `kind` is zero.
    pub fn new(name: impl Into<String>, kind: LayerKind, batch: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        match kind {
            LayerKind::Conv(c) => {
                assert!(
                    c.in_h > 0
                        && c.in_w > 0
                        && c.in_c > 0
                        && c.out_c > 0
                        && c.k_h > 0
                        && c.k_w > 0
                        && c.stride > 0,
                    "conv dimensions must be positive"
                );
                assert!(
                    c.in_h + 2 * c.padding >= c.k_h && c.in_w + 2 * c.padding >= c.k_w,
                    "kernel must fit inside padded input"
                );
            }
            LayerKind::Gemm(g) => {
                assert!(g.m > 0 && g.k > 0 && g.n > 0, "gemm dimensions must be positive");
            }
            LayerKind::Embedding(e) => {
                assert!(
                    e.tables > 0 && e.rows_per_table > 0 && e.embed_dim > 0 && e.lookups > 0,
                    "embedding dimensions must be positive"
                );
                assert!(e.lookups <= e.rows_per_table * 64, "implausible lookup count");
            }
        }
        Layer { name: name.into(), kind, batch }
    }

    /// Convenience constructor for a batch-1 convolution layer.
    pub fn conv(name: impl Into<String>, spec: ConvSpec) -> Self {
        Layer::new(name, LayerKind::Conv(spec), 1)
    }

    /// Convenience constructor for a batch-1 GEMM layer.
    pub fn gemm(name: impl Into<String>, spec: GemmSpec) -> Self {
        Layer::new(name, LayerKind::Gemm(spec), 1)
    }

    /// Convenience constructor for an embedding layer.
    pub fn embedding(name: impl Into<String>, spec: EmbeddingSpec) -> Self {
        Layer::new(name, LayerKind::Embedding(spec), 1)
    }

    /// The layer's name (unique within a network by convention, not enforced).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's kind.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Batch size this layer executes with.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The GEMM this layer lowers to on the systolic array.
    ///
    /// Convolutions lower via im2col, GEMMs are returned as-is, and
    /// embedding layers lower to their (small) reduction GEMM: the gathered
    /// vectors multiplied by an identity-like projection. The embedding's
    /// memory traffic is dominated by the gather and is reported separately
    /// by [`Layer::extra_read_elems`].
    pub fn to_gemm(&self) -> GemmSpec {
        match self.kind {
            LayerKind::Conv(c) => c.to_gemm(self.batch),
            LayerKind::Gemm(g) => GemmSpec { m: g.m * self.batch, ..g },
            LayerKind::Embedding(e) => GemmSpec { m: self.batch * e.tables, k: e.embed_dim, n: 1 },
        }
    }

    /// Elements read from DRAM beyond the lowered GEMM's `A`/`B` operands.
    ///
    /// Non-zero only for embedding layers, where the gather itself (random
    /// rows across large tables) is the dominant traffic.
    pub fn extra_read_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Embedding(e) => self.batch * e.gathered_elems(),
            _ => 0,
        }
    }

    /// `true` when the layer is an embedding gather.
    pub fn is_embedding(&self) -> bool {
        matches!(self.kind, LayerKind::Embedding(_))
    }

    /// Total MACs executed by this layer.
    pub fn macs(&self) -> u64 {
        self.to_gemm().macs()
    }

    /// Total elements moved to/from DRAM by this layer (reads + writes).
    pub fn traffic_elems(&self) -> u64 {
        self.to_gemm().total_elems() + self.extra_read_elems()
    }

    /// Total bytes moved to/from DRAM given a datatype.
    pub fn traffic_bytes(&self, dtype: DataType) -> u64 {
        self.traffic_elems() * dtype.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_dims() {
        let c = ConvSpec::square(224, 3, 96, 11, 4, 2);
        assert_eq!(c.out_h(), 55);
        assert_eq!(c.out_w(), 55);
    }

    #[test]
    fn conv_same_padding_keeps_dims() {
        let c = ConvSpec::square(56, 64, 64, 3, 1, 1);
        assert_eq!(c.out_h(), 56);
        assert_eq!(c.out_w(), 56);
    }

    #[test]
    fn im2col_lowering_dimensions() {
        let c = ConvSpec::square(224, 3, 96, 11, 4, 2);
        let g = c.to_gemm(1);
        assert_eq!(g.m, 55 * 55);
        assert_eq!(g.k, 11 * 11 * 3);
        assert_eq!(g.n, 96);
    }

    #[test]
    fn im2col_batch_scales_m_only() {
        let c = ConvSpec::square(32, 16, 32, 3, 1, 1);
        let g1 = c.to_gemm(1);
        let g4 = c.to_gemm(4);
        assert_eq!(g4.m, 4 * g1.m);
        assert_eq!(g4.k, g1.k);
        assert_eq!(g4.n, g1.n);
    }

    #[test]
    fn gemm_macs_and_traffic() {
        let g = GemmSpec::new(10, 20, 30);
        assert_eq!(g.macs(), 6000);
        assert_eq!(g.total_elems(), 200 + 600 + 300);
        let ai = g.arithmetic_intensity();
        assert!((ai - 6000.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn embedding_traffic_dominated_by_gather() {
        let e = EmbeddingSpec { tables: 8, rows_per_table: 100_000, embed_dim: 64, lookups: 32 };
        let l = Layer::embedding("emb", e);
        assert_eq!(l.extra_read_elems(), 8 * 32 * 64);
        assert!(l.extra_read_elems() > l.to_gemm().weight_elems());
    }

    #[test]
    fn layer_gemm_batch_applied() {
        let l = Layer::new("fc", LayerKind::Gemm(GemmSpec::new(1, 128, 64)), 16);
        assert_eq!(l.to_gemm().m, 16);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = Layer::new("x", LayerKind::Gemm(GemmSpec::new(1, 1, 1)), 0);
    }

    #[test]
    #[should_panic(expected = "gemm dimensions must be positive")]
    fn zero_dim_rejected() {
        let _ = Layer::new("x", LayerKind::Gemm(GemmSpec::new(0, 1, 1)), 1);
    }

    #[test]
    #[should_panic(expected = "kernel must fit")]
    fn kernel_larger_than_input_rejected() {
        let _ = Layer::conv("c", ConvSpec::square(2, 3, 8, 5, 1, 0));
    }

    #[test]
    fn datatype_bytes() {
        assert_eq!(DataType::Int8.bytes(), 1);
        assert_eq!(DataType::Fp16.bytes(), 2);
        assert_eq!(DataType::Fp32.bytes(), 4);
        assert_eq!(DataType::default(), DataType::Fp16);
    }

    #[test]
    fn display_datatype() {
        assert_eq!(DataType::Fp16.to_string(), "fp16");
    }
}
