//! Statistics and bandwidth tracing.

/// Counters for one channel.
///
/// Every field is maintained identically by the per-command scheduler loop
/// and the steady-state fast path (`pump_run` updates each counter per
/// retired entry, bit-for-bit like `Channel::commit`), so no consumer —
/// including the energy model, which is a pure function of these counters —
/// can observe which path serviced a transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Read transactions serviced.
    pub reads: u64,
    /// Write transactions serviced.
    pub writes: u64,
    /// CAS commands that hit an open row.
    pub row_hits: u64,
    /// CAS commands to a closed bank (ACT needed).
    pub row_misses: u64,
    /// CAS commands that evicted another open row (PRE + ACT needed).
    pub row_conflicts: u64,
    /// Data-bus busy cycles.
    pub busy_cycles: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Sum of transaction latencies (arrival → data end).
    pub latency_sum: u64,
    /// Maximum transaction latency observed.
    pub latency_max: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

impl ChannelStats {
    /// Total transactions serviced.
    pub fn transactions(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean transaction latency in device cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.transactions() == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.transactions() as f64
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Merge another channel's counters into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.busy_cycles += other.busy_cycles;
        self.bytes += other.bytes;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.refreshes += other.refreshes;
    }
}

/// Device-wide statistics, aggregated by [`crate::Dram::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Aggregate of all channels.
    pub total: ChannelStats,
    /// Per-channel counters.
    pub per_channel: Vec<ChannelStats>,
    /// Bytes transferred per requesting core.
    pub per_core_bytes: Vec<u64>,
}

impl DramStats {
    /// Achieved bandwidth utilization over `elapsed` device cycles given
    /// the per-cycle channel capacity (`channels * bytes_per_cycle`).
    pub fn utilization(&self, elapsed: u64, peak_bytes_per_cycle: f64) -> f64 {
        if elapsed == 0 || peak_bytes_per_cycle <= 0.0 {
            return 0.0;
        }
        self.total.bytes as f64 / (elapsed as f64 * peak_bytes_per_cycle)
    }
}

/// Windowed per-core byte counters, used to reproduce the paper's bandwidth
/// timelines (Fig. 12) and burstiness plots (Fig. 2b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandwidthTrace {
    window: u64,
    cores: usize,
    /// `bytes[w] = per-core byte counts in window w`.
    windows: Vec<Vec<u64>>,
}

impl BandwidthTrace {
    /// Create a trace with the given window length (device cycles).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `cores` is zero.
    pub fn new(window: u64, cores: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(cores > 0, "cores must be positive");
        BandwidthTrace { window, cores, windows: Vec::new() }
    }

    /// Window length in device cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Record `bytes` transferred for `core` at `cycle`.
    pub fn record(&mut self, cycle: u64, core: usize, bytes: u64) {
        let w = (cycle / self.window) as usize;
        if self.windows.len() <= w {
            self.windows.resize_with(w + 1, || vec![0; self.cores]);
        }
        self.windows[w][core.min(self.cores - 1)] += bytes;
    }

    /// Number of windows recorded so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Bytes moved by `core` in each window.
    pub fn core_series(&self, core: usize) -> Vec<u64> {
        self.windows.iter().map(|w| w.get(core).copied().unwrap_or(0)).collect()
    }

    /// Total bytes per window across cores.
    pub fn total_series(&self) -> Vec<u64> {
        self.windows.iter().map(|w| w.iter().sum()).collect()
    }

    /// Serialize the trace (window length, core count, windowed counters).
    pub fn save_state(&self, w: &mut mnpu_snapshot::Writer) {
        w.u64(self.window);
        w.usize(self.cores);
        w.seq(&self.windows, |w, row| w.seq(row, |w, &b| w.u64(b)));
    }

    /// Restore a trace saved by [`BandwidthTrace::save_state`].
    pub fn load_state(
        r: &mut mnpu_snapshot::Reader<'_>,
    ) -> Result<BandwidthTrace, mnpu_snapshot::SnapError> {
        let window = r.u64()?;
        let cores = r.usize()?;
        if window == 0 || cores == 0 {
            return Err(mnpu_snapshot::SnapError::BadValue("degenerate bandwidth trace"));
        }
        let windows = r.seq(|r| r.seq(|r| r.u64()))?;
        Ok(BandwidthTrace { window, cores, windows })
    }

    /// Per-window bandwidth of `core` normalized to a peak of
    /// `peak_bytes_per_cycle` (values may exceed 1.0 when demand exceeds a
    /// partition's share but not the device peak).
    pub fn normalized_series(&self, core: usize, peak_bytes_per_cycle: f64) -> Vec<f64> {
        let denom = peak_bytes_per_cycle * self.window as f64;
        self.core_series(core).iter().map(|&b| b as f64 / denom).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_stats_rates() {
        let s = ChannelStats {
            reads: 3,
            writes: 1,
            row_hits: 2,
            row_misses: 1,
            row_conflicts: 1,
            latency_sum: 80,
            ..Default::default()
        };
        assert_eq!(s.transactions(), 4);
        assert!((s.mean_latency() - 20.0).abs() < 1e-12);
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = ChannelStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(DramStats::default().utilization(0, 32.0), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ChannelStats { reads: 1, bytes: 64, latency_max: 10, ..Default::default() };
        let b = ChannelStats { reads: 2, bytes: 128, latency_max: 30, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.bytes, 192);
        assert_eq!(a.latency_max, 30);
    }

    #[test]
    fn trace_windows_accumulate() {
        let mut t = BandwidthTrace::new(100, 2);
        t.record(5, 0, 64);
        t.record(50, 0, 64);
        t.record(150, 1, 64);
        assert_eq!(t.len(), 2);
        assert_eq!(t.core_series(0), vec![128, 0]);
        assert_eq!(t.core_series(1), vec![0, 64]);
        assert_eq!(t.total_series(), vec![128, 64]);
    }

    #[test]
    fn normalized_series_scaling() {
        let mut t = BandwidthTrace::new(10, 1);
        t.record(0, 0, 320);
        // 320 bytes in a 10-cycle window at 32 B/cycle peak = 1.0.
        let s = t.normalized_series(0, 32.0);
        assert!((s[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = BandwidthTrace::new(0, 1);
    }
}
