//! DRAM energy accounting (the DRAMsim3 substrate ships a power model; this
//! is the equivalent for our rewrite).
//!
//! Energy is computed *post-hoc* from the counters in
//! [`crate::DramStats`] — the hot path pays nothing, and because the
//! steady-state fast-forward path maintains those counters bit-for-bit
//! (see the invariants in DESIGN.md), energy estimates are unchanged by
//! whether the fast path serviced a run. The model follows the usual
//! current-profile decomposition:
//!
//! * one activation energy per ACT/PRE pair (row misses + conflicts),
//! * per-access read/write energy (CAS + I/O),
//! * per-refresh energy,
//! * background (standby) power integrated over elapsed cycles.

use crate::config::DramConfig;
use crate::stats::DramStats;

/// Per-operation DRAM energy parameters in picojoules (background power in
/// microwatts per channel).
///
/// The presets are order-of-magnitude figures from public HBM2/DDR4 power
/// studies (≈ 4 pJ/bit end-to-end for HBM2, ≈ 15 pJ/bit for DDR4); swap in
/// vendor numbers for absolute studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramEnergy {
    /// Energy of one ACT + PRE pair (pJ).
    pub act_pj: u64,
    /// Energy of one 64-byte read burst, CAS + I/O (pJ).
    pub read_pj: u64,
    /// Energy of one 64-byte write burst (pJ).
    pub write_pj: u64,
    /// Energy of one all-bank refresh (pJ).
    pub refresh_pj: u64,
    /// Background (standby) power per channel (µW).
    pub background_uw: u64,
}

impl DramEnergy {
    /// HBM2-class figures: ≈ 4 pJ/bit transfer energy.
    pub const fn hbm2() -> Self {
        DramEnergy {
            act_pj: 900,
            read_pj: 2048, // 512 bits x ~4 pJ/bit
            write_pj: 2048,
            refresh_pj: 30_000,
            background_uw: 110_000,
        }
    }

    /// DDR4-class figures: ≈ 15 pJ/bit transfer energy.
    pub const fn ddr4() -> Self {
        DramEnergy {
            act_pj: 1700,
            read_pj: 7680, // 512 bits x ~15 pJ/bit
            write_pj: 7680,
            refresh_pj: 50_000,
            background_uw: 75_000,
        }
    }
}

/// A post-hoc energy breakdown in nanojoules, from [`estimate_energy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activation (ACT/PRE) energy.
    pub activate_nj: f64,
    /// Read burst energy.
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background/standby energy over the observed interval.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Energy per byte transferred, in picojoules (0 when nothing moved).
    pub fn pj_per_byte(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.total_nj() * 1000.0 / bytes as f64
    }
}

/// Estimate device energy from run statistics over `elapsed_cycles` of the
/// device clock.
pub fn estimate_energy(
    stats: &DramStats,
    config: &DramConfig,
    energy: &DramEnergy,
    elapsed_cycles: u64,
) -> EnergyBreakdown {
    let t = &stats.total;
    let acts = t.row_misses + t.row_conflicts;
    let seconds = elapsed_cycles as f64 / (config.freq_mhz as f64 * 1e6);
    let background_w = energy.background_uw as f64 * 1e-6 * config.channels as f64;
    EnergyBreakdown {
        activate_nj: acts as f64 * energy.act_pj as f64 / 1000.0,
        read_nj: t.reads as f64 * energy.read_pj as f64 / 1000.0,
        write_nj: t.writes as f64 * energy.write_pj as f64 / 1000.0,
        refresh_nj: t.refreshes as f64 * energy.refresh_pj as f64 / 1000.0,
        background_nj: background_w * seconds * 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ChannelStats;

    fn stats(reads: u64, writes: u64, misses: u64, refreshes: u64) -> DramStats {
        DramStats {
            total: ChannelStats {
                reads,
                writes,
                row_misses: misses,
                refreshes,
                bytes: (reads + writes) * 64,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_adds_up() {
        let s = stats(100, 50, 30, 2);
        let cfg = DramConfig::hbm2(1);
        let e = estimate_energy(&s, &cfg, &DramEnergy::hbm2(), 10_000);
        let sum = e.activate_nj + e.read_nj + e.write_nj + e.refresh_nj + e.background_nj;
        assert!((e.total_nj() - sum).abs() < 1e-9);
        assert!(e.total_nj() > 0.0);
    }

    #[test]
    fn read_energy_proportional_to_reads() {
        let cfg = DramConfig::hbm2(1);
        let en = DramEnergy::hbm2();
        let a = estimate_energy(&stats(100, 0, 0, 0), &cfg, &en, 1);
        let b = estimate_energy(&stats(200, 0, 0, 0), &cfg, &en, 1);
        assert!((b.read_nj - 2.0 * a.read_nj).abs() < 1e-9);
    }

    #[test]
    fn background_scales_with_time_and_channels() {
        let en = DramEnergy::hbm2();
        let s = stats(0, 0, 0, 0);
        let one = estimate_energy(&s, &DramConfig::hbm2(1), &en, 1_000_000);
        let eight = estimate_energy(&s, &DramConfig::hbm2(8), &en, 1_000_000);
        let longer = estimate_energy(&s, &DramConfig::hbm2(1), &en, 2_000_000);
        assert!((eight.background_nj - 8.0 * one.background_nj).abs() < 1e-6);
        assert!((longer.background_nj - 2.0 * one.background_nj).abs() < 1e-6);
    }

    #[test]
    fn hbm2_moves_bytes_cheaper_than_ddr4() {
        let s = stats(1000, 0, 100, 0);
        let h = estimate_energy(&s, &DramConfig::hbm2(1), &DramEnergy::hbm2(), 1);
        let d = estimate_energy(&s, &DramConfig::ddr4(1), &DramEnergy::ddr4(), 1);
        assert!(h.pj_per_byte(64_000) < d.pj_per_byte(64_000));
    }

    #[test]
    fn pj_per_byte_zero_safe() {
        let e = estimate_energy(&stats(0, 0, 0, 0), &DramConfig::hbm2(1), &DramEnergy::hbm2(), 0);
        assert_eq!(e.pj_per_byte(0), 0.0);
    }
}
