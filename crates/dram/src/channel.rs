//! Per-channel command scheduling: banks, row buffers, data bus, refresh.

use crate::address::DecodedAddr;
use crate::config::DramConfig;
use crate::dram::Completion;
use crate::stats::ChannelStats;
#[cfg(test)]
use mnpu_probe::NullProbe;
use mnpu_probe::{Event, Probe};
use mnpu_snapshot::{Reader, SnapError, Writer};
use std::cell::Cell;
use std::collections::VecDeque;

/// FR-FCFS reordering window: the scheduler considers at most this many
/// queue entries when picking the next command.
const FRFCFS_WINDOW: usize = 16;

/// Starvation cap: once the oldest queued request has been bypassed this
/// many times, it is scheduled next regardless of row state. Without the
/// cap an endless row-hit stream from one core can park another core's
/// row-conflicting request indefinitely (the config fuzzer produced a
/// single store with a ~2900-cycle queue latency this way); real
/// controllers bound reordering with exactly this kind of age threshold.
const FRFCFS_MAX_BYPASS: u32 = 8;

/// Memoized scheduler decision: which queued transaction the scheduler
/// would commit next and at what cycle. The candidate (and its issue time)
/// depends only on channel state — bank rows, bus history, refresh window,
/// queued arrivals — never on the query cycle, so it stays valid until one
/// of those changes: `Dirty` is set on enqueue into the reorder window, on
/// every commit (the queue shifts and bank/bus state moves), on refresh,
/// and on idle-refresh catch-up. This turns the per-event-loop rescan of
/// the transaction queue into a single cached read on the (common) path
/// where the channel's state did not change since the last query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextCand {
    /// State changed since the last scan; recompute on next query.
    Dirty,
    /// Transaction queue is empty: nothing to schedule.
    Empty,
    /// `queue[idx]` commits next, with CAS legal at `t_cas`.
    At {
        /// Queue index of the winning candidate.
        idx: usize,
        /// Earliest legal CAS cycle for that candidate.
        t_cas: u64,
    },
}

/// An installed steady-state run: a prefix of the queue proven to commit
/// as `next_cas, next_cas + burst, next_cas + 2*burst, ...` — tCCD-spaced
/// bus slots from the current bus edge — with no scheduling decision left
/// to make. See [`Channel::try_install_run`] for the exactness argument.
#[derive(Debug, Clone, Copy)]
struct FastRun {
    /// Transactions left in the run; they occupy `queue[0..remaining]`.
    remaining: u32,
    /// CAS cycle of the run's next commit.
    next_cas: u64,
    /// CAS-to-data latency of the run's direction (`cwl` or `cl`).
    lat: u64,
}

/// A transaction waiting in a channel queue.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub meta: u64,
    pub core: usize,
    pub addr: u64,
    pub decoded: DecodedAddr,
    /// `decoded.flat_bank(..)`, precomputed at enqueue: the scheduler reads
    /// it on every FR-FCFS window scan, so the multiply is hoisted out of
    /// the hot loop.
    pub flat: u32,
    pub is_write: bool,
    pub arrival: u64,
    /// Times a younger request has been committed ahead of this one;
    /// compared against [`FRFCFS_MAX_BYPASS`].
    pub bypassed: u32,
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest allowed ACT (tRP after the last PRE, or refresh end).
    ready_act: u64,
    /// Earliest allowed CAS to the open row (ACT + tRCD).
    ready_cas: u64,
    /// Earliest allowed PRE (row open ≥ tRAS; write recovery).
    ready_pre: u64,
}

impl BankState {
    fn new() -> Self {
        BankState { open_row: None, ready_act: 0, ready_cas: 0, ready_pre: 0 }
    }
}

/// One DRAM channel: a transaction queue, bank states, a shared data bus,
/// and a refresh timer. Channels are fully independent of each other.
///
/// This type is driven by [`crate::Dram`]; it is exposed for tests and for
/// building custom memory hierarchies.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: DramConfig,
    queue: VecDeque<Pending>,
    banks: Vec<BankState>,
    // Data-bus and command-bus state.
    last_cas_time: u64,
    last_cas_bg: u64,
    any_cas: bool,
    last_data_end: u64,
    last_was_write: bool,
    any_data: bool,
    // ACT history for tRRD / tFAW.
    last_act_time: u64,
    last_act_bg: u64,
    any_act: bool,
    act_window: VecDeque<u64>,
    // Refresh.
    next_refresh: u64,
    refresh_until: u64,
    /// Memoized scheduler pick; see [`NextCand`]. `Cell` so read-only
    /// queries (`earliest_action`) can fill it lazily.
    next_cand: Cell<NextCand>,
    /// Active steady-state run, if any; see [`FastRun`]. While a run is
    /// active, `next_cand` is kept `Dirty` and every query goes through the
    /// run's closed-form schedule instead.
    run: Option<FastRun>,
    /// Commits retired through the fast path — a coverage diagnostic for
    /// tests and benches, deliberately *not* part of [`ChannelStats`] (the
    /// fast path must not change any reported counter).
    ff_commits: u64,
    stats: ChannelStats,
}

impl Channel {
    /// Create an idle channel.
    pub fn new(cfg: &DramConfig) -> Self {
        Channel {
            cfg: cfg.clone(),
            queue: VecDeque::with_capacity(cfg.queue_depth),
            banks: vec![BankState::new(); cfg.banks_per_channel() as usize],
            last_cas_time: 0,
            last_cas_bg: 0,
            any_cas: false,
            last_data_end: 0,
            last_was_write: false,
            any_data: false,
            last_act_time: 0,
            last_act_bg: 0,
            any_act: false,
            act_window: VecDeque::with_capacity(4),
            next_refresh: cfg.timing.trefi,
            refresh_until: 0,
            next_cand: Cell::new(NextCand::Empty),
            run: None,
            ff_commits: 0,
            stats: ChannelStats::default(),
        }
    }

    /// Commits retired through the steady-state fast path. Diagnostic only:
    /// not part of [`ChannelStats`] and absent from every report.
    #[doc(hidden)]
    pub fn fastfwd_commits(&self) -> u64 {
        self.ff_commits
    }

    /// Number of queued (not yet issued) transactions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when the queue can accept another transaction.
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.cfg.queue_depth
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    pub(crate) fn enqueue(&mut self, p: Pending) -> bool {
        if !self.has_room() {
            return false;
        }
        debug_assert_eq!(p.flat as usize, p.decoded.flat_bank(&self.cfg), "stale flat-bank cache");
        self.queue.push_back(p);
        // Only arrivals that land inside the reorder window can change the
        // scheduler's pick; deeper arrivals are invisible until the queue
        // drains into them (every drain dirties the cache anyway).
        if self.queue.len() <= FRFCFS_WINDOW {
            self.next_cand.set(NextCand::Dirty);
        }
        true
    }

    /// The memoized scheduler pick, recomputing it if channel state changed
    /// since the last query. Never returns [`NextCand::Dirty`].
    fn cached_candidate(&self) -> NextCand {
        let c = self.next_cand.get();
        if c != NextCand::Dirty {
            return c;
        }
        let fresh = match self.pick_candidate() {
            None => NextCand::Empty,
            Some(idx) => NextCand::At { idx, t_cas: self.issue_time(&self.queue[idx]) },
        };
        self.next_cand.set(fresh);
        fresh
    }

    /// Commit every command legal at or before `now`; completed transactions
    /// are appended to `out` (their `completed_at` may lie in the future —
    /// the caller delivers them when the clock reaches it).
    #[cfg(test)]
    pub(crate) fn advance(&mut self, now: u64, out: &mut Vec<Completion>) {
        self.advance_probed(now, out, &mut NullProbe, 0);
    }

    /// [`Channel::advance`] with an observability probe; `ch_idx` tags the
    /// emitted events with this channel's device-level index. With
    /// [`NullProbe`] this monomorphizes to exactly the uninstrumented body.
    pub(crate) fn advance_probed<P: Probe>(
        &mut self,
        now: u64,
        out: &mut Vec<Completion>,
        probe: &mut P,
        ch_idx: usize,
    ) {
        let refresh_due = self.cfg.timing.trefi > 0 && self.next_refresh <= now;
        if self.run.is_some() {
            if refresh_due {
                // The slow loop services a due refresh before any further
                // CAS, so the run's remaining schedule is no longer the
                // next thing to happen: drop it and recompute honestly.
                // (Entries still queued; nothing committed is undone.)
                self.run = None;
                self.next_cand.set(NextCand::Dirty);
            } else {
                self.pump_run(now, out, probe, ch_idx);
                if self.run.is_some() {
                    // Slots beyond `now` remain; nothing else can commit
                    // first (every competitor's issue time is bounded below
                    // by the run's next bus slot).
                    return;
                }
                // Run exhausted at or before `now`: fall through — a fresh
                // candidate (or follow-up run) may be actionable this cycle.
            }
        }
        if !refresh_due {
            // Fast path: no refresh pending and the memoized pick is not
            // actionable yet — the channel cannot commit anything at `now`.
            // (Idle-refresh catch-up only fires when a refresh is overdue,
            // so skipping it here loses nothing.)
            match self.cached_candidate() {
                NextCand::Empty => return,
                NextCand::At { t_cas, .. } if t_cas > now => return,
                _ => {}
            }
        }
        self.catch_up_refresh(now);
        loop {
            if self.cfg.timing.trefi > 0 && self.next_refresh <= now {
                self.commit_refresh(probe, ch_idx);
                continue;
            }
            let NextCand::At { idx, t_cas } = self.cached_candidate() else { break };
            if t_cas > now {
                break;
            }
            if idx == 0 && self.try_install_run(t_cas) {
                self.pump_run(now, out, probe, ch_idx);
                if self.run.is_some() {
                    return;
                }
                continue;
            }
            for j in 0..idx {
                self.queue[j].bypassed += 1;
            }
            let p = self.queue.remove(idx).expect("index valid");
            self.next_cand.set(NextCand::Dirty);
            let done = self.commit(&p, t_cas, probe, ch_idx);
            out.push(done);
        }
    }

    /// Try to prove the head of the queue leads a steady-state run whose
    /// commit schedule is closed-form, and install it as [`FastRun`].
    /// `t_cas` is the scheduler's (cached) commit cycle for the head.
    ///
    /// The run consists of the maximal queue prefix of same-direction row
    /// hits whose arrival and `ready_cas` precede their bus slot
    /// `t_s = t_cas + s * burst_cycles`. Exactness argument (the full
    /// derivation lives in DESIGN.md):
    ///
    /// * Each run entry commits exactly at its slot: its CAS floor is the
    ///   data-bus edge `last_data_end - lat = t_prev + burst`, every other
    ///   term (arrival, `ready_cas`, `refresh_until`, tCCD with
    ///   `tCCD_L <= burst`) is at or below the slot, and a committed row hit
    ///   moves no bank/ACT state that a later run entry reads.
    /// * No competitor can pre-empt a slot: every queued transaction shares
    ///   the same data-bus floor, so its issue time is at least the slot,
    ///   and ties lose to the head on the `(t, !hit, idx)` FR-FCFS key
    ///   (head has `idx = 0` and is a hit). Opposite-direction entries pay
    ///   turnaround on top: write-after-read adds `tRTW - cwl + cl` (the
    ///   `cl + trtw >= cwl` guard), read-after-write adds `tWTR + cwl`
    ///   (always nonnegative). The starvation cap and FCFS both pick index
    ///   0 outright, so the argument is policy-independent.
    /// * Refresh cannot interleave: [`Channel::advance_probed`] cancels the
    ///   run before pumping whenever `next_refresh <= now`, mirroring the
    ///   slow loop's refresh-first ordering.
    fn try_install_run(&mut self, t_cas: u64) -> bool {
        let t = &self.cfg.timing;
        if !self.cfg.fastfwd
            || self.cfg.queue_depth < 2
            || t.burst_cycles == 0
            || t.tccd_l.max(t.tccd_s) > t.burst_cycles
        {
            return false;
        }
        let head = &self.queue[0];
        let d = head.is_write;
        // A queued write could under-bid a read run's bus slot if the
        // turnaround floor `last_data_end + tRTW - cwl` dipped below the
        // read bus floor `last_data_end - cl`.
        if !d && t.cl + t.trtw < t.cwl {
            return false;
        }
        if self.banks[head.flat as usize].open_row != Some(head.decoded.row) {
            return false;
        }
        let mut n = 1;
        while n < self.queue.len() {
            let p = &self.queue[n];
            let t_s = t_cas + n as u64 * t.burst_cycles;
            if p.is_write != d || p.arrival > t_s {
                break;
            }
            let bank = &self.banks[p.flat as usize];
            if bank.open_row != Some(p.decoded.row) || bank.ready_cas > t_s {
                break;
            }
            n += 1;
        }
        if n < 2 {
            return false;
        }
        let lat = if d { t.cwl } else { t.cl };
        self.run = Some(FastRun { remaining: n as u32, next_cas: t_cas, lat });
        // While the run is active the memoized pick is meaningless (the
        // queue shifts without per-commit invalidation); keep it Dirty so
        // any stray recompute is honest.
        self.next_cand.set(NextCand::Dirty);
        true
    }

    /// Retire every run slot due at or before `now`. Bit-for-bit the same
    /// state updates, stats, probe events and completions as committing
    /// each entry through [`Channel::commit`] — minus the per-commit
    /// FR-FCFS window rescan, which the run's proof already paid for once.
    fn pump_run<P: Probe>(
        &mut self,
        now: u64,
        out: &mut Vec<Completion>,
        probe: &mut P,
        ch_idx: usize,
    ) {
        let Some(mut run) = self.run else { return };
        if run.next_cas > now {
            return;
        }
        let t = self.cfg.timing;
        let due =
            (((now - run.next_cas) / t.burst_cycles) + 1).min(u64::from(run.remaining)) as u32;
        if P::ENABLED {
            // Replay the per-command events the slow path would have
            // emitted, in commit order, before any state moves: every run
            // entry is a row hit by construction.
            mnpu_probe::replay_batch(probe, due as usize, |s| {
                let p = &self.queue[s];
                let t_slot = run.next_cas + s as u64 * t.burst_cycles;
                let residency = t_slot - p.arrival;
                (t_slot, Event::DramRowHit { channel: ch_idx, core: p.core, residency })
            });
        }
        for _ in 0..due {
            let p = self.queue.pop_front().expect("run entries are queued");
            let t_cas = run.next_cas;
            debug_assert_eq!(
                self.banks[p.flat as usize].open_row,
                Some(p.decoded.row),
                "run entry must still be a row hit"
            );
            let data_end = t_cas + run.lat + t.burst_cycles;
            let bank = &mut self.banks[p.flat as usize];
            bank.ready_pre =
                bank.ready_pre.max(if p.is_write { data_end + t.twr } else { data_end });
            self.last_cas_time = t_cas;
            self.last_cas_bg = p.decoded.bankgroup;
            self.any_cas = true;
            self.last_data_end = data_end;
            self.last_was_write = p.is_write;
            self.any_data = true;
            self.stats.row_hits += 1;
            if p.is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            self.stats.bytes += crate::address::TRANSACTION_BYTES;
            self.stats.busy_cycles += t.burst_cycles;
            let latency = data_end - p.arrival;
            self.stats.latency_sum += latency;
            self.stats.latency_max = self.stats.latency_max.max(latency);
            self.ff_commits += 1;
            out.push(Completion {
                meta: p.meta,
                core: p.core,
                addr: p.addr,
                is_write: p.is_write,
                completed_at: data_end,
            });
            run.next_cas += t.burst_cycles;
            run.remaining -= 1;
        }
        if run.remaining == 0 {
            self.run = None;
            self.next_cand.set(NextCand::Dirty);
        } else {
            self.run = Some(run);
        }
    }

    /// The earliest cycle at which this channel can commit another command,
    /// or `None` when the queue is empty.
    ///
    /// The device no longer calls this on its hot path — [`crate::Dram`]
    /// reads the cached [`Channel::ea_component`] instead — but it remains
    /// the single-channel semantic reference that the cache (and the
    /// channel-level tests) are held against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn earliest_action(&self, now: u64) -> Option<u64> {
        if let Some(run) = self.run {
            // The run invariant guarantees this equals what a fresh
            // pick_candidate + issue_time scan would return (the next-event
            // property tests compare against exactly that), at the cost of
            // two compares instead of a window rescan.
            return if self.cfg.timing.trefi > 0 && self.next_refresh <= now {
                Some(now)
            } else {
                Some(run.next_cas.max(now))
            };
        }
        match self.cached_candidate() {
            NextCand::Empty | NextCand::Dirty => None,
            NextCand::At { t_cas, .. } => {
                // A refresh deadline can precede (and gate) the next CAS.
                if self.cfg.timing.trefi > 0 && self.next_refresh <= now {
                    Some(now)
                } else {
                    Some(t_cas.max(now))
                }
            }
        }
    }

    /// The next cycle at which [`Channel::advance_probed`] can change any
    /// state: the active run's next bus slot, the memoized candidate's
    /// commit cycle, or the refresh deadline — `u64::MAX` when none apply
    /// (idle channel with refresh disabled). The device caches this per
    /// channel and skips channels whose attention cycle lies beyond `now`;
    /// the skipped call is a provable no-op (run slot, candidate and
    /// refresh are exactly the three things the advance loop acts on).
    ///
    /// Unlike [`Channel::earliest_action`] this *includes* the refresh
    /// deadline of an idle channel: an overdue refresh is committed (and
    /// counted in [`ChannelStats::refreshes`]) by `advance_probed` even
    /// when no transaction is queued, so the attention filter must not
    /// skip past it.
    pub(crate) fn next_attention(&self) -> u64 {
        let cand = if let Some(run) = self.run {
            run.next_cas
        } else {
            match self.cached_candidate() {
                NextCand::Empty | NextCand::Dirty => u64::MAX,
                NextCand::At { t_cas, .. } => t_cas,
            }
        };
        if self.cfg.timing.trefi > 0 {
            cand.min(self.next_refresh)
        } else {
            cand
        }
    }

    /// The candidate component of [`Channel::earliest_action`]: the next
    /// CAS commit cycle (the active run's next slot, else the memoized
    /// pick), or `u64::MAX` when the queue is empty. The device caches
    /// this per channel so [`crate::Dram::next_event`] does not touch
    /// every channel on every wake; the refresh-due branch of
    /// `earliest_action` needs no cached counterpart because the device
    /// advances (and re-caches) every channel whose refresh deadline has
    /// been reached before `next_event` can observe it (`next_refresh >
    /// now` holds whenever the device is between `advance` calls).
    pub(crate) fn ea_component(&self) -> u64 {
        if let Some(run) = self.run {
            return run.next_cas;
        }
        match self.cached_candidate() {
            NextCand::Empty | NextCand::Dirty => u64::MAX,
            NextCand::At { t_cas, .. } => t_cas,
        }
    }

    /// [`Channel::earliest_action`] recomputed from scratch, bypassing the
    /// memoized candidate — the reference the next-event property tests
    /// compare the cache against.
    #[doc(hidden)]
    pub fn earliest_action_uncached(&self, now: u64) -> Option<u64> {
        let mut next = None;
        if !self.queue.is_empty() {
            if let Some(idx) = self.pick_candidate() {
                let t = self.issue_time(&self.queue[idx]).max(now);
                next = Some(t);
            }
            if self.cfg.timing.trefi > 0 && self.next_refresh <= now {
                next = Some(now);
            }
        }
        next
    }

    /// While the channel sits idle, refreshes happen without contending with
    /// anything; skip them arithmetically instead of simulating each one.
    fn catch_up_refresh(&mut self, now: u64) {
        let trefi = self.cfg.timing.trefi;
        if trefi == 0 || self.queue.is_empty() {
            return;
        }
        if self.next_refresh + trefi <= now {
            let missed = (now - self.next_refresh) / trefi;
            if missed > 0 {
                self.next_refresh += missed * trefi;
                for b in &mut self.banks {
                    b.open_row = None;
                }
                self.next_cand.set(NextCand::Dirty);
            }
        }
    }

    fn commit_refresh<P: Probe>(&mut self, probe: &mut P, ch_idx: usize) {
        let t = &self.cfg.timing;
        // Refresh begins once in-flight data and row-precharge constraints
        // drain; it blocks the whole channel for tRFC.
        let mut start = self.next_refresh.max(self.last_data_end);
        for b in &self.banks {
            start = start.max(b.ready_pre);
        }
        let end = start + t.trfc;
        for b in &mut self.banks {
            b.open_row = None;
            b.ready_act = b.ready_act.max(end);
        }
        self.refresh_until = end;
        self.next_refresh += t.trefi;
        self.next_cand.set(NextCand::Dirty);
        self.stats.refreshes += 1;
        if P::ENABLED {
            probe.record(start, Event::DramRefresh { channel: ch_idx });
        }
    }

    /// FR-FCFS with a readiness tie-break: among the reorder window, pick
    /// the request with the earliest legal CAS time, preferring row hits and
    /// then age on ties. This approximates a cycle-level scheduler that
    /// interleaves CAS bursts across bank groups while ACTs proceed in
    /// parallel. The head of the queue is always in the window, so bypassing
    /// is bounded.
    fn pick_candidate(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        if self.cfg.policy == crate::config::SchedPolicy::Fcfs {
            return Some(0);
        }
        // Starvation cap: a head request bypassed too often goes next even
        // if a younger row hit could issue earlier.
        if self.queue[0].bypassed >= FRFCFS_MAX_BYPASS {
            return Some(0);
        }
        // Universal lower bound on any entry's CAS time: the refresh
        // window, the command-bus tCCD floor and the data-bus edge apply
        // to every queued transaction regardless of bank or direction
        // (per-entry terms — arrival, ACT/PRE, turnaround — only add).
        // The scan visits entries in age order and the key is
        // (issue, !hit, idx), so the first row hit that reaches this
        // bound is unbeatable: any later entry ties at best and loses on
        // index. In a row-hit stream this ends the window rescan after
        // one entry instead of sixteen.
        let tim = &self.cfg.timing;
        let mut lb = self.refresh_until;
        if self.any_cas {
            lb = lb.max(self.last_cas_time + tim.tccd_s.min(tim.tccd_l));
        }
        if self.any_data {
            lb = lb.max(self.last_data_end.saturating_sub(tim.cl.max(tim.cwl)));
        }
        let window = self.queue.len().min(FRFCFS_WINDOW);
        let mut best: Option<(u64, bool, usize)> = None; // (issue, !hit, idx)
        for (i, p) in self.queue.iter().take(window).enumerate() {
            let bank = &self.banks[p.flat as usize];
            let hit = bank.open_row == Some(p.decoded.row);
            let t = self.issue_time(p);
            let key = (t, !hit, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
                if hit && t <= lb {
                    break;
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Earliest legal CAS time for `p` under current channel state.
    fn issue_time(&self, p: &Pending) -> u64 {
        let t = &self.cfg.timing;
        let bank = &self.banks[p.flat as usize];
        let mut t_cas = p.arrival.max(self.refresh_until);

        match bank.open_row {
            Some(row) if row == p.decoded.row => {
                t_cas = t_cas.max(bank.ready_cas);
            }
            open => {
                // Need ACT (and PRE first on a conflict).
                let mut t_act = bank.ready_act.max(self.refresh_until).max(p.arrival);
                if open.is_some() {
                    t_act = t_act.max(bank.ready_pre + t.trp);
                }
                if self.any_act {
                    let trrd =
                        if self.last_act_bg == p.decoded.bankgroup { t.trrd_l } else { t.trrd_s };
                    t_act = t_act.max(self.last_act_time + trrd);
                }
                if self.act_window.len() == 4 {
                    t_act = t_act.max(self.act_window[0] + t.tfaw);
                }
                t_cas = t_cas.max(t_act + t.trcd);
            }
        }

        // Command/data-bus constraints.
        if self.any_cas {
            let tccd = if self.last_cas_bg == p.decoded.bankgroup { t.tccd_l } else { t.tccd_s };
            t_cas = t_cas.max(self.last_cas_time + tccd);
        }
        if self.any_data {
            // The data bus carries one burst at a time: this burst's data
            // may not start before the previous one ends (binding when
            // burst_cycles > tCCD, e.g. narrow channels).
            let lat = if p.is_write { t.cwl } else { t.cl };
            t_cas = t_cas.max(self.last_data_end.saturating_sub(lat));
        }
        if self.any_data && p.is_write != self.last_was_write {
            if p.is_write {
                // Read -> write: data bus turnaround.
                t_cas = t_cas.max((self.last_data_end + t.trtw).saturating_sub(t.cwl));
            } else {
                // Write -> read: tWTR after the last write data beat.
                t_cas = t_cas.max(self.last_data_end + t.twtr);
            }
        }
        t_cas
    }

    fn commit<P: Probe>(
        &mut self,
        p: &Pending,
        t_cas: u64,
        probe: &mut P,
        ch_idx: usize,
    ) -> Completion {
        let t = self.cfg.timing;
        let flat = p.flat as usize;
        let bank = &mut self.banks[flat];
        // Cycles the transaction sat in the channel queue before its CAS
        // became legal — the contention signal the probe reports.
        let residency = t_cas - p.arrival;

        // Row-buffer bookkeeping (and ACT/PRE effects).
        match bank.open_row {
            Some(row) if row == p.decoded.row => {
                self.stats.row_hits += 1;
                if P::ENABLED {
                    probe.record(
                        t_cas,
                        Event::DramRowHit { channel: ch_idx, core: p.core, residency },
                    );
                }
            }
            open => {
                if open.is_some() {
                    self.stats.row_conflicts += 1;
                    if P::ENABLED {
                        probe.record(
                            t_cas,
                            Event::DramRowConflict { channel: ch_idx, core: p.core, residency },
                        );
                    }
                } else {
                    self.stats.row_misses += 1;
                    if P::ENABLED {
                        probe.record(
                            t_cas,
                            Event::DramRowMiss { channel: ch_idx, core: p.core, residency },
                        );
                    }
                }
                let t_act = t_cas - t.trcd;
                bank.open_row = Some(p.decoded.row);
                bank.ready_cas = t_cas;
                bank.ready_act = t_act; // re-ACT of this bank gated by ready_pre + tRP
                bank.ready_pre = bank.ready_pre.max(t_act + t.tras);
                self.last_act_time = t_act;
                self.last_act_bg = p.decoded.bankgroup;
                self.any_act = true;
                self.act_window.push_back(t_act);
                if self.act_window.len() > 4 {
                    self.act_window.pop_front();
                }
            }
        }

        let latency_to_data = if p.is_write { t.cwl } else { t.cl };
        let data_start = t_cas + latency_to_data;
        let data_end = data_start + t.burst_cycles;

        let bank = &mut self.banks[flat];
        if p.is_write {
            bank.ready_pre = bank.ready_pre.max(data_end + t.twr);
        } else {
            bank.ready_pre = bank.ready_pre.max(data_end);
        }

        self.last_cas_time = t_cas;
        self.last_cas_bg = p.decoded.bankgroup;
        self.any_cas = true;
        self.last_data_end = data_end;
        self.last_was_write = p.is_write;
        self.any_data = true;

        // Stats.
        if p.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.bytes += crate::address::TRANSACTION_BYTES;
        self.stats.busy_cycles += t.burst_cycles;
        let latency = data_end - p.arrival;
        self.stats.latency_sum += latency;
        self.stats.latency_max = self.stats.latency_max.max(latency);

        Completion {
            meta: p.meta,
            core: p.core,
            addr: p.addr,
            is_write: p.is_write,
            completed_at: data_end,
        }
    }
}

impl Pending {
    fn save(&self, w: &mut Writer) {
        w.u64(self.meta);
        w.usize(self.core);
        w.u64(self.addr);
        w.usize(self.decoded.channel);
        w.u64(self.decoded.bankgroup);
        w.u64(self.decoded.bank);
        w.u64(self.decoded.row);
        w.u64(self.decoded.col);
        w.u32(self.flat);
        w.bool(self.is_write);
        w.u64(self.arrival);
        w.u32(self.bypassed);
    }

    fn load(r: &mut Reader<'_>) -> Result<Pending, SnapError> {
        Ok(Pending {
            meta: r.u64()?,
            core: r.usize()?,
            addr: r.u64()?,
            decoded: DecodedAddr {
                channel: r.usize()?,
                bankgroup: r.u64()?,
                bank: r.u64()?,
                row: r.u64()?,
                col: r.u64()?,
            },
            flat: r.u32()?,
            is_write: r.bool()?,
            arrival: r.u64()?,
            bypassed: r.u32()?,
        })
    }
}

impl Channel {
    /// Serialize all mutable channel state (queue, banks, bus/ACT history,
    /// refresh timers, active fast-forward run, stats). The configuration
    /// is deliberately excluded: state is restored into a channel built
    /// from the same config.
    pub(crate) fn save_state(&self, w: &mut Writer) {
        w.seq(self.queue.as_slices().0, |w, p| p.save(w));
        w.seq(self.queue.as_slices().1, |w, p| p.save(w));
        w.seq(&self.banks, |w, b| {
            w.opt(&b.open_row, |w, r| w.u64(*r));
            w.u64(b.ready_act);
            w.u64(b.ready_cas);
            w.u64(b.ready_pre);
        });
        w.u64(self.last_cas_time);
        w.u64(self.last_cas_bg);
        w.bool(self.any_cas);
        w.u64(self.last_data_end);
        w.bool(self.last_was_write);
        w.bool(self.any_data);
        w.u64(self.last_act_time);
        w.u64(self.last_act_bg);
        w.bool(self.any_act);
        w.seq(self.act_window.as_slices().0, |w, t| w.u64(*t));
        w.seq(self.act_window.as_slices().1, |w, t| w.u64(*t));
        w.u64(self.next_refresh);
        w.u64(self.refresh_until);
        // `next_cand` is a pure memo over the state above; it is restored
        // `Dirty` and recomputed honestly on the next query.
        w.opt(&self.run, |w, run| {
            w.u32(run.remaining);
            w.u64(run.next_cas);
            w.u64(run.lat);
        });
        w.u64(self.ff_commits);
        let s = &self.stats;
        for v in [
            s.reads,
            s.writes,
            s.row_hits,
            s.row_misses,
            s.row_conflicts,
            s.busy_cycles,
            s.bytes,
            s.latency_sum,
            s.latency_max,
            s.refreshes,
        ] {
            w.u64(v);
        }
    }

    /// Restore state saved by [`Channel::save_state`] into a channel built
    /// from the same configuration.
    pub(crate) fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let mut queue: VecDeque<Pending> = r.seq(Pending::load)?.into();
        queue.extend(r.seq(Pending::load)?);
        if queue.len() > self.cfg.queue_depth {
            return Err(SnapError::BadValue("channel queue exceeds configured depth"));
        }
        let banks = r.seq(|r| {
            Ok(BankState {
                open_row: r.opt(|r| r.u64())?,
                ready_act: r.u64()?,
                ready_cas: r.u64()?,
                ready_pre: r.u64()?,
            })
        })?;
        if banks.len() != self.banks.len() {
            return Err(SnapError::BadValue("bank count mismatch"));
        }
        self.queue = queue;
        self.banks = banks;
        self.last_cas_time = r.u64()?;
        self.last_cas_bg = r.u64()?;
        self.any_cas = r.bool()?;
        self.last_data_end = r.u64()?;
        self.last_was_write = r.bool()?;
        self.any_data = r.bool()?;
        self.last_act_time = r.u64()?;
        self.last_act_bg = r.u64()?;
        self.any_act = r.bool()?;
        let mut act_window: VecDeque<u64> = r.seq(|r| r.u64())?.into();
        act_window.extend(r.seq(|r| r.u64())?);
        self.act_window = act_window;
        self.next_refresh = r.u64()?;
        self.refresh_until = r.u64()?;
        self.next_cand.set(NextCand::Dirty);
        self.run =
            r.opt(|r| Ok(FastRun { remaining: r.u32()?, next_cas: r.u64()?, lat: r.u64()? }))?;
        self.ff_commits = r.u64()?;
        self.stats = ChannelStats {
            reads: r.u64()?,
            writes: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            busy_cycles: r.u64()?,
            bytes: r.u64()?,
            latency_sum: r.u64()?,
            latency_max: r.u64()?,
            refreshes: r.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::decode;

    fn make(cfg: &DramConfig, addr: u64, is_write: bool, arrival: u64, meta: u64) -> Pending {
        let all: Vec<usize> = (0..cfg.channels).collect();
        let decoded = decode(addr, cfg, &all);
        Pending {
            meta,
            core: 0,
            addr,
            decoded,
            flat: decoded.flat_bank(cfg) as u32,
            is_write,
            arrival,
            bypassed: 0,
        }
    }

    fn drain(ch: &mut Channel, until: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut now = 0;
        loop {
            ch.advance(now, &mut out);
            match ch.earliest_action(now) {
                Some(t) if t <= until => now = t.max(now + 1),
                _ => break,
            }
        }
        out
    }

    #[test]
    fn cold_read_latency_is_act_plus_cas() {
        let cfg = DramConfig::hbm2(1);
        let t = cfg.timing;
        let mut ch = Channel::new(&cfg);
        assert!(ch.enqueue(make(&cfg, 0, false, 0, 1)));
        let done = drain(&mut ch, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, t.trcd + t.cl + t.burst_cycles);
    }

    #[test]
    fn row_hit_faster_than_conflict() {
        let cfg = DramConfig::hbm2(1);
        let mut ch = Channel::new(&cfg);
        // Same row twice, then a different row in the same bank.
        let all: Vec<usize> = vec![0];
        let d0 = decode(0, &cfg, &all);
        let same_bank = |a: u64| decode(a, &cfg, &all).flat_bank(&cfg) == d0.flat_bank(&cfg);
        let same_row = (1..1_000_000u64)
            .map(|b| b * 64)
            .find(|&a| same_bank(a) && decode(a, &cfg, &all).row == d0.row)
            .expect("hit address");
        let conflict_addr = (1..10_000_000u64)
            .map(|b| b * 64)
            .find(|&a| same_bank(a) && decode(a, &cfg, &all).row != d0.row)
            .expect("conflict address");

        assert!(ch.enqueue(make(&cfg, 0, false, 0, 1)));
        assert!(ch.enqueue(make(&cfg, same_row, false, 0, 2)));
        assert!(ch.enqueue(make(&cfg, conflict_addr, false, 0, 3)));
        let done = drain(&mut ch, 100_000);
        assert_eq!(done.len(), 3);
        assert_eq!(ch.stats().row_hits, 1);
        assert_eq!(ch.stats().row_misses, 1);
        assert_eq!(ch.stats().row_conflicts, 1);
        // Hit completes shortly after the first; conflict pays tRAS+tRP+tRCD.
        let t1 = done.iter().find(|c| c.meta == 2).unwrap().completed_at;
        let t2 = done.iter().find(|c| c.meta == 3).unwrap().completed_at;
        assert!(t2 > t1 + cfg.timing.trp);
    }

    #[test]
    fn streaming_saturates_bus() {
        // Many row-hit reads should complete back-to-back at tCCD_S spacing,
        // i.e. the channel sustains ~full bandwidth.
        let cfg = DramConfig::hbm2(1);
        let mut ch = Channel::new(&cfg);
        let n = 32u64;
        for i in 0..n {
            assert!(ch.enqueue(make(&cfg, i * 64, false, 0, i)));
        }
        let done = drain(&mut ch, 100_000);
        assert_eq!(done.len(), n as usize);
        let last = done.iter().map(|c| c.completed_at).max().unwrap();
        // Ideal: first latency + (n-1) * burst. Allow 50% slack for ACTs.
        let ideal = cfg.timing.trcd + cfg.timing.cl + n * cfg.timing.burst_cycles;
        assert!(last < ideal * 3 / 2, "last={last} ideal={ideal}");
    }

    #[test]
    fn fr_fcfs_prefers_open_row_within_window() {
        let cfg = DramConfig::hbm2(1);
        let mut ch = Channel::new(&cfg);
        let all: Vec<usize> = vec![0];
        let d0 = decode(0, &cfg, &all);
        // conflict address in same bank, other row
        let conflict = (1..10_000_000u64)
            .map(|b| b * 64)
            .find(|&a| {
                let d = decode(a, &cfg, &all);
                d.flat_bank(&cfg) == d0.flat_bank(&cfg) && d.row != d0.row
            })
            .unwrap();
        let hit_addr = (1..1_000_000u64)
            .map(|b| b * 64)
            .find(|&a| {
                let d = decode(a, &cfg, &all);
                d.flat_bank(&cfg) == d0.flat_bank(&cfg) && d.row == d0.row
            })
            .unwrap();
        assert!(ch.enqueue(make(&cfg, 0, false, 0, 0)));
        let mut out = Vec::new();
        ch.advance(0, &mut out); // opens row 0
        assert!(ch.enqueue(make(&cfg, conflict, false, 1, 1)));
        assert!(ch.enqueue(make(&cfg, hit_addr, false, 1, 2))); // row hit, younger
        let done = drain(&mut ch, 100_000);
        let hit = done.iter().find(|c| c.meta == 2).unwrap().completed_at;
        let miss = done.iter().find(|c| c.meta == 1).unwrap().completed_at;
        assert!(hit < miss, "row hit should bypass older conflict");
    }

    #[test]
    fn write_read_turnaround_enforced() {
        let cfg = DramConfig::hbm2(1);
        let t = cfg.timing;
        let mut ch = Channel::new(&cfg);
        assert!(ch.enqueue(make(&cfg, 0, true, 0, 1)));
        assert!(ch.enqueue(make(&cfg, 64, false, 0, 2)));
        let done = drain(&mut ch, 100_000);
        let w = done.iter().find(|c| c.meta == 1).unwrap().completed_at;
        let r = done.iter().find(|c| c.meta == 2).unwrap().completed_at;
        // Read CAS must wait tWTR after write data: read completes at least
        // tWTR + CL + burst after the write data end.
        assert!(r >= w + t.twtr + t.cl + t.burst_cycles - 1, "w={w} r={r}");
    }

    #[test]
    fn queue_capacity_respected() {
        let cfg = DramConfig { queue_depth: 4, ..DramConfig::hbm2(1) };
        let mut ch = Channel::new(&cfg);
        for i in 0..4 {
            assert!(ch.enqueue(make(&cfg, i * 64, false, 0, i)));
        }
        assert!(!ch.enqueue(make(&cfg, 999 * 64, false, 0, 99)));
        assert!(!ch.has_room());
    }

    #[test]
    fn refresh_blocks_channel() {
        let cfg = DramConfig::hbm2(1);
        let t = cfg.timing;
        let mut ch = Channel::new(&cfg);
        // A request arriving exactly at the refresh deadline waits ~tRFC.
        assert!(ch.enqueue(make(&cfg, 0, false, t.trefi, 1)));
        let mut out = Vec::new();
        let mut now = t.trefi;
        while out.is_empty() {
            ch.advance(now, &mut out);
            if out.is_empty() {
                now = ch.earliest_action(now).expect("pending work").max(now + 1);
            }
        }
        assert!(ch.stats().refreshes >= 1);
        assert!(
            out[0].completed_at >= t.trefi + t.trfc,
            "completion {} should wait for refresh {}",
            out[0].completed_at,
            t.trefi + t.trfc
        );
    }

    #[test]
    fn idle_refreshes_are_skipped_cheaply() {
        let cfg = DramConfig::hbm2(1);
        let t = cfg.timing;
        let mut ch = Channel::new(&cfg);
        // Arrive after 1000 refresh intervals of idleness.
        let late = t.trefi * 1000;
        assert!(ch.enqueue(make(&cfg, 0, false, late, 1)));
        let mut out = Vec::new();
        let mut now = late;
        while out.is_empty() {
            ch.advance(now, &mut out);
            if out.is_empty() {
                now = ch.earliest_action(now).expect("pending work").max(now + 1);
            }
        }
        // No thousand simulated refreshes.
        assert!(ch.stats().refreshes < 3);
    }

    #[test]
    fn stats_latency_accounting() {
        let cfg = DramConfig::hbm2(1);
        let mut ch = Channel::new(&cfg);
        assert!(ch.enqueue(make(&cfg, 0, false, 0, 1)));
        let done = drain(&mut ch, 10_000);
        let s = ch.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.latency_sum, done[0].completed_at);
        assert_eq!(s.latency_max, done[0].completed_at);
        assert_eq!(s.bytes, 64);
    }
}
