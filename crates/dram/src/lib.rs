//! Event-driven, command-level DRAM simulator — the `mnpu-dram` substrate.
//!
//! This crate replaces DRAMsim3 in the original mNPUsim: it models the
//! non-deterministic, contention-dependent latency of off-chip memory that
//! the paper's whole study rests on. The model is *command-level*: every
//! transaction is decomposed into (optional) PRE/ACT plus a CAS whose issue
//! time honors the JEDEC-style constraints of the configured device —
//! CL/CWL, tRCD, tRP, tRAS, tCCD_S/L (bank-group aware), tRRD_S/L, tFAW,
//! tWR, tWTR, read/write bus turnaround, and all-bank refresh
//! (tREFI/tRFC). Scheduling is FR-FCFS (row hits first, oldest otherwise,
//! with a starvation cap) per channel.
//!
//! Simulation is event-driven: [`Dram::advance`] commits every command whose
//! issue time has been reached and returns the transactions whose data burst
//! completed; [`Dram::next_event`] tells the caller when something next
//! changes, so an idle memory system costs nothing to simulate.
//!
//! Channel-granular bandwidth partitioning — the mechanism behind the
//! paper's `Static` configurations and the 1:7 … 7:1 partitioning sweeps of
//! Figs. 9/10 — is expressed by giving each requester (NPU core) a subset of
//! channels via [`Dram::set_core_channels`].
//!
//! # Example
//!
//! ```
//! use mnpu_dram::{Dram, DramConfig};
//!
//! let mut dram = Dram::new(DramConfig::hbm2(8));
//! dram.try_enqueue(0, 0, 0x4000, false, 1).unwrap();
//! // Drive the clock until the read completes.
//! let mut done = Vec::new();
//! let mut now = 0;
//! while done.is_empty() {
//!     now = dram.next_event().expect("request pending");
//!     done = dram.advance(now);
//! }
//! assert_eq!(done[0].meta, 1);
//! assert!(done[0].completed_at > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod channel;
mod config;
mod dram;
pub mod energy;
mod eventq;
mod stats;

pub use address::{decode, DecodedAddr, TRANSACTION_BYTES};
pub use channel::Channel;
pub use config::{AddressMapping, DramConfig, DramTiming, SchedPolicy};
pub use dram::{Completion, Dram, EnqueueError};
pub use energy::{estimate_energy, DramEnergy, EnergyBreakdown};
pub use eventq::MonotonicQueue;
pub use stats::{BandwidthTrace, ChannelStats, DramStats};
