//! Device configuration and timing parameters.

/// DRAM timing constraints in device clock cycles.
///
/// The names follow JEDEC convention; the HBM2 preset values assume a 1 GHz
/// device clock (1 cycle = 1 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// Read CAS latency (CAS → first data beat).
    pub cl: u64,
    /// Write CAS latency.
    pub cwl: u64,
    /// ACT → CAS delay.
    pub trcd: u64,
    /// PRE → ACT delay.
    pub trp: u64,
    /// ACT → PRE minimum (row must stay open this long).
    pub tras: u64,
    /// CAS → CAS, different bank group.
    pub tccd_s: u64,
    /// CAS → CAS, same bank group.
    pub tccd_l: u64,
    /// ACT → ACT, different bank group.
    pub trrd_s: u64,
    /// ACT → ACT, same bank group.
    pub trrd_l: u64,
    /// Four-activate window.
    pub tfaw: u64,
    /// Write recovery: last write data beat → PRE.
    pub twr: u64,
    /// Write → read turnaround: last write data beat → read CAS.
    pub twtr: u64,
    /// Read → write turnaround gap on the data bus.
    pub trtw: u64,
    /// Refresh interval (one all-bank refresh per channel per tREFI).
    pub trefi: u64,
    /// Refresh cycle time (channel blocked for this long per refresh).
    pub trfc: u64,
    /// Data-bus cycles occupied by one transaction burst (BL / data rate).
    pub burst_cycles: u64,
}

impl DramTiming {
    /// HBM2-class timings at a 1 GHz device clock. One 64-byte transaction
    /// occupies the 128-bit DDR channel bus for 2 cycles, i.e. 32 GB/s per
    /// channel — the paper's 256 GB/s for 8 channels.
    pub const fn hbm2() -> Self {
        DramTiming {
            cl: 14,
            cwl: 12,
            trcd: 14,
            trp: 14,
            tras: 34,
            tccd_s: 2,
            tccd_l: 4,
            trrd_s: 4,
            trrd_l: 6,
            tfaw: 30,
            twr: 16,
            twtr: 8,
            trtw: 4,
            trefi: 3900,
            trfc: 260,
            burst_cycles: 2,
        }
    }

    /// DDR4-2400-class timings at a 1.2 GHz device clock; one 64-byte burst
    /// occupies the 64-bit bus for 4 cycles (BL8, DDR).
    pub const fn ddr4() -> Self {
        DramTiming {
            cl: 16,
            cwl: 12,
            trcd: 16,
            trp: 16,
            tras: 39,
            tccd_s: 4,
            tccd_l: 6,
            trrd_s: 4,
            trrd_l: 6,
            tfaw: 26,
            twr: 18,
            twtr: 9,
            trtw: 6,
            trefi: 9360,
            trfc: 420,
            burst_cycles: 4,
        }
    }
}

/// Transaction scheduling policy within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// First-ready, first-come-first-served: row hits (and otherwise the
    /// earliest-issuable request) bypass older requests within a bounded
    /// window — what DRAMsim3 and real controllers do (default).
    #[default]
    FrFcfs,
    /// Strict arrival order: no reordering at all (ablation baseline).
    Fcfs,
}

/// How physical addresses are interleaved across channels, banks and rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// Consecutive 64-byte blocks rotate across channels first, then walk a
    /// row, then banks — maximum channel parallelism for streaming (default;
    /// what HBM-based NPUs use).
    #[default]
    BlockInterleaved,
    /// Consecutive blocks walk a row within one channel before switching —
    /// maximum row-buffer locality per channel (ablation).
    RowInterleaved,
}

/// Full DRAM device configuration.
///
/// `channels` is the *total* channel count of the simulated memory system;
/// per-core visibility is restricted later with
/// [`crate::Dram::set_core_channels`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Bank groups per channel.
    pub bankgroups: u64,
    /// Banks per bank group.
    pub banks_per_group: u64,
    /// Row size in bytes (row-buffer size per bank).
    pub row_bytes: u64,
    /// Rows per bank.
    pub rows: u64,
    /// Device clock in MHz.
    pub freq_mhz: u64,
    /// Per-channel transaction queue depth.
    pub queue_depth: usize,
    /// Timing constraints.
    pub timing: DramTiming,
    /// Address interleaving scheme.
    pub mapping: AddressMapping,
    /// Intra-channel scheduling policy.
    pub policy: SchedPolicy,
    /// Enable the exact steady-state fast-forward: when a channel detects a
    /// run of same-row, same-direction row hits whose commit times are fully
    /// determined by the data bus (`tCCD_L <= burst_cycles`), it retires the
    /// run arithmetically instead of re-scanning the FR-FCFS window per
    /// command. Bit-exact by construction — disabling it (or setting
    /// `MNPU_NO_FASTFWD=1`) changes wall-clock time only, never a single
    /// counter or commit cycle (enforced by proptests and a metamorphic
    /// law). Default `true`.
    pub fastfwd: bool,
}

impl DramConfig {
    /// HBM2 with the given channel count. 8 channels = the paper's baseline
    /// 256 GB/s dual-core budget (the single-core Table 2 budget is 128 GB/s,
    /// i.e. 4 channels).
    pub fn hbm2(channels: usize) -> Self {
        DramConfig {
            channels,
            bankgroups: 4,
            banks_per_group: 4,
            row_bytes: 2048,
            rows: 1 << 15,
            freq_mhz: 1000,
            queue_depth: 64,
            timing: DramTiming::hbm2(),
            mapping: AddressMapping::BlockInterleaved,
            policy: SchedPolicy::FrFcfs,
            fastfwd: true,
        }
    }

    /// A narrow HBM2-like channel (8 GB/s: one 64-byte burst occupies the
    /// bus for 8 cycles) used by the bench-scale system preset, so that the
    /// per-core bandwidth : compute ratio matches the cloud configuration at
    /// a fraction of the simulation cost.
    pub fn bench(channels: usize) -> Self {
        let mut c = DramConfig::hbm2(channels);
        c.timing.burst_cycles = 8;
        c
    }

    /// DDR4-2400 with the given channel count (ablation preset).
    pub fn ddr4(channels: usize) -> Self {
        DramConfig {
            channels,
            bankgroups: 4,
            banks_per_group: 4,
            row_bytes: 8192,
            rows: 1 << 16,
            freq_mhz: 1200,
            queue_depth: 64,
            timing: DramTiming::ddr4(),
            mapping: AddressMapping::BlockInterleaved,
            policy: SchedPolicy::FrFcfs,
            fastfwd: true,
        }
    }

    /// Banks per channel.
    pub fn banks_per_channel(&self) -> u64 {
        self.bankgroups * self.banks_per_group
    }

    /// Total addressable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64 * self.banks_per_channel() * self.rows * self.row_bytes
    }

    /// Peak bandwidth of one channel in bytes per device cycle.
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        crate::address::TRANSACTION_BYTES as f64 / self.timing.burst_cycles as f64
    }

    /// Hard floor on any read transaction's latency: even a row hit to an
    /// idle channel pays the CAS latency plus its data burst. Analytical
    /// oracles use this as a causality bound — no completion may beat it.
    pub fn min_read_latency(&self) -> u64 {
        self.timing.cl + self.timing.burst_cycles
    }

    /// Peak bandwidth of the whole device in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.channels as f64 * self.channel_bytes_per_cycle() * self.freq_mhz as f64 / 1000.0
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("at least one channel required".into());
        }
        if self.bankgroups == 0 || self.banks_per_group == 0 {
            return Err("bank counts must be positive".into());
        }
        if self.row_bytes < crate::address::TRANSACTION_BYTES
            || !self.row_bytes.is_multiple_of(crate::address::TRANSACTION_BYTES)
        {
            return Err("row_bytes must be a positive multiple of the transaction size".into());
        }
        if self.rows == 0 {
            return Err("rows must be positive".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be positive".into());
        }
        if self.freq_mhz == 0 {
            return Err("freq_mhz must be positive".into());
        }
        let t = &self.timing;
        if t.burst_cycles == 0 || t.cl == 0 || t.trcd == 0 || t.trp == 0 {
            return Err("core timing parameters must be positive".into());
        }
        if t.trefi > 0 && t.trfc >= t.trefi {
            return Err("tRFC must be smaller than tREFI".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::hbm2(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2_bandwidth_matches_table2() {
        // Table 2: 128 GB/s per NPU -> 4 channels; dual-core total 256 GB/s.
        assert_eq!(DramConfig::hbm2(4).peak_gbps(), 128.0);
        assert_eq!(DramConfig::hbm2(8).peak_gbps(), 256.0);
    }

    #[test]
    fn presets_validate() {
        assert!(DramConfig::hbm2(1).validate().is_ok());
        assert!(DramConfig::hbm2(8).validate().is_ok());
        assert!(DramConfig::ddr4(2).validate().is_ok());
    }

    #[test]
    fn capacity_is_product_of_geometry() {
        let c = DramConfig::hbm2(8);
        assert_eq!(c.capacity_bytes(), 8 * 16 * (1 << 15) * 2048);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DramConfig::hbm2(8);
        c.channels = 0;
        assert!(c.validate().is_err());

        let mut c = DramConfig::hbm2(8);
        c.row_bytes = 100; // not a multiple of 64
        assert!(c.validate().is_err());

        let mut c = DramConfig::hbm2(8);
        c.timing.trfc = c.timing.trefi;
        assert!(c.validate().is_err());

        let mut c = DramConfig::hbm2(8);
        c.queue_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn refresh_overhead_is_small_fraction() {
        let t = DramTiming::hbm2();
        assert!((t.trfc as f64) / (t.trefi as f64) < 0.1);
    }

    #[test]
    fn min_read_latency_is_cas_plus_burst() {
        assert_eq!(DramConfig::hbm2(1).min_read_latency(), 14 + 2);
        assert_eq!(DramConfig::bench(1).min_read_latency(), 14 + 8);
        assert_eq!(DramConfig::ddr4(1).min_read_latency(), 16 + 4);
    }
}

#[cfg(test)]
mod preset_tests {
    use super::*;

    #[test]
    fn bench_preset_is_quarter_rate_hbm2() {
        let b = DramConfig::bench(4);
        let h = DramConfig::hbm2(4);
        assert_eq!(b.timing.burst_cycles, 8);
        assert!((b.peak_gbps() - h.peak_gbps() / 4.0).abs() < 1e-9);
        assert!((b.peak_gbps() - 32.0).abs() < 1e-9, "4 x 8 GB/s");
        assert!(b.validate().is_ok());
    }

    #[test]
    fn ddr4_slower_per_channel_than_hbm2() {
        assert!(
            DramConfig::ddr4(1).channel_bytes_per_cycle()
                < DramConfig::hbm2(1).channel_bytes_per_cycle()
        );
    }

    #[test]
    fn default_policy_is_frfcfs() {
        assert_eq!(DramConfig::default().policy, SchedPolicy::FrFcfs);
        assert_eq!(SchedPolicy::default(), SchedPolicy::FrFcfs);
    }
}
